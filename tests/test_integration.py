"""End-to-end integration scenarios across subsystems."""

from __future__ import annotations

from repro import equivalent_under, minimize
from repro.constraints.inference import infer_constraints
from repro.data import parse_ldif, parse_xml, to_xml
from repro.matching import (
    EmbeddingEngine,
    TwigJoinEngine,
    evaluate,
    evaluate_nodes,
    satisfies,
)
from repro.parsing import parse_xpath, to_xpath
from repro.schema import conforms, parse_schema

SCHEMA = """
element Catalog { Product* }
element Product { Name  Price  Review*  Vendor }
element Review  { Rating  Text? }
element Vendor  { Name }
type FeaturedProduct : Product
"""

DOCUMENT = """
<Catalog>
  <Product>
    <Name>Widget</Name><Price>10</Price>
    <Review><Rating>5</Rating><Text>great</Text></Review>
    <Vendor><Name>Acme</Name></Vendor>
  </Product>
  <FeaturedProduct repro:types="Product">
    <Name>Gadget</Name><Price>99</Price>
    <Vendor><Name>Globex</Name></Vendor>
  </FeaturedProduct>
</Catalog>
"""

LDIF = """
dn: o=Corp
objectClass: Organization

dn: ou=Research,o=Corp
objectClass: Dept

dn: cn=Grace,ou=Research,o=Corp
objectClass: Manager
objectClass: Employee
objectClass: Person

dn: cn=TreePatterns,ou=Research,o=Corp
objectClass: DBproject
objectClass: Project
"""


class TestXmlScenario:
    def setup_method(self):
        self.schema = parse_schema(SCHEMA)
        self.constraints = infer_constraints(self.schema)
        self.tree = parse_xml(DOCUMENT)

    def test_document_conforms_and_satisfies(self):
        assert conforms(self.tree, self.schema)
        assert satisfies(self.tree, self.constraints)

    def test_schema_knowledge_shrinks_queries(self):
        # "products that have a price, a vendor with a name, and a name"
        query = parse_xpath("Catalog/Product*[Price][Vendor/Name][Name]")
        result = minimize(query, self.constraints)
        assert result.pattern.size == 2  # Catalog/Product
        assert to_xpath(result.pattern) == "Catalog/Product"
        assert equivalent_under(query, result.pattern, self.constraints)

    def test_answers_preserved_on_the_document(self):
        query = parse_xpath("Catalog/Product*[Price][Vendor/Name][Name]")
        result = minimize(query, self.constraints)
        assert evaluate(query, self.tree) == evaluate(result.pattern, self.tree)
        names = sorted(
            c.value
            for node in evaluate_nodes(result.pattern, self.tree)
            for c in node.children
            if "Name" in c.types
        )
        assert names == ["Gadget", "Widget"]

    def test_co_occurrence_from_schema_type_declaration(self):
        # FeaturedProduct ~ Product: a query for products finds the
        # featured one too; minimization may rely on it.
        featured = parse_xpath("Catalog/FeaturedProduct*")
        products = parse_xpath("Catalog/Product*")
        assert evaluate(featured, self.tree) <= evaluate(products, self.tree)
        both = parse_xpath("Catalog*[FeaturedProduct][Product]")
        result = minimize(both, self.constraints)
        assert result.pattern.size == 2  # the Product branch is implied

    def test_both_engines_agree_on_document(self):
        for text in (
            "Catalog//Name",
            "Product*[Review/Rating]",
            "Catalog/Product*[.//Name][Vendor]",
        ):
            pattern = parse_xpath(text)
            assert (
                EmbeddingEngine(pattern, self.tree).answer_set()
                == TwigJoinEngine(pattern, self.tree).answer_set()
            ), text

    def test_xml_round_trip_preserves_answers(self):
        pattern = parse_xpath("Catalog/Product*[Vendor]")
        reparsed = parse_xml(to_xml(self.tree))
        assert len(evaluate(pattern, self.tree)) == len(evaluate(pattern, reparsed))


class TestDirectoryScenario:
    def setup_method(self):
        self.directory = parse_ldif(LDIF)
        from repro.constraints import parse_constraints

        self.constraints = parse_constraints(
            """
            Dept ->> Manager
            Manager ~ Employee
            Employee ~ Person
            DBproject ~ Project
            """
        )

    def test_directory_satisfies(self):
        assert satisfies(self.directory.tree, self.constraints)

    def test_directory_query_minimization(self):
        query = parse_xpath(
            "Organization*[.//Dept[.//Manager][.//Person]][.//Project]"
        )
        result = minimize(query, self.constraints)
        # Manager is implied below Dept; the manager IS a person; only the
        # Project branch (not implied) must stay.
        assert result.pattern.size == 3
        assert evaluate(query, self.directory.tree) == evaluate(
            result.pattern, self.directory.tree
        )

    def test_multi_class_matching(self):
        projects = parse_xpath("Organization//Project*")
        dbprojects = parse_xpath("Organization//DBproject*")
        assert evaluate(dbprojects, self.directory.tree) <= evaluate(
            projects, self.directory.tree
        )
