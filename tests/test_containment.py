"""Tests for containment mappings and the containment/equivalence oracle."""

from __future__ import annotations

from conftest import assert_valid_mapping, hom_exists

from repro import TreePattern, equivalent, is_contained_in
from repro.core.containment import (
    compatible_nodes,
    find_containment_mapping,
    has_containment_mapping,
    mapping_targets,
)


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestCompatibleNodes:
    def test_same_type_unstarred(self):
        a, b = q("x"), q("x")
        assert compatible_nodes(a.root, b.root)

    def test_type_mismatch(self):
        a, b = q("x"), q("y")
        assert not compatible_nodes(a.root, b.root)

    def test_output_must_map_to_output(self):
        starred = q(("a", [("/", "b*")]))
        unstarred_b = q(("a*", [("/", "b")]))
        v = starred.find("b")[0]
        u = unstarred_b.find("b")[0]
        assert not compatible_nodes(v, u)

    def test_non_output_may_map_onto_output(self):
        # One-directional star rule (Figure 2(b) -> (c) depends on this).
        unstarred = q(("a*", [("/", "b")]))
        starred = q(("a", [("/", "b*")]))
        v = unstarred.find("b")[0]
        u = starred.find("b")[0]
        assert compatible_nodes(v, u)

    def test_extra_types_count(self):
        a = q("x")
        b = q("y")
        b.add_extra_type(b.root, "x")
        assert compatible_nodes(a.root, b.root)


class TestContainment:
    def test_self_containment(self):
        pattern = q(("a", [("/", ("b*", [("//", "c")]))]))
        assert is_contained_in(pattern, pattern)

    def test_fewer_constraints_contain_more(self):
        big = q(("a", [("/", ("b*", [("//", "c")])), ("/", "d")]))
        small = q(("a", [("/", "b*")]))
        assert is_contained_in(big, small)
        assert not is_contained_in(small, big)

    def test_c_edge_maps_only_to_c_edge(self):
        child_q = q(("a*", [("/", "b")]))
        desc_q = q(("a*", [("//", "b")]))
        # a//b is less restrictive: a/b ⊆ a//b but not vice versa.
        assert is_contained_in(child_q, desc_q)
        assert not is_contained_in(desc_q, child_q)

    def test_d_edge_maps_to_longer_chain(self):
        chain = q(("a*", [("/", ("x", [("/", "b")]))]))  # a/x/b
        skip = q(("a*", [("//", "b")]))  # a//b
        assert is_contained_in(chain, skip)

    def test_descendant_is_proper(self):
        self_desc = q(("a", [("//", "a*")]))
        single = q("a")
        # a//a* requires two distinct a's; bare a* does not.
        assert is_contained_in(self_desc, single)
        assert not is_contained_in(single, self_desc)

    def test_unanchored_root(self):
        # Pattern root may map below the other root.
        inner = q(("r", [("/", ("a", [("/", "b*")]))]))
        floating = q(("a", [("/", "b*")]))
        assert is_contained_in(inner, floating)

    def test_star_position_blocks_containment(self):
        q1 = q(("a", [("/", "b*")]))
        q2 = q(("a*", [("/", "b")]))
        assert not is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_branch_folding(self):
        # Figure 2(h)/(i): two branches fold into one.
        h = q(("O*", [
            ("/", ("D", [("/", ("R", [("//", "P")]))])),
            ("//", ("D", [("//", "P")])),
        ]))
        i = q(("O*", [("/", ("D", [("/", ("R", [("//", "P")]))]))]))
        assert equivalent(h, i)

    def test_equivalence_is_reflexive_symmetric(self):
        q1 = q(("a", [("/", "b*"), ("//", "c")]))
        q2 = q(("a", [("//", "c"), ("/", "b*")]))
        assert equivalent(q1, q2) and equivalent(q2, q1)


class TestMappingExtraction:
    def test_identity_mapping_found(self):
        pattern = q(("a", [("/", ("b*", [("//", "c")]))]))
        mapping = find_containment_mapping(pattern, pattern)
        assert mapping is not None
        assert_valid_mapping(pattern, pattern, mapping)

    def test_extracted_mapping_is_valid(self):
        big = q(("a*", [("//", ("b", [("/", "c")])), ("//", "b")]))
        small = q(("a*", [("//", ("b", [("/", "c")]))]))
        mapping = find_containment_mapping(big, small)
        assert mapping is not None
        assert_valid_mapping(big, small, mapping)

    def test_no_mapping_returns_none(self):
        q1 = q(("a*", [("/", "b")]))
        q2 = q(("a*", [("/", "c")]))
        assert find_containment_mapping(q1, q2) is None
        assert not has_containment_mapping(q1, q2)

    def test_mapping_targets_monotone_up_the_tree(self):
        source = q(("a*", [("/", ("b", [("/", "c")]))]))
        target = q(("a*", [("/", ("b", [("/", "c"), ("/", "d")]))]))
        targets = mapping_targets(source, target)
        # Root target set non-empty means full pattern maps.
        assert targets[source.root.id]

    def test_repeated_types_resolved(self):
        # Repeated types are the NP-hard core of general CQ containment;
        # the tree DP must still get them right.
        source = q(("a*", [("//", ("x", [("/", "x")]))]))
        target = q(("a*", [("/", ("x", [("/", ("x", [("/", "x")]))]))]))
        mapping = find_containment_mapping(source, target)
        assert mapping is not None
        assert_valid_mapping(source, target, mapping)


class TestHomHelper:
    def test_hom_exists_mirror(self):
        q1 = q(("a", [("/", "b*")]))
        assert hom_exists(q1, q1)
