"""Property-based tests for CDM (Theorem 5.2: local minimality)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TreePattern, cdm_minimize
from repro.constraints import closure, co_occurrence, required_child, required_descendant
from repro.core.edges import EdgeKind
from repro.core.ic_containment import equivalent_under, finitely_satisfiable

from conftest import assert_semantically_equal_under

TYPES = ["a", "b", "c", "d"]


@st.composite
def patterns(draw, max_size: int = 8) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@st.composite
def constraint_sets(draw):
    out = []
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        kind = draw(st.sampled_from(["child", "desc", "cooc"]))
        if kind == "cooc":
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            j = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            if i != j:
                out.append(co_occurrence(TYPES[i], TYPES[j]))
        else:
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 2))
            j = draw(st.integers(min_value=i + 1, max_value=len(TYPES) - 1))
            make = required_child if kind == "child" else required_descendant
            out.append(make(TYPES[i], TYPES[j]))
    return out


def locally_redundant_leaves(pattern: TreePattern, repo) -> list:
    """Direct re-implementation of the four conditions of Section 5.4,
    independent of the information-content machinery — the spec CDM's
    result is checked against."""
    out = []
    for leaf in pattern.leaves():
        if leaf.is_root or leaf.is_output:
            continue
        parent = leaf.parent
        if leaf.edge is EdgeKind.CHILD:
            if repo.has_required_child(parent.type, leaf.type):  # (i)
                out.append(leaf)
                continue
            siblings = [
                s for s in parent.c_children() if s is not leaf
            ]
            if any(repo.has_co_occurrence(s.type, leaf.type) for s in siblings):  # (iii)
                out.append(leaf)
        else:
            if repo.has_required_descendant(parent.type, leaf.type):  # (ii)
                out.append(leaf)
                continue
            witnesses = [d for d in parent.descendants() if d is not leaf]
            if any(  # (iv)
                repo.has_required_descendant(w.type, leaf.type)
                or repo.has_co_occurrence(w.type, leaf.type)
                for w in witnesses
            ):
                out.append(leaf)
    return out


@settings(max_examples=100, deadline=None)
@given(patterns(), constraint_sets())
def test_cdm_result_is_locally_minimal(pattern, ics):
    """Theorem 5.2: no leaf of the CDM result is locally redundant."""
    repo = closure(ics)
    result = cdm_minimize(pattern, repo)
    assert locally_redundant_leaves(result.pattern, repo) == []


@settings(max_examples=70, deadline=None)
@given(patterns(), constraint_sets())
def test_cdm_equivalent_under_constraints(pattern, ics):
    if not finitely_satisfiable(ics):
        return
    result = cdm_minimize(pattern, ics)
    assert equivalent_under(result.pattern, pattern, ics)


@settings(max_examples=20, deadline=None)
@given(patterns(max_size=6), constraint_sets())
def test_cdm_semantically_equivalent(pattern, ics):
    if not finitely_satisfiable(ics):
        return
    result = cdm_minimize(pattern, ics)
    assert_semantically_equal_under(pattern, result.pattern, ics, seeds=range(2), size=25)


@settings(max_examples=60, deadline=None)
@given(patterns(), constraint_sets())
def test_cdm_idempotent(pattern, ics):
    repo = closure(ics)
    once = cdm_minimize(pattern, repo).pattern
    twice = cdm_minimize(once, repo).pattern
    assert once.isomorphic(twice)


@settings(max_examples=60, deadline=None)
@given(patterns(), constraint_sets())
def test_cdm_removal_record_consistent(pattern, ics):
    result = cdm_minimize(pattern, ics)
    assert result.removed_count == pattern.size - result.pattern.size
    assert sum(result.rule_counts.values()) == result.removed_count
