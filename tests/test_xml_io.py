"""Tests for the minimal XML reader/writer."""

from __future__ import annotations

import pytest

from repro.data import build_tree, parse_xml, to_xml
from repro.errors import ParseError


class TestParsing:
    def test_simple_document(self):
        tree = parse_xml("<a><b>hi</b><c/></a>")
        assert tree.size == 3
        assert tree.find("b")[0].value == "hi"
        assert tree.find("c")[0].is_leaf

    def test_prolog_and_comments(self):
        tree = parse_xml(
            """<?xml version="1.0"?>
            <!-- header -->
            <root><!-- inner --><leaf/></root>
            """
        )
        assert tree.size == 2

    def test_attributes_both_quote_styles(self):
        tree = parse_xml("""<a x="1" y='two'/>""")
        assert tree.root.attributes == {"x": "1", "y": "two"}

    def test_entities_decoded(self):
        tree = parse_xml("<a>&lt;tag&gt; &amp; &#65;&#x42;</a>")
        assert tree.root.value == "<tag> & AB"

    def test_multi_type_attribute(self):
        tree = parse_xml('<Employee repro:types="Person Principal"/>')
        assert tree.root.types == {"Employee", "Person", "Principal"}

    def test_whitespace_only_text_ignored(self):
        tree = parse_xml("<a>\n   <b/>\n</a>")
        assert tree.root.value is None


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a>&unknown;</a>",
            "<a/><b/>",
            "<a><!-- unterminated </a>",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ParseError):
            parse_xml(text)

    def test_error_carries_position(self):
        try:
            parse_xml("<a></b>")
        except ParseError as exc:
            assert exc.position is not None
            assert "mismatched" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestSerialization:
    def test_round_trip(self):
        tree = build_tree(
            ("Library", [
                ("Book", [("Title", [], "A & B <ok>")]),
                ("Employee+Person", []),
            ])
        )
        text = to_xml(tree)
        back = parse_xml(text)
        assert to_xml(back) == text
        assert back.find("Title")[0].value == "A & B <ok>"
        assert back.find("Employee")[0].types == {"Employee", "Person"}

    def test_attributes_round_trip(self):
        tree = build_tree("Entry")
        tree.root.attributes["cn"] = 'say "hi"'
        back = parse_xml(to_xml(tree))
        assert back.root.attributes["cn"] == 'say "hi"'

    def test_self_closing_leaves(self):
        tree = build_tree(("a", ["b"]))
        assert "<b/>" in to_xml(tree)

    def test_indentation(self):
        tree = build_tree(("a", [("b", ["c"])]))
        lines = to_xml(tree, indent=4).splitlines()
        assert lines[1].startswith("    <b>")
        assert lines[2].startswith("        <c")
