"""Tests for the workload generators behind the paper's experiments."""

from __future__ import annotations

import pytest

from repro import acim_minimize, cdm_minimize, cim_minimize
from repro.constraints import closure
from repro.workloads import (
    bushy_cdm_query,
    chain_constraints,
    chain_query,
    cyclic_chain_constraints,
    equal_removal_query,
    fanout_cdm_query,
    fanout_constraints,
    half_removal_query,
    random_query,
    redundancy_query,
    relevant_constraints,
    right_deep_cdm_query,
)


class TestRandomQuery:
    def test_exact_size(self):
        for size in (1, 5, 40):
            assert random_query(size, seed=0).size == size

    def test_deterministic(self):
        assert random_query(20, seed=7).isomorphic(random_query(20, seed=7))

    def test_fanout_bound(self):
        q = random_query(40, max_fanout=2, seed=1)
        assert q.max_fanout <= 2

    def test_has_one_output(self):
        q = random_query(15, seed=3)
        q.validate()

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            random_query(0)


class TestChainWorkload:
    def test_structure(self):
        q = chain_query(101)
        assert q.size == 101 and q.depth == 100
        assert q.root.is_output

    def test_all_but_root_removable(self):
        ics = closure(chain_constraints(101))
        assert cdm_minimize(chain_query(101), ics).pattern.size == 1
        assert acim_minimize(chain_query(101), ics).pattern.size == 1

    def test_constraint_count(self):
        assert len(chain_constraints(101)) == 100


class TestRedundancyQuery:
    def test_size_and_removal_counts(self):
        for red_nodes, red_degree in [(1, 10), (9, 10), (5, 4)]:
            q, ics = redundancy_query(101, red_nodes, red_degree, seed=0)
            assert q.size == 101
            result = acim_minimize(q, ics)
            assert result.removed_count == red_nodes * red_degree

    def test_without_ics_keeps_one_per_group(self):
        q, _ = redundancy_query(101, 5, 4, seed=0)
        # Pure CIM folds duplicates within a group onto one survivor.
        assert cim_minimize(q).removed_count == 5 * (4 - 1)

    def test_too_many_redundant_rejected(self):
        with pytest.raises(ValueError):
            redundancy_query(20, 10, 2)


class TestCdmShapeWorkloads:
    def test_right_deep_fully_reduces(self):
        repo = closure(cyclic_chain_constraints())
        for size in (10, 64, 140):
            assert cdm_minimize(right_deep_cdm_query(size), repo).pattern.size == 1

    def test_bushy_fully_reduces(self):
        repo = closure(cyclic_chain_constraints())
        for size in (10, 64, 127):
            q = bushy_cdm_query(size)
            assert q.size == size
            assert cdm_minimize(q, repo).pattern.size == 1

    def test_bushy_is_bushy(self):
        q = bushy_cdm_query(127, fanout=2)
        assert q.max_fanout == 2 and q.depth <= 7

    def test_cyclic_constraint_count(self):
        assert len(cyclic_chain_constraints()) == 110

    def test_fanout_workload(self):
        for fanout in (2, 10, 25):
            q = fanout_cdm_query(fanout)
            assert q.size == fanout + 1
            repo = closure(fanout_constraints(fanout))
            assert cdm_minimize(q, repo).pattern.size == 1

    def test_fanout_multi_level(self):
        q = fanout_cdm_query(3, levels=2)
        assert q.size == 7
        repo = closure(fanout_constraints(3, levels=2))
        assert cdm_minimize(q, repo).pattern.size == 1


class TestFigure9Workloads:
    def test_equal_removal_property(self):
        for size in (10, 40, 100):
            q, ics = equal_removal_query(size)
            assert q.size == size
            repo = closure(ics)
            cdm_removed = {i for i, _, _ in cdm_minimize(q, repo).eliminated}
            acim_removed = {i for i, _ in acim_minimize(q, repo).eliminated}
            assert cdm_removed == acim_removed
            assert len(cdm_removed) == size // 2

    def test_half_removal_property(self):
        for size in (20, 60, 100):
            q, ics = half_removal_query(size)
            repo = closure(ics)
            cdm_n = cdm_minimize(q, repo).removed_count
            acim_n = acim_minimize(q, repo).removed_count
            assert cdm_n * 2 == acim_n

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            equal_removal_query(1)
        with pytest.raises(ValueError):
            half_removal_query(4)


class TestRelevantConstraints:
    def test_count_and_relevance(self):
        q = random_query(20, seed=0)
        ics = relevant_constraints(q, 50, seed=1)
        assert len(ics) == 50
        types = q.node_types()
        assert all(c.source in types for c in ics)

    def test_inert_by_default(self):
        q = chain_query(30)
        ics = relevant_constraints(q, 40, seed=2)
        result = acim_minimize(q, ics)
        assert result.removed_count == 0  # fresh targets trigger nothing

    def test_distinct(self):
        q = random_query(10, seed=5)
        ics = relevant_constraints(q, 80, seed=3)
        assert len(set(ics)) == 80

    def test_zero(self):
        assert relevant_constraints(chain_query(5), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            relevant_constraints(chain_query(5), -1)
