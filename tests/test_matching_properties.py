"""Property tests tying the syntactic oracle to actual query semantics.

The homomorphism theorem is the bridge every minimizer stands on; these
tests check it from both sides on random patterns and random data:
syntactic containment implies answer-set containment on every instance,
and minimization never changes any answer set.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TreePattern, cim_minimize, is_contained_in
from repro.core.edges import EdgeKind
from repro.data.generate import random_tree
from repro.matching import EmbeddingEngine, evaluate

TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 6) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@settings(max_examples=60, deadline=None)
@given(patterns(), patterns(), st.integers(min_value=0, max_value=50))
def test_syntactic_containment_implies_semantic(q1, q2, seed):
    """Q1 ⊆ Q2 (containment mapping) ⇒ Q1(D) ⊆ Q2(D) for every D."""
    if not is_contained_in(q1, q2):
        return
    db = random_tree(TYPES, size=25, seed=seed)
    assert evaluate(q1, db) <= evaluate(q2, db)


@settings(max_examples=60, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=50))
def test_cim_preserves_answers_on_random_data(pattern, seed):
    db = random_tree(TYPES, size=30, seed=seed)
    minimized = cim_minimize(pattern).pattern
    assert evaluate(pattern, db) == evaluate(minimized, db)


@settings(max_examples=60, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=50))
def test_answer_set_equals_witnessed_embeddings(pattern, seed):
    """feasible(output) must agree with brute-force enumeration."""
    db = random_tree(TYPES, size=18, seed=seed)
    engine = EmbeddingEngine(pattern, db)
    by_dp = engine.answer_set()
    by_enumeration = {emb[pattern.output_node.id].id for emb in engine.embeddings()}
    assert by_dp == by_enumeration


@settings(max_examples=40, deadline=None)
@given(patterns(max_size=5), st.integers(min_value=0, max_value=50))
def test_count_matches_enumeration(pattern, seed):
    db = random_tree(TYPES, size=15, seed=seed)
    engine = EmbeddingEngine(pattern, db)
    assert engine.count_embeddings() == len(list(engine.embeddings()))
