"""Tests for the experiment harness and reporting (fast configurations)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    Series,
    best_of,
    format_ascii_plot,
    format_csv,
    format_report,
    format_table,
    run_experiment,
)
from repro.bench.cli import main as bench_main


class TestTiming:
    def test_best_of_returns_minimum_scale(self):
        calls = []
        assert best_of(lambda: calls.append(1), repeat=4) >= 0.0
        assert len(calls) == 4

    def test_series_add(self):
        s = Series("x")
        s.add(1, 0.5)
        s.add(2, 0.6)
        assert len(s) == 2 and s.xs == [1, 2]

    def test_result_x_values_checks_alignment(self):
        r = ExperimentResult("e", "t", "x", "y", series=[Series("a", [1], [0.1]), Series("b", [2], [0.1])])
        with pytest.raises(ValueError):
            r.x_values()

    def test_series_by_label(self):
        r = ExperimentResult("e", "t", "x", "y", series=[Series("a", [1], [0.1])])
        assert r.series_by_label("a").ys == [0.1]
        with pytest.raises(KeyError):
            r.series_by_label("zzz")


def tiny_result() -> ExperimentResult:
    return ExperimentResult(
        "demo",
        "demo experiment",
        "size",
        "time (s)",
        series=[
            Series("fast", [10, 20], [0.001, 0.002]),
            Series("slow", [10, 20], [0.004, 0.009]),
        ],
        notes=["a note"],
    )


class TestReporting:
    def test_table_contains_all_cells(self):
        table = format_table(tiny_result())
        assert "fast (ms)" in table and "slow (ms)" in table
        assert "1.0000" in table and "9.0000" in table

    def test_csv_shape(self):
        csv = format_csv(tiny_result())
        lines = csv.strip().splitlines()
        assert lines[0] == "x,fast,slow"
        assert len(lines) == 3

    def test_ascii_plot_mentions_legend(self):
        plot = format_ascii_plot(tiny_result())
        assert "fast" in plot and "slow" in plot

    def test_report_combines_everything(self):
        report = format_report(tiny_result())
        assert "demo experiment" in report and "note: a note" in report


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_every_experiment_runs(name):
    """Each figure driver produces sane, plottable output (repeat=1 keeps
    this fast; the real numbers come from benchmarks/)."""
    result = run_experiment(name, repeat=1)
    assert result.name == name
    assert result.series, "every figure has at least one series"
    xs = result.x_values()
    assert len(xs) >= 5
    for series in result.series:
        assert all(y >= 0 for y in series.ys)
        assert len(series.ys) == len(xs)


class TestCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out and "fig9b" in out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_single_run_with_csv(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        code = bench_main(["fig8a", "--repeat", "1", "--no-plot", "--csv", str(target)])
        assert code == 0
        assert target.exists()
        assert target.read_text().startswith("x,")

    def test_multi_run_csv_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "csvs"
        code = bench_main(
            ["fig9a", "fig9b", "--repeat", "1", "--no-plot", "--csv", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "fig9a.csv").exists()
        assert (out_dir / "fig9b.csv").exists()


class TestJson:
    def test_to_dict_round_trips_through_json(self):
        result = tiny_result()
        result.counters = {"engine_builds": 1}
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["name"] == "demo"
        assert payload["series"][0] == {
            "label": "fast",
            "xs": [10, 20],
            "ys": [0.001, 0.002],
        }
        assert payload["notes"] == ["a note"]
        assert payload["counters"] == {"engine_builds": 1}

    def test_format_json_is_deterministic(self):
        from repro.bench import format_json

        assert format_json(tiny_result()) == format_json(tiny_result())
        assert format_json(tiny_result()).endswith("\n")

    def test_cli_json_single_file(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        code = bench_main(["fig8a", "--repeat", "1", "--no-plot", "--json", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["name"] == "fig8a"
        assert payload["series"]

    def test_cli_json_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "jsons"
        code = bench_main(
            ["fig9a", "fig9b", "--repeat", "1", "--no-plot", "--json", str(out_dir)]
        )
        assert code == 0
        for name in ("fig9a", "fig9b"):
            payload = json.loads((out_dir / f"{name}.json").read_text())
            assert payload["name"] == name


def _load_bench_script(stem):
    path = Path(__file__).parent.parent / "benchmarks" / f"{stem}.py"
    name = f"{stem}_module"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(name, module)
    spec.loader.exec_module(module)
    return module


def _load_bench_incremental():
    return _load_bench_script("bench_incremental")


class TestBenchIncremental:
    """Schema smoke test for BENCH_incremental.json (fast grid)."""

    def test_fast_run_writes_valid_schema(self, tmp_path):
        bi = _load_bench_incremental()
        out = tmp_path / "BENCH_incremental.json"
        bi.main(["--fast", "--repeat", "1", "--out", str(out)])
        payload = json.loads(out.read_text())

        assert payload["benchmark"] == "incremental"
        assert payload["schema_version"] == bi.SCHEMA_VERSION
        assert payload["fast"] is True

        workloads = payload["workloads"]
        assert {r["workload"] for r in workloads} >= {
            "fig7-chain",
            "fig8-right-deep",
            "fig8-bushy",
        }
        for row in workloads:
            assert row["rebuild_seconds"] >= 0
            assert row["incremental_seconds"] >= 0
            assert row["speedup"] > 0
            assert row["engine_builds"] >= 1
            assert row["incremental_deletes"] == row["removed"]

        cache = payload["containment_cache"]
        assert 0.0 <= cache["base_hit_rate"] <= 1.0
        assert 0.0 <= cache["reach_hit_rate"] <= 1.0

        summary = payload["summary"]
        assert summary["fig8_largest_size"] == max(
            r["x"] for r in workloads if r["workload"] == "fig8-right-deep"
        )
        assert summary["max_speedup"] >= summary["fig8_speedup_at_largest"] > 0
        assert isinstance(summary["meets_3x_target"], bool)


class TestBenchBatch:
    """Schema smoke test for BENCH_batch.json (fast grid)."""

    def test_fast_run_writes_valid_schema(self, tmp_path):
        bb = _load_bench_script("bench_batch")
        out = tmp_path / "BENCH_batch.json"
        bb.main(["--fast", "--repeat", "1", "--out", str(out)])
        payload = json.loads(out.read_text())

        assert payload["benchmark"] == "batch"
        assert payload["schema_version"] == bb.SCHEMA_VERSION
        assert payload["fast"] is True
        assert payload["cpu_count"] >= 1

        workloads = payload["workloads"]
        assert {r["workload"] for r in workloads} == {"fig7", "fig8", "mixed"}
        for row in workloads:
            assert row["serial_seconds"] >= 0
            assert row["batch_seconds"] >= 0
            assert row["speedup"] > 0
            assert 0.0 <= row["hit_rate"] <= 1.0
            assert 1 <= row["distinct_structures"] <= row["n_queries"]
            assert row["cache_hits"] == row["n_queries"] - row["distinct_structures"]

        scaling = payload["scaling"]
        assert [r["jobs"] for r in scaling] == [1, 2, 4, 8]
        for row in scaling:
            assert row["seconds"] >= 0 and row["speedup_vs_serial"] > 0

        summary = payload["summary"]
        assert summary["target_jobs"] == min(4, payload["cpu_count"])
        assert summary["speedup_at_target_jobs"] == max(r["speedup"] for r in workloads)
        assert isinstance(summary["meets_2x_target"], bool)


class TestBenchOracleCache:
    """Schema smoke test for BENCH_oracle_cache.json (fast grid)."""

    def test_fast_run_writes_valid_schema(self, tmp_path):
        bo = _load_bench_script("bench_oracle_cache")
        out = tmp_path / "BENCH_oracle_cache.json"
        bo.main(["--fast", "--repeat", "1", "--out", str(out)])
        payload = json.loads(out.read_text())

        assert payload["benchmark"] == "oracle_cache"
        assert payload["schema_version"] == bo.SCHEMA_VERSION
        assert payload["fast"] is True

        rows = payload["oracle"]["rows"]
        assert [r["queries"] for r in rows] == sorted(r["queries"] for r in rows)
        for row in rows:
            assert row["uncached_seconds"] >= 0
            assert row["cached_seconds"] >= 0
            assert row["speedup"] > 0
            assert row["pairs"] == 4 * row["queries"]
            assert row["oracle_cache_hits"] > 0
            assert 0.0 <= row["oracle_cache_hit_rate"] <= 1.0
            assert row["oracle_cache_collisions"] == 0

        prune = payload["prune_memo"]
        assert prune["prune_memo_hits"] > 0
        assert 0.0 <= prune["prune_memo_hit_rate"] <= 1.0

        batch = payload["batch"]
        assert batch["identical_results"] is True
        assert batch["prune_memo_hits"] > 0

        summary = payload["summary"]
        assert summary["results_identical"] is True
        assert summary["oracle_hits_at_largest"] > 0
        assert isinstance(summary["meets_target"], bool)


class TestBenchCoreV2:
    """Schema smoke test for BENCH_core_v2.json (fast grid)."""

    def test_fast_run_writes_valid_schema(self, tmp_path):
        bc = _load_bench_script("bench_core_v2")
        out = tmp_path / "BENCH_core_v2.json"
        bc.main(["--fast", "--repeat", "1", "--out", str(out)])
        payload = json.loads(out.read_text())

        assert payload["benchmark"] == "core_v2"
        assert payload["schema_version"] == bc.SCHEMA_VERSION
        assert payload["fast"] is True

        workloads = payload["workloads"]
        assert {r["workload"] for r in workloads} == {
            "fig8-right-deep",
            "fig8-bushy",
        }
        for row in workloads:
            assert row["v1_seconds"] >= 0
            assert row["v2_seconds"] >= 0
            assert row["speedup_vs_v1"] > 0
            assert row["identical"] is True

        containment = payload["containment"]
        assert containment["identical"] is True
        assert containment["source_size"] > containment["target_size"]

        pick = payload["pickle"]
        assert pick["flat_bytes"] < pick["legacy_bytes"]
        assert pick["shrink_factor"] > 1.0

        summary = payload["summary"]
        assert summary["all_identical"] is True
        assert summary["fig8_largest_size"] == max(
            r["size"] for r in workloads if r["workload"] == "fig8-right-deep"
        )
        assert summary["max_speedup"] >= summary["speedup_vs_v1"] > 0
        assert isinstance(summary["meets_target"], bool)


class TestBenchService:
    """Schema smoke test for BENCH_service.json (fast stream)."""

    def test_fast_run_writes_valid_schema(self, tmp_path):
        bs = _load_bench_script("bench_service")
        out = tmp_path / "BENCH_service.json"
        bs.main(["--fast", "--repeat", "1", "--out", str(out)])
        payload = json.loads(out.read_text())

        assert payload["benchmark"] == "service"
        assert payload["schema_version"] == bs.SCHEMA_VERSION
        assert payload["fast"] is True
        assert payload["repeat"] >= 3  # floored: single replays too noisy

        rates = payload["rates"]
        assert len(rates) >= 5
        assert [r["offered_rate_qps"] for r in rates] == sorted(
            r["offered_rate_qps"] for r in rates
        )
        for row in rates:
            assert row["one_at_a_time_qps"] > 0
            assert row["micro_batched_qps"] > 0
            assert row["speedup"] > 0

        mid = payload["mid_rate"]
        assert mid["batches"] >= 1
        assert mid["mean_batch_size"] >= 1.0
        assert mid["verified"] > 0  # paranoid mode re-proved every answer
        assert mid["latency_p95_seconds"] >= mid["latency_p50_seconds"] >= 0

        summary = payload["summary"]
        assert summary["capacity_one_at_a_time_qps"] > 0
        assert summary["mid_rate_factor"] > 1
        assert summary["fingerprint_hits"] > 0
        assert summary["oracle_cache_hits"] > 0
        assert isinstance(summary["batched_beats_one_at_a_time"], bool)


class TestBenchCertify:
    """Schema smoke test for BENCH_certify.json (fast stream)."""

    def test_fast_run_writes_valid_schema(self, tmp_path):
        bc = _load_bench_script("bench_certify")
        out = tmp_path / "BENCH_certify.json"
        bc.main(["--fast", "--repeat", "1", "--out", str(out)])
        payload = json.loads(out.read_text())

        assert payload["benchmark"] == "certify"
        assert payload["schema_version"] == bc.SCHEMA_VERSION
        assert payload["fast"] is True

        overhead = payload["audit_overhead"]
        assert overhead["audit_rate"] == 64
        assert set(overhead["legs"]) == {"baseline", "sampled_audit", "certify_all"}
        for leg in overhead["legs"].values():
            assert leg["seconds"] > 0 and leg["qps"] > 0
            assert leg["audit_failures"] == 0  # no chaos in the benchmark
        assert overhead["legs"]["baseline"]["certified"] == 0
        assert overhead["legs"]["certify_all"]["certified"] >= overhead["n_queries"]

        sweep = payload["differential_sweep"]
        assert sweep["byte_identical"] is True
        assert sweep["certificates_verified"] == sweep["n_queries"]
        assert sweep["verified_fraction"] == 1.0
        assert sweep["witness_steps_total"] > 0

        summary = payload["summary"]
        assert summary["all_certificates_verified"] is True
        assert isinstance(summary["sampled_audit_under_10pct"], bool)


class TestMarkdown:
    def test_markdown_table(self):
        from repro.bench.report import format_markdown

        text = format_markdown(tiny_result())
        assert "### demo: demo experiment" in text
        assert "| size | fast (ms) | slow (ms) |" in text
        assert "- a note" in text

    def test_cli_markdown_flag(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = bench_main(
            ["fig8a", "--repeat", "1", "--no-plot", "--markdown", str(target)]
        )
        assert code == 0
        assert target.read_text().startswith("### fig8a")
