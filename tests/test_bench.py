"""Tests for the experiment harness and reporting (fast configurations)."""

from __future__ import annotations

import pytest

from repro.bench import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    Series,
    best_of,
    format_ascii_plot,
    format_csv,
    format_report,
    format_table,
    run_experiment,
)
from repro.bench.cli import main as bench_main


class TestTiming:
    def test_best_of_returns_minimum_scale(self):
        calls = []
        assert best_of(lambda: calls.append(1), repeat=4) >= 0.0
        assert len(calls) == 4

    def test_series_add(self):
        s = Series("x")
        s.add(1, 0.5)
        s.add(2, 0.6)
        assert len(s) == 2 and s.xs == [1, 2]

    def test_result_x_values_checks_alignment(self):
        r = ExperimentResult("e", "t", "x", "y", series=[Series("a", [1], [0.1]), Series("b", [2], [0.1])])
        with pytest.raises(ValueError):
            r.x_values()

    def test_series_by_label(self):
        r = ExperimentResult("e", "t", "x", "y", series=[Series("a", [1], [0.1])])
        assert r.series_by_label("a").ys == [0.1]
        with pytest.raises(KeyError):
            r.series_by_label("zzz")


def tiny_result() -> ExperimentResult:
    return ExperimentResult(
        "demo",
        "demo experiment",
        "size",
        "time (s)",
        series=[
            Series("fast", [10, 20], [0.001, 0.002]),
            Series("slow", [10, 20], [0.004, 0.009]),
        ],
        notes=["a note"],
    )


class TestReporting:
    def test_table_contains_all_cells(self):
        table = format_table(tiny_result())
        assert "fast (ms)" in table and "slow (ms)" in table
        assert "1.0000" in table and "9.0000" in table

    def test_csv_shape(self):
        csv = format_csv(tiny_result())
        lines = csv.strip().splitlines()
        assert lines[0] == "x,fast,slow"
        assert len(lines) == 3

    def test_ascii_plot_mentions_legend(self):
        plot = format_ascii_plot(tiny_result())
        assert "fast" in plot and "slow" in plot

    def test_report_combines_everything(self):
        report = format_report(tiny_result())
        assert "demo experiment" in report and "note: a note" in report


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_every_experiment_runs(name):
    """Each figure driver produces sane, plottable output (repeat=1 keeps
    this fast; the real numbers come from benchmarks/)."""
    result = run_experiment(name, repeat=1)
    assert result.name == name
    assert result.series, "every figure has at least one series"
    xs = result.x_values()
    assert len(xs) >= 5
    for series in result.series:
        assert all(y >= 0 for y in series.ys)
        assert len(series.ys) == len(xs)


class TestCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out and "fig9b" in out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_single_run_with_csv(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        code = bench_main(["fig8a", "--repeat", "1", "--no-plot", "--csv", str(target)])
        assert code == 0
        assert target.exists()
        assert target.read_text().startswith("x,")

    def test_multi_run_csv_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "csvs"
        code = bench_main(
            ["fig9a", "fig9b", "--repeat", "1", "--no-plot", "--csv", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "fig9a.csv").exists()
        assert (out_dir / "fig9b.csv").exists()


class TestMarkdown:
    def test_markdown_table(self):
        from repro.bench.report import format_markdown

        text = format_markdown(tiny_result())
        assert "### demo: demo experiment" in text
        assert "| size | fast (ms) | slow (ms) |" in text
        assert "- a note" in text

    def test_cli_markdown_flag(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = bench_main(
            ["fig8a", "--repeat", "1", "--no-plot", "--markdown", str(target)]
        )
        assert code == 0
        assert target.read_text().startswith("### fig8a")
