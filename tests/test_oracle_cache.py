"""Differential and property tests for the containment-oracle cache.

The load-bearing guarantee is *byte-for-byte equivalence*: with the
cross-query oracle cache (and its satellite layer, the images-engine
sibling-subtree prune memo) enabled, every
oracle answer and every minimizer output must be exactly what the
uncached code path produces. The differential sweeps here pin that over
hundreds of seeded workloads; the hypothesis suites pin the two
soundness arguments the cache rests on — remap invariance of the DP
table under node-id relabeling, and isomorphism implying two-way
containment (the ``equivalent`` fast path).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.api import MinimizeOptions
from repro.batch import BatchMinimizer, minimize_batch
from repro.bench.experiments import incremental_workload
from repro.constraints.model import parse_constraints
from repro.core.acim import acim_minimize
from repro.core.cdm import cdm_minimize
from repro.core.cim import cim_minimize
from repro.core.containment import (
    ContainmentStats,
    equivalent,
    is_contained_in,
    mapping_targets,
)
from repro.core.edges import EdgeKind
from repro.core.oracle_cache import (
    ContainmentOracleCache,
    OracleCacheStats,
    global_cache,
    global_enabled,
    oracle_cache_disabled,
    reset_global_cache,
    set_global_enabled,
)
from repro.core.pattern import TreePattern
from repro.core.pipeline import minimize
from repro.parsing.sexpr import to_sexpr
from repro.workloads import batch_workload, isomorphic_shuffle, random_query
from repro.workloads.querygen import duplicate_random_branch

CONSTRAINTS = parse_constraints("a -> b; b ->> c; a ~ c")


@pytest.fixture(autouse=True)
def _fresh_global_cache():
    """Isolate every test: fresh process-wide cache, switch restored."""
    previous = global_enabled()
    set_global_enabled(True)
    reset_global_cache()
    yield
    set_global_enabled(previous)
    reset_global_cache()


def _random_pair(rng: random.Random) -> tuple[TreePattern, TreePattern]:
    """A (source, target) pair with enough shared structure for the DP
    to produce non-trivial tables."""
    target = duplicate_random_branch(
        random_query(rng.randint(2, 10), types=["a", "b", "c"], rng=rng), rng=rng
    )
    source = random_query(rng.randint(1, 6), types=["a", "b", "c"], rng=rng)
    return source, target


# ---------------------------------------------------------------------------
# Cache unit behaviour
# ---------------------------------------------------------------------------


class TestCacheUnit:
    def test_lookup_remaps_onto_caller_ids(self):
        rng = random.Random(7)
        source, target = _random_pair(rng)
        cache = ContainmentOracleCache()
        reference = mapping_targets(source, target, cache=cache)

        shuffled_source = isomorphic_shuffle(source, seed=1)
        shuffled_target = isomorphic_shuffle(target, seed=2)
        remapped = cache.lookup(shuffled_source, shuffled_target)
        assert remapped is not None
        assert remapped == mapping_targets(shuffled_source, shuffled_target, cache=None)
        assert cache.stats.hits == 1
        assert cache.stats.remapped_nodes == len(reference)

    def test_store_snapshots_patterns(self):
        """Minimizers mutate patterns right after running the oracle on
        them; the cache must have copied, not aliased."""
        source = random_query(5, types=["a", "b"], seed=3)
        target = duplicate_random_branch(source, seed=3)
        cache = ContainmentOracleCache()
        mapping_targets(source, target, cache=cache)
        probe_s, probe_t = source.copy(), target.copy()

        leaf = next(n for n in target.leaves() if not n.is_root and not n.is_output)
        target.delete_leaf(leaf)

        remapped = cache.lookup(probe_s, probe_t)
        assert remapped == mapping_targets(probe_s, probe_t, cache=None)

    def test_lru_eviction(self):
        cache = ContainmentOracleCache(maxsize=2)
        queries = [random_query(4, types=["a", "b", "c"], seed=s) for s in range(3)]
        for q in queries:
            mapping_targets(q, q, cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.stats.stores == 3
        # The first-stored pair was the LRU victim.
        assert cache.lookup(queries[0], queries[0]) is None
        assert cache.lookup(queries[2], queries[2]) is not None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            ContainmentOracleCache(maxsize=0)

    def test_clear_keeps_counters(self):
        cache = ContainmentOracleCache()
        q = random_query(4, seed=0)
        mapping_targets(q, q, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.stores == 1

    def test_stats_counters_dict(self):
        stats = OracleCacheStats(hits=3, misses=1, stores=1)
        counters = stats.counters()
        assert counters["oracle_cache_hits"] == 3
        assert counters["oracle_cache_hit_rate"] == pytest.approx(0.75)
        assert stats.lookups == 4


class TestGlobalSwitch:
    def test_disable_enable(self):
        assert global_cache() is not None
        set_global_enabled(False)
        assert global_cache() is None
        set_global_enabled(True)
        assert global_cache() is not None

    def test_context_manager_restores(self):
        assert global_enabled()
        with oracle_cache_disabled():
            assert not global_enabled()
            assert global_cache() is None
        assert global_enabled()

    def test_global_cache_serves_repeats(self):
        q = random_query(6, types=["a", "b"], seed=11)
        dup = duplicate_random_branch(q, seed=11)
        stats = ContainmentStats()
        mapping_targets(dup, q, stats=stats)
        mapping_targets(dup, q, stats=stats)
        assert stats.oracle_cache_misses == 1
        assert stats.oracle_cache_hits == 1

    def test_cache_none_bypasses(self):
        q = random_query(6, types=["a", "b"], seed=11)
        stats = ContainmentStats()
        mapping_targets(q, q, stats=stats, cache=None)
        mapping_targets(q, q, stats=stats, cache=None)
        assert stats.oracle_cache_hits == 0
        assert stats.oracle_cache_misses == 0
        assert global_cache() is not None and len(global_cache()) == 0


# ---------------------------------------------------------------------------
# Differential sweeps: cached == uncached, byte for byte
# ---------------------------------------------------------------------------


class TestOracleDifferential:
    """mapping_targets through a cache == the raw DP, across 400 seeded
    workloads (each seed exercises a cold store plus a remapped hit)."""

    @pytest.mark.parametrize("offset", range(0, 400, 50))
    def test_seeded_workloads(self, offset):
        for seed in range(offset, offset + 50):
            rng = random.Random(seed)
            source, target = _random_pair(rng)
            cache = ContainmentOracleCache()

            uncached = mapping_targets(source, target, cache=None)
            cold = mapping_targets(source, target, cache=cache)
            assert cold == uncached, f"cold store diverged (seed {seed})"

            # A structurally identical pair under fresh ids and shuffled
            # sibling order must be served by remap, identically.
            s2 = isomorphic_shuffle(source, rng=rng)
            t2 = isomorphic_shuffle(target, rng=rng)
            hit = mapping_targets(s2, t2, cache=cache)
            assert hit == mapping_targets(s2, t2, cache=None), (
                f"remapped hit diverged (seed {seed})"
            )
            assert cache.stats.hits >= 1, f"expected a cache hit (seed {seed})"

    @pytest.mark.parametrize("offset", range(0, 100, 25))
    def test_containment_predicates_agree(self, offset):
        for seed in range(offset, offset + 25):
            rng = random.Random(1000 + seed)
            q1, q2 = _random_pair(rng)
            with oracle_cache_disabled():
                raw = (
                    is_contained_in(q1, q2),
                    is_contained_in(q2, q1),
                    equivalent(q1, q2),
                )
            cached = (
                is_contained_in(q1, q2),
                is_contained_in(q2, q1),
                equivalent(q1, q2),
            )
            # Twice: the second round is served from the warm cache.
            assert cached == raw, f"cold round diverged (seed {seed})"
            assert (
                is_contained_in(q1, q2),
                is_contained_in(q2, q1),
                equivalent(q1, q2),
            ) == raw, f"warm round diverged (seed {seed})"


class TestMinimizerDifferential:
    """CIM / ACIM / CDM / pipeline outputs are unchanged by every cache
    layer (process-wide oracle cache, prune memo)."""

    @pytest.mark.parametrize("offset", range(0, 120, 30))
    def test_cim_acim_unchanged(self, offset):
        for seed in range(offset, offset + 30):
            rng = random.Random(seed)
            q = duplicate_random_branch(
                random_query(rng.randint(3, 18), types=["a", "b", "c"], rng=rng),
                rng=rng,
            )
            on = acim_minimize(q, oracle_cache=True)
            with oracle_cache_disabled():
                off = acim_minimize(q, oracle_cache=False)
            assert on.eliminated == off.eliminated, f"seed {seed}"
            assert to_sexpr(on.pattern) == to_sexpr(off.pattern), f"seed {seed}"

    @pytest.mark.parametrize("shape", ("right-deep", "bushy"))
    def test_acim_under_constraints_unchanged(self, shape):
        for size in (8, 21, 34):
            q, repo = incremental_workload(size, shape=shape)
            on = acim_minimize(q, repo, oracle_cache=True)
            with oracle_cache_disabled():
                off = acim_minimize(q, repo, oracle_cache=False)
            assert on.eliminated == off.eliminated
            assert to_sexpr(on.pattern) == to_sexpr(off.pattern)

    def test_cdm_unchanged(self):
        """CDM runs outside the oracle-cache subsystem entirely (the
        Figure 6 rules are direct structural matches, not containment
        checks), so disabling the cache cannot change its output."""
        for seed in range(60):
            q = random_query(24, types=["a", "b", "c"], seed=seed)
            on = cdm_minimize(q, CONSTRAINTS)
            with oracle_cache_disabled():
                off = cdm_minimize(q, CONSTRAINTS)
            assert on.eliminated == off.eliminated, f"seed {seed}"
            assert to_sexpr(on.pattern) == to_sexpr(off.pattern), f"seed {seed}"

    def test_pipeline_unchanged(self):
        for seed in range(40):
            rng = random.Random(seed)
            q = duplicate_random_branch(
                random_query(rng.randint(3, 14), types=["a", "b", "c"], rng=rng),
                rng=rng,
            )
            on = minimize(q, CONSTRAINTS, oracle_cache=True)
            with oracle_cache_disabled():
                off = minimize(q, CONSTRAINTS, oracle_cache=False)
            assert to_sexpr(on.pattern) == to_sexpr(off.pattern), f"seed {seed}"
            assert on.removed_count == off.removed_count, f"seed {seed}"

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_batch_composition(self, jobs):
        """The cache composes with BatchMinimizer: same patterns for
        every (jobs, oracle_cache) setting; workers rebuild their own."""
        queries, ics = batch_workload(10, kind="fig8", distinct=3, size=20, seed=5)
        on = minimize_batch(
            queries, ics, MinimizeOptions(jobs=jobs, memoize=False, oracle_cache=True)
        )
        with oracle_cache_disabled():
            off = minimize_batch(
                queries,
                ics,
                MinimizeOptions(jobs=jobs, memoize=False, oracle_cache=False),
            )
        assert [to_sexpr(p) for p in on.patterns()] == [
            to_sexpr(p) for p in off.patterns()
        ]

    def test_batch_minimizer_keeps_flag(self):
        minimizer = BatchMinimizer(CONSTRAINTS, MinimizeOptions(oracle_cache=False))
        assert minimizer.oracle_cache is False
        queries = [random_query(6, types=["a", "b", "c"], seed=s) for s in range(4)]
        batch = minimizer.minimize_all(queries)
        assert batch.stats.engine_counters.get("prune_memo_hits", 0) == 0


class TestPruneMemo:
    def test_prune_memo_hits_on_heterogeneous_patterns(self):
        total_hits = 0
        for seed in range(20):
            rng = random.Random(seed)
            q = duplicate_random_branch(
                random_query(25, types=["a", "b", "c", "d", "e"], rng=rng), rng=rng
            )
            result = acim_minimize(q, oracle_cache=True)
            total_hits += result.images_stats.prune_memo_hits
        assert total_hits > 0, "prune memo never hit across 20 workloads"

    def test_prune_memo_counters_off_when_disabled(self):
        q = duplicate_random_branch(random_query(20, seed=1), seed=1)
        result = acim_minimize(q, oracle_cache=False)
        assert result.images_stats.prune_memo_hits == 0
        assert result.images_stats.prune_memo_misses == 0

    def test_images_stats_counters_include_prune_memo(self):
        q = duplicate_random_branch(random_query(12, seed=2), seed=2)
        result = acim_minimize(q, oracle_cache=True)
        counters = result.images_stats.counters()
        assert "prune_memo_hits" in counters
        assert "prune_memo_misses" in counters


# ---------------------------------------------------------------------------
# Property tests (hypothesis)
# ---------------------------------------------------------------------------

TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 8) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    pattern.validate()
    return pattern


@settings(max_examples=100, deadline=None)
@given(patterns(), patterns(), st.integers(min_value=0, max_value=10**6))
def test_remap_invariant_under_relabeling(source, target, seed):
    """The keying theorem: for any node-id relabeling / sibling reshuffle
    of a cached pair, the remapped table equals the direct DP."""
    cache = ContainmentOracleCache()
    mapping_targets(source, target, cache=cache)
    s2 = isomorphic_shuffle(source, seed=seed)
    t2 = isomorphic_shuffle(target, seed=seed + 1)
    hit = cache.lookup(s2, t2)
    assert hit is not None
    assert hit == mapping_targets(s2, t2, cache=None)


@settings(max_examples=100, deadline=None)
@given(patterns(), patterns())
def test_equivalent_fast_path_agrees_with_two_pass_dp(q1, q2):
    """The ``equivalent`` fingerprint short-circuit never changes the
    answer of the two-DP-pass definition."""
    slow = is_contained_in(q1, q2, cache=None) and is_contained_in(
        q2, q1, cache=None
    )
    assert equivalent(q1, q2) == slow


@settings(max_examples=60, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=10**6))
def test_equivalent_fast_path_fires_on_isomorphic_pairs(q, seed):
    shuffled = isomorphic_shuffle(q, seed=seed)
    stats = ContainmentStats()
    assert equivalent(q, shuffled, stats=stats)
    assert stats.equivalent_fast_path == 1


@settings(max_examples=60, deadline=None)
@given(patterns(max_size=7), st.integers(min_value=0, max_value=10**6))
def test_cim_differential_property(q, seed):
    assume(q.size >= 2)
    bloated = isomorphic_shuffle(duplicate_random_branch(q, seed=seed), seed=seed)
    on = cim_minimize(bloated, oracle_cache=True)
    with oracle_cache_disabled():
        off = cim_minimize(bloated, oracle_cache=False)
    assert on.eliminated == off.eliminated
    assert to_sexpr(on.pattern) == to_sexpr(off.pattern)


# ---------------------------------------------------------------------------
# Pending-slot hand-off regressions (the id-reuse poisoning bug)
# ---------------------------------------------------------------------------


class TestPendingHandoff:
    """The lookup→store hand-off must be validated by object identity and
    mutation stamp — never by ``id()``, which CPython reuses after GC."""

    def test_pending_slot_pins_the_looked_up_patterns(self):
        """A missed lookup's patterns stay strongly referenced until the
        matching store (or the next lookup) — so a *different* pattern
        allocated at a recycled address can never match the slot."""
        import gc
        import weakref

        cache = ContainmentOracleCache()
        source = random_query(4, types=["a", "b"], seed=11)
        target = random_query(5, types=["a", "b"], seed=12)
        assert cache.lookup(source, target) is None  # miss arms the slot
        refs = (weakref.ref(source), weakref.ref(target))
        del source, target
        gc.collect()
        # Alive: the pending slot holds strong references, which is what
        # makes identity (``is``) validation sound against id reuse.
        assert refs[0]() is not None and refs[1]() is not None

    def test_store_after_mutation_does_not_poison(self):
        """Mutating a pattern between the missed lookup and the store
        invalidates the hand-off: the entry must be keyed by the
        pattern's *current* shape, not the stale pre-mutation keys."""
        cache = ContainmentOracleCache()
        source = random_query(4, types=["a", "b"], seed=21)
        target = duplicate_random_branch(
            random_query(6, types=["a", "b"], seed=22), seed=22
        )
        assert cache.lookup(source, target) is None
        # Mutate the target after the miss (bumps its _version stamp).
        leaf = next(
            n for n in target.leaves() if not n.is_root and not n.is_output
        )
        target.delete_leaf(leaf)
        table = mapping_targets(source, target, cache=None)
        cache.store(source, target, table)
        # The entry must now hit for the *mutated* shape...
        probe_s, probe_t = source.copy(), target.copy()
        hit = cache.lookup(probe_s, probe_t)
        assert hit is not None
        assert hit == mapping_targets(probe_s, probe_t, cache=None)

    def test_interleaved_miss_then_foreign_store_recanonicalizes(self):
        """A store for a pair *other than* the pending one must not
        consume the slot: the correct entries land for both pairs."""
        cache = ContainmentOracleCache()
        s1 = random_query(4, types=["a", "b"], seed=31)
        t1 = random_query(5, types=["a", "b"], seed=32)
        s2 = random_query(3, types=["a", "c"], seed=33)
        t2 = random_query(6, types=["a", "c"], seed=34)
        assert cache.lookup(s1, t1) is None  # slot now pends (s1, t1)
        # A different pair is stored first (an interleaved caller).
        cache.store(s2, t2, mapping_targets(s2, t2, cache=None))
        cache.store(s1, t1, mapping_targets(s1, t1, cache=None))
        for s, t in ((s1, t1), (s2, t2)):
            probe_s, probe_t = s.copy(), t.copy()
            assert cache.lookup(probe_s, probe_t) == mapping_targets(
                probe_s, probe_t, cache=None
            )


# ---------------------------------------------------------------------------
# Stats-counter thread safety
# ---------------------------------------------------------------------------


class TestStatsUnderConcurrency:
    def test_hammered_counters_balance_exactly(self):
        """hits + misses must equal lookups *exactly* after a threaded
        hammer — increments outside the lock would drop counts."""
        import sys
        import threading

        cache = ContainmentOracleCache(maxsize=64)
        rng = random.Random(41)
        pairs = [_random_pair(rng) for _ in range(8)]
        for s, t in pairs:
            mapping_targets(s, t, cache=cache)
        per_thread = 150
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        errors: list = []

        def hammer(seed: int) -> None:
            try:
                local = random.Random(seed)
                barrier.wait()
                for _ in range(per_thread):
                    s, t = local.choice(pairs)
                    cache.lookup(
                        isomorphic_shuffle(s, seed=local.randint(0, 99)),
                        isomorphic_shuffle(t, seed=local.randint(0, 99)),
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force adversarial interleavings
        try:
            threads = [
                threading.Thread(target=hammer, args=(seed,))
                for seed in range(n_threads)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
        finally:
            sys.setswitchinterval(old)
        assert errors == []
        total = n_threads * per_thread
        # The 8 seeding calls each counted one miss before storing.
        assert cache.stats.hits + cache.stats.misses == total + len(pairs)
        assert cache.stats.hits == total  # every pair was pre-seeded
