"""Tests for the reduction step R (direct IC-implied leaf elimination)."""

from __future__ import annotations

from repro import TreePattern
from repro.constraints import closure, co_occurrence, required_child, required_descendant
from repro.core.reduction import is_directly_implied, reduce_pattern


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestIsDirectlyImplied:
    def test_c_edge_needs_child_ic(self):
        pattern = q(("Book*", [("/", "Title")]))
        leaf = pattern.find("Title")[0]
        assert is_directly_implied(leaf, closure([required_child("Book", "Title")]))
        assert not is_directly_implied(leaf, closure([required_descendant("Book", "Title")]))

    def test_d_edge_satisfied_by_descendant_ic(self):
        pattern = q(("Book*", [("//", "Title")]))
        leaf = pattern.find("Title")[0]
        assert is_directly_implied(leaf, closure([required_descendant("Book", "Title")]))

    def test_d_edge_satisfied_by_child_ic_via_closure(self):
        pattern = q(("Book*", [("//", "Title")]))
        leaf = pattern.find("Title")[0]
        assert is_directly_implied(leaf, closure([required_child("Book", "Title")]))

    def test_output_leaf_never_implied(self):
        pattern = q(("Book", [("/", "Title*")]))
        leaf = pattern.output_node
        assert not is_directly_implied(leaf, closure([required_child("Book", "Title")]))

    def test_internal_node_never_implied(self):
        pattern = q(("Book*", [("/", ("Author", [("/", "LastName")]))]))
        author = pattern.find("Author")[0]
        assert not is_directly_implied(author, closure([required_child("Book", "Author")]))

    def test_augmented_parent_types_consulted(self):
        # Parent carries an extra (co-occurrence) type whose IC applies.
        pattern = q(("PermEmp*", [("/", "Badge")]))
        pattern.add_extra_type(pattern.root, "Employee")
        repo = closure([required_child("Employee", "Badge")])
        assert is_directly_implied(pattern.find("Badge")[0], repo)


class TestReducePattern:
    def test_cascades_up_chains(self):
        pattern = q(("t0*", [("/", ("t1", [("/", "t2")]))]))
        repo = [required_child("t0", "t1"), required_child("t1", "t2")]
        assert reduce_pattern(pattern, repo).size == 1

    def test_respects_missing_ics(self):
        pattern = q(("t0*", [("/", ("t1", [("/", "t2")]))]))
        repo = [required_child("t0", "t1")]  # t2 not implied -> blocks t1 too
        assert reduce_pattern(pattern, repo).size == 3

    def test_in_place_flag(self):
        pattern = q(("Book*", [("/", "Title")]))
        repo = [required_child("Book", "Title")]
        out = reduce_pattern(pattern, repo)
        assert pattern.size == 2 and out.size == 1
        out2 = reduce_pattern(pattern, repo, in_place=True)
        assert out2 is pattern and pattern.size == 1

    def test_co_occurrence_alone_never_reduces(self):
        pattern = q(("Org*", [("/", "Manager"), ("/", "Employee")]))
        out = reduce_pattern(pattern, [co_occurrence("Manager", "Employee")])
        assert out.size == 3  # reduction is strictly weaker than CDM
