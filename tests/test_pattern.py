"""Tests for the tree pattern model (nodes, construction, mutation)."""

from __future__ import annotations

import pytest

from repro import CHILD, DESCENDANT, EdgeKind, TreePattern
from repro.errors import InvalidPatternError, OutputNodeError


def small_pattern() -> TreePattern:
    return TreePattern.build(
        ("a", [("/", ("b*", [("//", "c"), ("/", "d")])), ("//", "e")])
    )


class TestEdgeKind:
    def test_symbols(self):
        assert CHILD.symbol == "/"
        assert DESCENDANT.symbol == "//"

    def test_from_symbol(self):
        assert EdgeKind.from_symbol("/") is CHILD
        assert EdgeKind.from_symbol("//") is DESCENDANT

    def test_from_symbol_rejects_garbage(self):
        with pytest.raises(ValueError):
            EdgeKind.from_symbol("///")

    def test_predicates(self):
        assert CHILD.is_child and not CHILD.is_descendant
        assert DESCENDANT.is_descendant and not DESCENDANT.is_child


class TestConstruction:
    def test_build_counts_nodes(self):
        q = small_pattern()
        assert q.size == 5
        assert len(q) == 5

    def test_root_properties(self):
        q = small_pattern()
        assert q.root.is_root
        assert q.root.edge is None
        assert q.root.type == "a"

    def test_star_suffix_marks_output(self):
        q = small_pattern()
        assert q.output_node.type == "b"

    def test_build_defaults_star_to_root(self):
        q = TreePattern.build(("x", [("/", "y")]))
        assert q.output_node is q.root

    def test_leaf_spec_as_bare_string(self):
        q = TreePattern.build("solo")
        assert q.size == 1 and q.root.is_leaf and q.root.is_output

    def test_add_child_returns_attached_node(self):
        q = TreePattern("r", root_is_output=True)
        child = q.add_child(q.root, "x", CHILD)
        assert child.parent is q.root
        assert q.root.children == (child,)
        assert child.edge is CHILD

    def test_two_outputs_rejected(self):
        q = TreePattern("r", root_is_output=True)
        with pytest.raises(OutputNodeError):
            q.add_child(q.root, "x", CHILD, is_output=True)

    def test_bad_build_spec_rejected(self):
        with pytest.raises(InvalidPatternError):
            TreePattern.build(42)  # type: ignore[arg-type]

    def test_empty_type_rejected(self):
        with pytest.raises(InvalidPatternError):
            TreePattern("")

    def test_cross_pattern_attach_rejected(self):
        q1, q2 = TreePattern("a"), TreePattern("b")
        with pytest.raises(InvalidPatternError):
            q1.add_child(q2.root, "x", CHILD)


class TestTraversal:
    def test_preorder_order(self):
        q = small_pattern()
        assert [n.type for n in q.nodes()] == ["a", "b", "c", "d", "e"]

    def test_postorder_children_first(self):
        q = small_pattern()
        order = [n.type for n in q.postorder()]
        assert order.index("c") < order.index("b")
        assert order[-1] == "a"

    def test_leaves(self):
        q = small_pattern()
        assert {n.type for n in q.leaves()} == {"c", "d", "e"}

    def test_ancestors_nearest_first(self):
        q = small_pattern()
        c = q.find("c")[0]
        assert [n.type for n in c.ancestors()] == ["b", "a"]

    def test_path_from_root(self):
        q = small_pattern()
        c = q.find("c")[0]
        assert [n.type for n in c.path_from_root()] == ["a", "b", "c"]

    def test_depth_and_fanout(self):
        q = small_pattern()
        assert q.depth == 2
        assert q.max_fanout == 2
        assert q.find("c")[0].depth == 2

    def test_c_and_d_children(self):
        q = small_pattern()
        b = q.find("b")[0]
        assert [n.type for n in b.c_children()] == ["d"]
        assert [n.type for n in b.d_children()] == ["c"]

    def test_is_ancestor(self):
        q = small_pattern()
        a, c, e = q.root, q.find("c")[0], q.find("e")[0]
        assert q.is_ancestor(a, c)
        assert not q.is_ancestor(c, a)
        assert not q.is_ancestor(c, e)

    def test_node_lookup(self):
        q = small_pattern()
        assert q.node(q.root.id) is q.root
        assert q.has_node(q.root.id)
        assert not q.has_node(999)


class TestMutation:
    def test_delete_leaf(self):
        q = small_pattern()
        c = q.find("c")[0]
        q.delete_leaf(c)
        assert q.size == 4
        assert not q.has_node(c.id)
        assert "c" not in q.node_types()

    def test_delete_leaf_rejects_internal(self):
        q = small_pattern()
        with pytest.raises(InvalidPatternError):
            q.delete_leaf(q.find("b")[0])

    def test_delete_leaf_rejects_output(self):
        q = TreePattern.build(("a", [("/", "b*")]))
        with pytest.raises(OutputNodeError):
            q.delete_leaf(q.output_node)

    def test_delete_leaf_rejects_root(self):
        q = TreePattern("a")  # not the output node, so the root check fires
        with pytest.raises(InvalidPatternError):
            q.delete_leaf(q.root)

    def test_delete_subtree(self):
        q = TreePattern.build(
            ("a*", [("/", ("b", [("//", "c"), ("/", "d")])), ("//", "e")])
        )
        removed = q.delete_subtree(q.find("b")[0])
        assert {n.type for n in removed} == {"b", "c", "d"}
        # Postorder: leaves before their parent.
        assert [n.type for n in removed][-1] == "b"
        assert q.size == 2

    def test_delete_subtree_protects_output(self):
        q = small_pattern()  # the output node is b itself
        with pytest.raises(OutputNodeError):
            q.delete_subtree(q.find("b")[0])

    def test_delete_subtree_rejects_root(self):
        q = small_pattern()
        with pytest.raises(InvalidPatternError):
            q.delete_subtree(q.root)

    def test_strip_temporaries(self):
        q = TreePattern.build(("a*", [("/", "b")]))
        q.add_child(q.root, "t", CHILD, temporary=True)
        tmp2 = q.add_child(q.find("b")[0], "u", DESCENDANT, temporary=True)
        q.add_child(tmp2, "v", CHILD)  # non-temp under temp goes too
        assert q.strip_temporaries() == 3
        assert q.size == 2

    def test_extra_types(self):
        q = TreePattern.build(("a*", [("/", "b")]))
        b = q.find("b")[0]
        q.add_extra_type(b, "x")
        q.add_extra_type(b, "b")  # self type is a no-op
        assert b.all_types == {"b", "x"}
        assert b.has_type("x") and b.has_type("b") and not b.has_type("y")
        q.clear_extra_types()
        assert b.all_types == {"b"}


class TestCopyAndCanonical:
    def test_copy_is_deep_and_id_preserving(self):
        q = small_pattern()
        clone = q.copy()
        assert clone.isomorphic(q)
        assert {n.id for n in clone.nodes()} == {n.id for n in q.nodes()}
        clone.delete_leaf(clone.find("c")[0])
        assert q.size == 5 and clone.size == 4

    def test_copy_preserves_flags(self):
        q = TreePattern.build(("a*", [("/", "b")]))
        q.add_child(q.root, "t", CHILD, temporary=True)
        q.add_extra_type(q.find("b")[0], "x")
        clone = q.copy()
        assert any(n.temporary for n in clone.nodes())
        assert clone.find("b")[0].all_types == {"b", "x"}

    def test_isomorphism_ignores_sibling_order(self):
        q1 = TreePattern.build(("a", [("/", "b"), ("//", "c")]))
        q2 = TreePattern.build(("a", [("//", "c"), ("/", "b")]))
        assert q1.isomorphic(q2)

    def test_isomorphism_distinguishes_edges(self):
        q1 = TreePattern.build(("a", [("/", "b")]))
        q2 = TreePattern.build(("a", [("//", "b")]))
        assert not q1.isomorphic(q2)

    def test_isomorphism_distinguishes_star(self):
        q1 = TreePattern.build(("a", [("/", "b*")]))
        q2 = TreePattern.build(("a*", [("/", "b")]))
        assert not q1.isomorphic(q2)

    def test_validate_detects_missing_output(self):
        q = TreePattern("a")
        with pytest.raises(OutputNodeError):
            q.validate()

    def test_to_ascii_mentions_every_node(self):
        art = small_pattern().to_ascii()
        for t in "abcde":
            assert t in art
        assert "b*" in art
