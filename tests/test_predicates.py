"""Tests for the value-predicate extension (paper Section 7)."""

from __future__ import annotations

import pytest

from repro import TreePattern
from repro.data import build_tree
from repro.errors import ParseError
from repro.extensions.predicates import (
    Condition,
    ConditionedPattern,
    Op,
    entails,
    parse_condition,
)


def c(text: str) -> Condition:
    return parse_condition(text)


class TestParseCondition:
    def test_numeric_ops(self):
        cond = c("price < 100")
        assert cond == Condition("price", Op.LT, 100)

    def test_all_operators(self):
        for op_text, op in [("<=", Op.LE), (">=", Op.GE), ("!=", Op.NE),
                            ("<", Op.LT), (">", Op.GT), ("=", Op.EQ)]:
            assert c(f"x {op_text} 1").op is op

    def test_quoted_strings(self):
        assert c("binding = 'hard'").value == "hard"
        assert c('binding = "soft"').value == "soft"

    def test_float_values(self):
        assert c("rate < 1.5").value == 1.5

    def test_unquoted_word_is_string(self):
        assert c("binding = hard").value == "hard"

    def test_malformed(self):
        with pytest.raises(ParseError):
            c("price about 100")
        with pytest.raises(ParseError):
            c("< 100")


class TestEvaluate:
    def test_numeric_comparison(self):
        assert c("price < 100").evaluate("50")
        assert not c("price < 100").evaluate("150")
        assert c("price >= 100").evaluate(100)

    def test_missing_value_fails(self):
        assert not c("price < 100").evaluate(None)

    def test_type_mismatch_fails_closed(self):
        assert not c("price < 100").evaluate("not-a-number")

    def test_string_equality(self):
        assert c("binding = 'hard'").evaluate("hard")
        assert not c("binding != 'hard'").evaluate("hard")


class TestEntailment:
    def test_interval_strengthening(self):
        assert entails([c("p < 50")], [c("p < 100")])
        assert not entails([c("p < 100")], [c("p < 50")])

    def test_equality_entails_bounds(self):
        assert entails([c("p = 10")], [c("p <= 10")])
        assert entails([c("p = 10")], [c("p >= 10")])
        assert entails([c("p = 10")], [c("p != 11")])
        assert not entails([c("p = 12")], [c("p <= 10")])

    def test_open_vs_closed_bounds(self):
        assert entails([c("p < 10")], [c("p <= 10")])
        assert not entails([c("p <= 10")], [c("p < 10")])

    def test_conjunction_both_sides(self):
        strong = [c("p > 0"), c("p < 10")]
        weak = [c("p > -5"), c("p < 100")]
        assert entails(strong, weak)
        assert not entails(weak, strong)

    def test_not_equals_handling(self):
        assert entails([c("p < 5")], [c("p != 7")])
        assert not entails([c("p != 7")], [c("p < 100")])
        assert entails([c("p != 7")], [c("p != 7")])

    def test_different_attributes_independent(self):
        assert not entails([c("p < 5")], [c("q < 5")])
        assert entails([c("p < 5"), c("q < 5")], [c("q < 100")])

    def test_empty_weak_side(self):
        assert entails([c("p < 5")], [])

    def test_string_conditions_conservative(self):
        assert entails([c("b = 'hard'")], [c("b = 'hard'")])
        assert not entails([c("b = 'hard'")], [c("b = 'soft'")])
        assert entails([c("b = 'hard'")], [c("b != 'soft'")])


class TestConditionedPattern:
    def two_books(self):
        pattern = TreePattern.build(("Shop*", [("/", "Book"), ("/", "Book")]))
        first, second = [n.id for n in pattern.nodes() if n.type == "Book"]
        return pattern, first, second

    def test_weaker_folds_onto_stronger(self):
        pattern, first, second = self.two_books()
        cp = ConditionedPattern(pattern, {first: [c("price < 100")], second: [c("price < 50")]})
        mini, result = cp.cim_minimize()
        assert result.removed_count == 1
        assert not mini.pattern.has_node(first)
        assert mini.conditions_at(second)

    def test_incomparable_conditions_block(self):
        pattern, first, second = self.two_books()
        cp = ConditionedPattern(pattern, {first: [c("price < 100")], second: [c("year > 2000")]})
        _, result = cp.cim_minimize()
        assert result.removed_count == 0

    def test_unconditioned_twin_still_folds(self):
        pattern, first, second = self.two_books()
        cp = ConditionedPattern(pattern, {second: [c("price < 50")]})
        mini, result = cp.cim_minimize()
        # The unconditioned branch is weaker: it folds onto the strong one.
        assert result.removed_count == 1
        assert mini.pattern.has_node(second)

    def test_conditioned_node_never_folds_onto_unconditioned(self):
        pattern, first, second = self.two_books()
        cp = ConditionedPattern(pattern, {first: [c("price < 100")]})
        mini, _ = cp.cim_minimize()
        assert mini.pattern.has_node(first)

    def test_unknown_node_id_rejected(self):
        pattern, *_ = self.two_books()
        with pytest.raises(KeyError):
            ConditionedPattern(pattern, {999: [c("p < 1")]})

    def test_evaluation_respects_conditions(self):
        shop = build_tree(("Shop", ["Book", "Book", "Book"]))
        for price, node in zip(("30", "70", "120"), shop.root.children):
            node.attributes["price"] = price
        query = TreePattern.build(("Shop", [("/", "Book*")]))
        cp = ConditionedPattern(query, {query.output_node.id: [c("price < 100")]})
        assert len(cp.answer_set(shop)) == 2

    def test_evaluation_falls_back_to_value(self):
        shop = build_tree(("Shop", [("Book", [], "42")]))
        query = TreePattern.build(("Shop", [("/", "Book*")]))
        cp = ConditionedPattern(query, {query.output_node.id: [Condition("price", Op.LT, 100)]})
        # No 'price' attribute: the node value is consulted.
        assert len(cp.answer_set(shop)) == 1
