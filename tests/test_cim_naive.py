"""Differential tests: naive CIM vs the enhanced Figure 3 driver."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TreePattern
from repro.core.cim import cim_minimize
from repro.core.cim_naive import cim_minimize_naive
from repro.core.edges import EdgeKind
from repro.workloads.paper_queries import figure2_b, figure2_c, figure2_h, figure2_i

TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 9) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


class TestNaive:
    def test_paper_examples(self):
        assert cim_minimize_naive(figure2_h()).pattern.isomorphic(figure2_i())
        assert cim_minimize_naive(figure2_b()).pattern.isomorphic(figure2_c())

    def test_in_place(self):
        pattern = TreePattern.build(("a*", [("/", "b"), ("/", "b")]))
        result = cim_minimize_naive(pattern, in_place=True)
        assert result.pattern is pattern and pattern.size == 2

    def test_more_checks_than_enhanced(self):
        pattern = figure2_h()
        naive = cim_minimize_naive(pattern)
        enhanced = cim_minimize(pattern)
        assert naive.stats.redundancy_checks >= enhanced.stats.redundancy_checks


@settings(max_examples=100, deadline=None)
@given(patterns())
def test_naive_and_enhanced_agree(pattern: TreePattern):
    naive = cim_minimize_naive(pattern).pattern
    enhanced = cim_minimize(pattern).pattern
    assert naive.isomorphic(enhanced)
