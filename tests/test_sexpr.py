"""Tests for the s-expression pattern format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import TreePattern
from repro.core.edges import EdgeKind
from repro.errors import ParseError
from repro.parsing import parse_sexpr, parse_xpath, to_sexpr


class TestParse:
    def test_nested(self):
        q = parse_sexpr("(a (/ (b* (// c))) (// d))")
        assert q.size == 4
        assert q.output_node.type == "b"
        assert q.find("c")[0].edge is EdgeKind.DESCENDANT

    def test_leaf_without_parens(self):
        q = parse_sexpr("(a (/ b))")
        assert q.size == 2

    def test_bare_root(self):
        q = parse_sexpr("root")
        assert q.size == 1 and q.root.is_output

    def test_default_output_is_root(self):
        q = parse_sexpr("(a (/ b))")
        assert q.output_node is q.root

    def test_whitespace_insensitive(self):
        q1 = parse_sexpr("(a (/ b) (// c))")
        q2 = parse_sexpr("(a\n  (/ b)\n  (// c))")
        assert q1.isomorphic(q2)

    @pytest.mark.parametrize(
        "text",
        ["", "(", "(a", "(a (b))", "(a (/ b) extra)", "(a (/))", "(a (x b))", "()", "(*)"],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ParseError):
            parse_sexpr(text)


class TestRoundTrip:
    def test_compact_and_pretty_agree(self):
        q = parse_xpath("a/b*[c][//d/e]")
        compact = to_sexpr(q)
        pretty = to_sexpr(q, pretty=True)
        assert parse_sexpr(compact).isomorphic(q)
        assert parse_sexpr(pretty).isomorphic(q)
        assert "\n" in pretty and "\n" not in compact


@st.composite
def patterns(draw, max_size: int = 8) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(["a", "b", "c"])))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(["a", "b", "c"])), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@settings(max_examples=150, deadline=None)
@given(patterns())
def test_round_trip_is_isomorphic(pattern: TreePattern):
    assert parse_sexpr(to_sexpr(pattern)).isomorphic(pattern)
