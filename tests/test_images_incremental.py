"""Tests for the incremental images engine (maintained across deletions).

Three layers:

* unit tests for :meth:`AncestorTable.delete_leaf`, the frozen table
  views, and :meth:`ImagesEngine.delete_leaf` bookkeeping;
* a hypothesis property: after any legal sequence of tracked deletions,
  the engine's tables, type index, and redundancy answers are identical
  to a freshly built engine — across random patterns, virtual targets,
  and pair filters;
* differential tests pinning the incremental drivers (``cim_minimize``,
  ``acim_minimize``, seeded elimination orders) to the from-scratch
  ``incremental=False`` baseline on 200+ seeded random workloads, with
  ``cim_minimize_naive`` and ``exhaustive_minimize`` cross-checks on
  small inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import TreePattern, cim_minimize, equivalent, is_minimal
from repro.constraints.closure import closure
from repro.core.acim import acim_minimize
from repro.core.bruteforce import exhaustive_minimize
from repro.core.chase import augmentation_targets
from repro.core.cim_naive import cim_minimize_naive
from repro.core.edges import EdgeKind
from repro.core.images import AncestorTable, ImagesEngine, ImagesStats, VirtualTarget
from repro.errors import InvalidPatternError
from repro.workloads.icgen import relevant_constraints
from repro.workloads.querygen import duplicate_random_branch, random_query

TYPES = ["a", "b", "c"]


def chain(*types: str) -> TreePattern:
    pattern = TreePattern(types[0])
    node = pattern.root
    for t in types[1:]:
        node = pattern.add_child(node, t, EdgeKind.CHILD)
    node.is_output = True
    return pattern


def fanout(root_type: str, *child_types: str) -> TreePattern:
    """A starred root with one c-child per entry (duplicates redundant)."""
    pattern = TreePattern(root_type)
    pattern.root.is_output = True
    for t in child_types:
        pattern.add_child(pattern.root, t, EdgeKind.CHILD)
    return pattern


# ---------------------------------------------------------------------------
# AncestorTable: frozen views + incremental row deletion
# ---------------------------------------------------------------------------


class TestAncestorTableViews:
    def test_views_are_frozen(self):
        pattern = chain("a", "b", "c")
        table = AncestorTable(pattern)
        kids = table.c_children_of(pattern.root.id)
        below = table.descendants_of(pattern.root.id)
        assert isinstance(kids, frozenset)
        assert isinstance(below, frozenset)

    def test_mutating_a_view_does_not_corrupt_the_table(self):
        # Regression: these used to hand out the internal mutable sets, so
        # a caller's discard() silently broke the relation.
        pattern = chain("a", "b", "c")
        table = AncestorTable(pattern)
        b = pattern.root.children[0]
        view = set(table.c_children_of(pattern.root.id))
        view.discard(b.id)
        assert b.id in table.c_children_of(pattern.root.id)
        assert table.is_c_child(b.id, pattern.root.id)


class TestAncestorTableDeleteLeaf:
    def test_removes_row_and_ancestor_entries(self):
        pattern = chain("a", "b", "c")
        table = AncestorTable(pattern)
        leaf = next(iter(pattern.leaves()))
        table.delete_leaf(leaf.id)
        assert not table.has_row(leaf.id)
        for node in pattern.nodes():
            assert leaf.id not in table.descendants_of(node.id)
            assert leaf.id not in table.c_children_of(node.id)

    def test_unknown_id_rejected(self):
        table = AncestorTable(chain("a", "b"))
        with pytest.raises(InvalidPatternError):
            table.delete_leaf(999)

    def test_internal_node_rejected(self):
        pattern = chain("a", "b", "c")
        table = AncestorTable(pattern)
        with pytest.raises(InvalidPatternError):
            table.delete_leaf(pattern.root.id)

    def test_virtual_target_row_deletable(self):
        pattern = chain("a", "b")
        vt = VirtualTarget(-1, "c", pattern.root.id, EdgeKind.CHILD)
        table = AncestorTable(pattern, [vt])
        assert table.is_c_child(-1, pattern.root.id)
        table.delete_leaf(-1)
        assert not table.has_row(-1)
        assert not table.is_c_child(-1, pattern.root.id)

    def test_anchor_with_virtual_descendants_rejected(self):
        pattern = chain("a", "b")
        b = pattern.root.children[0]
        vt = VirtualTarget(-1, "c", b.id, EdgeKind.DESCENDANT)
        table = AncestorTable(pattern, [vt])
        with pytest.raises(InvalidPatternError):
            table.delete_leaf(b.id)  # the virtual row must go first


# ---------------------------------------------------------------------------
# ImagesEngine.delete_leaf bookkeeping
# ---------------------------------------------------------------------------


class TestEngineDeleteLeaf:
    def test_drops_anchored_virtuals_and_reports_them(self):
        # a / b / c with two virtual targets on c, one elsewhere.
        pattern = TreePattern("a")
        pattern.root.is_output = True
        b = pattern.add_child(pattern.root, "b", EdgeKind.CHILD)
        c = pattern.add_child(b, "c", EdgeKind.CHILD)
        virtual = [
            VirtualTarget(-1, "x", c.id, EdgeKind.CHILD),
            VirtualTarget(-2, "y", c.id, EdgeKind.DESCENDANT),
            VirtualTarget(-3, "x", b.id, EdgeKind.CHILD),
        ]
        engine = ImagesEngine(pattern, virtual)
        pattern.delete_leaf(c)
        dropped = engine.delete_leaf(c)
        assert {vt.id for vt in dropped} == {-1, -2}
        assert {vt.id for vt in engine.virtual} == {-3}
        assert not engine.ancestors.has_row(c.id)
        assert not engine.ancestors.has_row(-1)
        assert engine.ancestors.has_row(-3)

    def test_counters_attribute_build_vs_delete(self):
        pattern = fanout("a", "b", "b", "b")
        stats = ImagesStats()
        result = cim_minimize(pattern, stats=stats)
        assert result.removed_count == 2  # three identical b children -> one
        assert stats.engine_builds == 1
        assert stats.incremental_deletes == 2

        rebuild_stats = ImagesStats()
        cim_minimize(pattern, stats=rebuild_stats, incremental=False)
        assert rebuild_stats.engine_builds == 3  # initial + one per deletion
        assert rebuild_stats.incremental_deletes == 0

    def test_base_cache_counters_present_in_flat_dict(self):
        stats = ImagesStats()
        cim_minimize(fanout("a", "b", "b"), stats=stats)
        counters = stats.counters()
        assert counters["base_cache_misses"] > 0
        for key in (
            "engine_builds",
            "incremental_deletes",
            "base_cache_hits",
            "max_image_size_post_prune",
        ):
            assert key in counters

    def test_post_prune_image_size_tracked(self):
        stats = ImagesStats()
        result = cim_minimize(fanout("a", "b", "b", "b"), stats=stats)
        assert result.removed_count > 0
        assert stats.max_image_size_post_prune >= 1
        assert stats.max_image_size_post_prune <= stats.max_image_size


# ---------------------------------------------------------------------------
# Property: tracked deletions == fresh engine
# ---------------------------------------------------------------------------


@st.composite
def patterns(draw, max_size: int = 9) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    starred = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
    starred.is_output = True
    pattern.validate()
    return pattern


def _delete_random_leaves(draw, query, engine, rounds: int) -> None:
    """Track a random legal deletion sequence through ``engine``."""
    for _ in range(rounds):
        deletable = [
            n for n in query.leaves() if not n.is_root and not n.is_output
        ]
        if not deletable:
            return
        leaf = deletable[draw(st.integers(min_value=0, max_value=len(deletable) - 1))]
        query.delete_leaf(leaf)
        engine.delete_leaf(leaf)


def _assert_engines_agree(incremental: ImagesEngine, fresh: ImagesEngine, query) -> None:
    assert incremental.ancestors._ancestors == fresh.ancestors._ancestors
    assert incremental.ancestors._c_children == fresh.ancestors._c_children
    assert incremental.ancestors._descendants == fresh.ancestors._descendants
    # The incremental engine keeps (now empty) buckets for extinct types.
    pruned = {t: ids for t, ids in incremental._by_type.items() if ids}
    assert pruned == {t: ids for t, ids in fresh._by_type.items() if ids}
    assert incremental.virtual == fresh.virtual
    for leaf in query.leaves():
        if leaf.is_root or leaf.is_output:
            continue
        assert incremental.is_redundant_leaf(leaf) == fresh.is_redundant_leaf(leaf)
        assert incremental.redundancy_witness(leaf) == fresh.redundancy_witness(leaf)


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_engine_after_deletions_equals_fresh_engine(data):
    query = data.draw(patterns())
    engine = ImagesEngine(query)
    # Warm the memoized base sets before mutating, so the subtracted
    # cached sets (not just freshly computed ones) are what's compared.
    for leaf in list(query.leaves()):
        if not leaf.is_root and not leaf.is_output:
            engine.is_redundant_leaf(leaf)
    _delete_random_leaves(data.draw, query, engine, rounds=4)
    _assert_engines_agree(engine, ImagesEngine(query), query)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_engine_with_virtual_targets_equals_fresh_engine(data):
    base = data.draw(patterns(max_size=7))
    # relevant_constraints never emits source == target, so an in-query
    # target pool needs at least two distinct types.
    assume(len(base.node_types()) >= 2)
    ics = relevant_constraints(
        base,
        data.draw(st.integers(min_value=1, max_value=4)),
        target_pool=sorted(base.node_types()),
        seed=data.draw(st.integers(min_value=0, max_value=999)),
    )
    virtual, extra_types = augmentation_targets(base, closure(ics))
    query = base.copy()
    for node_id, types in extra_types.items():
        for t in sorted(types):
            query.add_extra_type(query.node(node_id), t)
    engine = ImagesEngine(query, virtual)
    _delete_random_leaves(data.draw, query, engine, rounds=3)
    survivors = [vt for vt in virtual if query.has_node(vt.parent_id)]
    _assert_engines_agree(engine, ImagesEngine(query, survivors), query)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_engine_with_pair_filter_equals_fresh_engine(data):
    query = data.draw(patterns(max_size=8))
    salt = data.draw(st.integers(min_value=0, max_value=5))

    def pair_filter(source_id: int, target_id: int) -> bool:
        return (source_id * 31 + target_id + salt) % 4 != 0

    engine = ImagesEngine(query, pair_filter=pair_filter)
    for leaf in list(query.leaves()):
        if not leaf.is_root and not leaf.is_output:
            engine.is_redundant_leaf(leaf)
    _delete_random_leaves(data.draw, query, engine, rounds=3)
    _assert_engines_agree(
        engine, ImagesEngine(query, pair_filter=pair_filter), query
    )


# ---------------------------------------------------------------------------
# Differential: incremental drivers vs the from-scratch baseline
# (100 + 60 + 40 + 30 + 15 = 245 seeded workloads)
# ---------------------------------------------------------------------------


def _random_workload(seed: int, size: int = 10) -> TreePattern:
    base = random_query(size, types=TYPES, seed=seed)
    return duplicate_random_branch(base, seed=seed)


@pytest.mark.parametrize("seed", range(100))
def test_cim_incremental_matches_rebuild(seed):
    query = _random_workload(seed)
    fast = cim_minimize(query)
    slow = cim_minimize(query, incremental=False)
    assert fast.eliminated == slow.eliminated
    assert fast.pattern.isomorphic(slow.pattern)
    assert equivalent(fast.pattern, query)
    assert is_minimal(fast.pattern)


@pytest.mark.parametrize("seed", range(60))
def test_acim_incremental_matches_rebuild(seed):
    """ACIM runs exercise the virtual-target maintenance: constraints with
    in-query targets make augmentation produce virtual rows."""
    query = _random_workload(seed, size=8)
    pool = sorted(query.node_types())
    ics = (
        relevant_constraints(query, 3, target_pool=pool, seed=seed)
        if len(pool) >= 2
        else []
    )
    fast = acim_minimize(query, ics)
    slow = acim_minimize(query, ics, incremental=False)
    assert fast.eliminated == slow.eliminated
    assert fast.virtual_count == slow.virtual_count
    assert fast.pattern.isomorphic(slow.pattern)


@pytest.mark.parametrize("seed", range(40))
def test_seeded_elimination_orders_match_rebuild(seed):
    """With the same seed both paths draw the same elimination order, so
    the runs must agree deletion-for-deletion, not just up to iso."""
    query = _random_workload(seed, size=12)
    fast = cim_minimize(query, seed=seed, collect_witnesses=True)
    slow = cim_minimize(query, seed=seed, incremental=False, collect_witnesses=True)
    assert fast.eliminated == slow.eliminated
    assert fast.witnesses == slow.witnesses


@pytest.mark.parametrize("seed", range(30))
def test_incremental_matches_naive_cim(seed):
    query = _random_workload(seed, size=9)
    fast = cim_minimize(query)
    naive = cim_minimize_naive(query)
    assert fast.pattern.isomorphic(naive.pattern)


@pytest.mark.parametrize("seed", range(15))
def test_incremental_matches_bruteforce(seed):
    query = _random_workload(seed, size=5)
    fast = cim_minimize(query)
    best = exhaustive_minimize(query)
    assert fast.pattern.size == best.size
    assert equivalent(fast.pattern, best)


class TestNestedVirtualTargets:
    """Witness subtrees: virtual targets parented on virtual targets."""

    def test_delete_leaf_drops_whole_witness_subtree(self):
        pattern = TreePattern("a", root_is_output=True)
        b = pattern.add_child(pattern.root, "b", EdgeKind.CHILD)
        pattern.add_child(pattern.root, "c", EdgeKind.CHILD)
        virtual = [
            VirtualTarget(-1, "x", b.id, EdgeKind.CHILD),
            VirtualTarget(-2, "y", -1, EdgeKind.CHILD),
            VirtualTarget(-3, "z", -2, EdgeKind.DESCENDANT),
            VirtualTarget(-4, "x", pattern.root.id, EdgeKind.CHILD),
        ]
        engine = ImagesEngine(pattern, virtual)
        assert engine.ancestors.is_descendant(-3, b.id)
        pattern.delete_leaf(b)
        dropped = engine.delete_leaf(b)
        assert [vt.id for vt in dropped] == [-1, -2, -3]
        assert [vt.id for vt in engine.virtual] == [-4]
        for vid in (-1, -2, -3):
            assert not engine.ancestors.has_row(vid)
        assert engine.ancestors.has_row(-4)

    def test_extra_types_make_virtual_reachable_by_other_types(self):
        pattern = TreePattern("a", root_is_output=True)
        pattern.add_child(pattern.root, "c", EdgeKind.CHILD)
        vt = VirtualTarget(
            -1, "b", pattern.root.id, EdgeKind.CHILD, extra_types=frozenset({"c"})
        )
        engine = ImagesEngine(pattern, [vt])
        leaf = pattern.find("c")[0]
        # The c-leaf can map onto the b∧c witness, so it is redundant.
        assert engine.is_redundant_leaf(leaf)
