"""Unit tests for the resilience layer (``repro.resilience``).

Covers the fault-plan machinery (specs, seeded plans, parsing, the
counter-based injector), the client-side retry policy and circuit
breaker, and the executor's chunk-level retry / watchdog / pickle-fault
paths. The end-to-end chaos suite lives in ``test_chaos.py``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.batch.executor import ExecutorStats, WorkerPool, process_map
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.resilience import (
    FAULT_POINTS,
    CircuitBreaker,
    ClientStats,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.resilience.client import _error_from_payload, _retryable


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec(point="nope", kind="slow")
        with pytest.raises(ValueError, match="does not understand kind"):
            FaultSpec(point="batch.run", kind="crash")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(point="batch.run", kind="slow", at=(0,))
        with pytest.raises(ValueError, match="every"):
            FaultSpec(point="batch.run", kind="slow", every=-1)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(point="batch.run", kind="slow", delay=-0.1)

    def test_fires_on_at_and_every(self):
        spec = FaultSpec(point="worker.chunk", kind="crash", at=(3,), every=5)
        assert [h for h in range(1, 16) if spec.fires(h)] == [3, 5, 10, 15]

    def test_at_is_sorted_deduped(self):
        spec = FaultSpec(point="batch.run", kind="slow", at=(4, 1, 4))
        assert spec.at == (1, 4)

    def test_json_roundtrip(self):
        spec = FaultSpec(point="protocol.send", kind="garbage", at=(2,), every=3)
        assert FaultSpec.from_json(spec.to_json()) == spec
        with pytest.raises(ValueError, match="unknown fault-spec fields"):
            FaultSpec.from_json({"point": "batch.run", "kind": "slow", "x": 1})


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(7) == FaultPlan.seeded(7)
        assert FaultPlan.seeded(7) != FaultPlan.seeded(8)

    def test_seeded_covers_every_default_kind(self):
        plan = FaultPlan.seeded(0)
        points = {s.point for s in plan.specs}
        assert points == {"batch.run", "batcher.flush", "protocol.send"}
        assert all(s.at for s in plan.specs)

    def test_parse_forms(self):
        assert FaultPlan.parse("seed:11") == FaultPlan.seeded(11)
        spec = FaultSpec(point="batch.run", kind="slow", at=(1,))
        as_obj = FaultPlan.parse(json.dumps({"specs": [spec.to_json()]}))
        as_arr = FaultPlan.parse(json.dumps([spec.to_json()]))
        assert as_obj.specs == as_arr.specs == (spec,)
        with pytest.raises(ValueError, match="bad fault-plan seed"):
            FaultPlan.parse("seed:nope")
        with pytest.raises(ValueError, match="neither"):
            FaultPlan.parse("definitely not json")

    def test_truthiness(self):
        assert not FaultPlan()
        assert FaultPlan.seeded(1)

    def test_json_roundtrip(self):
        plan = FaultPlan.seeded(5)
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestFaultInjector:
    def test_counter_based_firing(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="batch.run", kind="slow", at=(2,), every=4),)
        )
        injector = FaultInjector(plan)
        hits = [injector.draw("batch.run") is not None for _ in range(8)]
        assert hits == [False, True, False, True, False, False, False, True]
        assert injector.faults_injected == 3
        assert [(e.point, e.kind, e.hit) for e in injector.events()] == [
            ("batch.run", "slow", 2),
            ("batch.run", "slow", 4),
            ("batch.run", "slow", 8),
        ]

    def test_points_count_independently(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(point="batch.run", kind="slow", at=(1,)),
                FaultSpec(point="batcher.flush", kind="stall", at=(1,)),
            )
        )
        injector = FaultInjector(plan)
        assert injector.draw("batch.run") is not None
        assert injector.draw("batch.run") is None
        assert injector.draw("batcher.flush") is not None

    def test_empty_plan_never_fires(self):
        injector = FaultInjector()
        assert all(injector.draw(p) is None for p in FAULT_POINTS)
        assert injector.faults_injected == 0

    def test_thread_safety(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="worker.chunk", kind="slow", every=2),)
        )
        injector = FaultInjector(plan)

        def hammer():
            for _ in range(500):
                injector.draw("worker.chunk")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 2000 arms, every 2nd fires — exactly, or a counter was lost.
        assert injector.faults_injected == 1000


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0)
        assert [policy.delay(a) for a in (1, 2, 3, 4, 5)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.5, 0.5]
        )

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0)
        assert policy.delay(1, retry_after=0.3) == pytest.approx(0.3)
        assert policy.delay(1, retry_after=0.001) == pytest.approx(0.01)

    def test_jitter_bounds_and_determinism(self):
        import random

        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        values = [policy.delay(1, rng=random.Random(42)) for _ in range(3)]
        assert values[0] == values[1] == values[2]  # seeded rng → replayable
        assert 0.1 <= values[0] <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=lambda: clock[0])
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1
        assert breaker.retry_after() == pytest.approx(1.0)

    def test_half_open_probe_success_closes(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=lambda: clock[0])
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 1.5
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 1.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed: cooldown restarts
        assert not breaker.allow()
        clock[0] = 1.5
        assert not breaker.allow()
        clock[0] = 2.0
        assert breaker.allow()


class TestErrorMapping:
    def test_overloaded_carries_retry_after(self):
        error = _error_from_payload(
            {"type": "ServiceOverloadedError", "message": "full", "retry_after": 0.7}
        )
        assert isinstance(error, ServiceOverloadedError)
        assert error.retry_after == pytest.approx(0.7)
        assert _retryable(error)

    def test_deadline_and_protocol_do_not_retry(self):
        assert isinstance(
            _error_from_payload({"type": "DeadlineExceededError", "message": "x"}),
            DeadlineExceededError,
        )
        error = _error_from_payload({"type": "ProtocolError", "message": "x"})
        assert isinstance(error, ProtocolError) and not _retryable(error)

    def test_unknown_and_malformed_payloads(self):
        error = _error_from_payload({"type": "WeirdError", "message": "boom"})
        assert "WeirdError" in str(error) and not _retryable(error)
        assert "malformed" in str(_error_from_payload("nope"))

    def test_client_stats_counters_shape(self):
        counters = ClientStats().counters()
        for key in ("requests", "attempts", "retries", "reconnects",
                    "garbage_lines", "duplicate_responses", "breaker_opens",
                    "breaker_short_circuits", "backoff_seconds"):
            assert counters[key] == 0

    def test_errors_carry_context(self):
        exc = ServiceUnavailableError("gone", attempts=4, last_error=OSError("x"))
        assert exc.attempts == 4 and isinstance(exc.last_error, OSError)
        assert CircuitOpenError("open", retry_after=0.2).retry_after == 0.2


def _ident(x):
    return x


class TestExecutorResilience:
    def test_injected_crash_retries_only_lost_chunks(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="worker.chunk", kind="crash", at=(1,)),)
        )
        injector = FaultInjector(plan)
        stats = ExecutorStats()
        out = process_map(
            _ident,
            list(range(12)),
            jobs=2,
            chunksize=3,
            injector=injector,
            stats=stats,
        )
        assert out == list(range(12))
        assert injector.faults_injected == 1
        assert stats.pool_retries >= 1
        # only the broken round's chunks were retried, never all 4 twice
        assert 1 <= stats.chunks_retried <= stats.dispatched_chunks

    def test_watchdog_kills_hung_chunk_and_recovers(self):
        stats = ExecutorStats()
        payloads = ["SLOW"] + ["a", "b", "c"]
        plan = FaultPlan(
            # A real hang, injected deterministically: slow fault with a
            # delay far beyond the watchdog on the first chunk.
            specs=(FaultSpec(point="worker.chunk", kind="slow", at=(1,), delay=30.0),)
        )
        out = process_map(
            _ident,
            payloads,
            jobs=2,
            chunksize=2,
            injector=FaultInjector(plan),
            watchdog=1.0,
            stats=stats,
        )
        assert out == payloads
        assert stats.watchdog_kills >= 1

    def test_injected_pickle_fault_forces_fallback(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="executor.pickle", kind="fail", every=2),)
        )
        stats = ExecutorStats()
        out = process_map(
            _ident,
            list(range(8)),
            jobs=2,
            injector=FaultInjector(plan),
            stats=stats,
        )
        assert out == list(range(8))
        assert stats.pickle_fallbacks == 4

    def test_serial_path_ignores_worker_faults(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="worker.chunk", kind="crash", every=1),)
        )
        injector = FaultInjector(plan)
        assert process_map(_ident, [1, 2, 3], jobs=1, injector=injector) == [1, 2, 3]
        assert injector.faults_injected == 0  # never armed off the pooled path

    def test_persistent_pool_survives_injected_crash(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="worker.chunk", kind="crash", at=(2,)),)
        )
        injector = FaultInjector(plan)
        with WorkerPool(2) as pool:
            first = process_map(
                _ident, list(range(6)), jobs=2, chunksize=2, pool=pool,
                injector=injector,
            )
            second = process_map(
                _ident, list(range(6, 12)), jobs=2, chunksize=2, pool=pool,
                injector=injector,
            )
        assert first == list(range(6)) and second == list(range(6, 12))
        assert injector.faults_injected == 1
        assert pool.recreations >= 2  # invalidated and rebuilt after the crash
