"""Differential tests for the flat (v2) core engine.

The v2 engine (``repro.core.engine_v2``) re-implements the images engine
and the containment DP over flat preorder arrays and bitset rows. Its
contract is **byte-for-byte equality with v1**: same minimized patterns,
same elimination order, same witnesses, same integer counters — for
every driver (CIM, ACIM, CDM, the pipeline, the batch backend, the
serving layer). These tests pin that contract on 400+ seeded workloads
plus hypothesis-generated ones, and additionally cover the flat
building blocks: FlatPattern round-trips, canonical subtree keys,
bitset helpers, flat pickling, and incremental ``delete_leaf``.
"""

from __future__ import annotations

import asyncio
import copy
import os
import pickle
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import MinimizeOptions, Session
from repro.constraints.model import (
    co_occurrence,
    parse_constraints,
    required_child,
    required_descendant,
)
from repro.core.acim import acim_minimize
from repro.core.cdm import cdm_minimize
from repro.core.cim import cim_minimize, is_minimal
from repro.core.containment import ContainmentStats, mapping_targets
from repro.core.edges import EdgeKind
from repro.core.engine_config import (
    CORE_ENGINES,
    core_engine_scope,
    resolve_core_engine,
)
from repro.core.engine_v2 import (
    FlatImagesEngine,
    FlatPattern,
    bits_to_ids,
    flat_pickle,
    flat_pickle_enabled,
    ids_to_bits,
    iter_slots,
    pattern_from_flat,
)
from repro.core.fingerprint import subtree_keys
from repro.core.images import ImagesEngine, ImagesStats, create_images_engine
from repro.core.pattern import TreePattern
from repro.core.pipeline import minimize
from repro.errors import InvalidPatternError
from repro.parsing.sexpr import to_sexpr
from repro.parsing.xpath import parse_xpath
from repro.service import MinimizationService
from repro.workloads import (
    chain_query,
    duplicate_random_branch,
    isomorphic_shuffle,
    random_query,
)

TYPES = ["a", "b", "c", "d"]


def _random_constraints(rng: random.Random, types=TYPES):
    """A small random, acyclic-forward IC set (same shape as the
    property suites use: child/descendant edges only point forward in
    the type order so closures stay finite)."""
    out = []
    for _ in range(rng.randint(0, 5)):
        kind = rng.choice(["child", "desc", "cooc"])
        if kind == "cooc":
            i, j = rng.randrange(len(types)), rng.randrange(len(types))
            if i != j:
                out.append(co_occurrence(types[i], types[j]))
        else:
            i = rng.randrange(len(types) - 1)
            j = rng.randint(i + 1, len(types) - 1)
            make = required_child if kind == "child" else required_descendant
            out.append(make(types[i], types[j]))
    return out


def _workload(seed: int) -> tuple[TreePattern, list]:
    rng = random.Random(seed)
    query = random_query(rng.randint(2, 14), types=TYPES, rng=rng)
    if rng.random() < 0.6:
        query = duplicate_random_branch(query, rng=rng)
    return query, _random_constraints(rng)


def _cim_record(pattern, engine, **kw):
    stats = ImagesStats()
    result = cim_minimize(
        pattern, collect_witnesses=True, stats=stats, core_engine=engine, **kw
    )
    return (
        to_sexpr(result.pattern),
        result.eliminated,
        result.witnesses,
        stats.counters(),
    )


def _acim_record(pattern, ics, engine, **kw):
    result = acim_minimize(
        pattern, ics, collect_witnesses=True, core_engine=engine, **kw
    )
    return (
        to_sexpr(result.pattern),
        result.eliminated,
        result.witnesses,
        result.images_stats.counters(),
        result.virtual_count,
    )


def _pipeline_record(pattern, ics, engine):
    result = minimize(pattern, ics, collect_witnesses=True, core_engine=engine)
    cdm = [] if result.cdm is None else result.cdm.eliminated
    acim = ([], {}, {})
    if result.acim is not None:
        acim = (
            result.acim.eliminated,
            result.acim.witnesses,
            result.acim.images_stats.counters(),
        )
    return (to_sexpr(result.pattern), cdm, acim)


class TestDifferentialSeeded:
    """v2 == v1, byte for byte, across 400+ seeded workloads.

    Every seed drives four drivers (CIM, ACIM, the full pipeline, CDM
    under both engine scopes), so 110 seeds are 440 differential
    workload runs — on top of the hypothesis suites below.
    """

    SEEDS = range(110)

    def test_cim_matches(self):
        for seed in self.SEEDS:
            query, _ = _workload(seed)
            assert _cim_record(query, "v1") == _cim_record(query, "v2"), seed

    def test_acim_matches(self):
        for seed in self.SEEDS:
            query, ics = _workload(seed)
            assert _acim_record(query, ics, "v1") == _acim_record(
                query, ics, "v2"
            ), seed

    def test_pipeline_matches(self):
        for seed in self.SEEDS:
            query, ics = _workload(seed)
            assert _pipeline_record(query, ics, "v1") == _pipeline_record(
                query, ics, "v2"
            ), seed

    def test_cdm_matches(self):
        # CDM never touches the images engine, but the scope must not
        # perturb it either way.
        for seed in self.SEEDS:
            query, ics = _workload(seed)
            records = []
            for engine in CORE_ENGINES:
                with core_engine_scope(engine):
                    run = cdm_minimize(query, ics)
                records.append((to_sexpr(run.pattern), run.eliminated, run.rule_counts))
            assert records[0] == records[1], seed

    def test_cim_seeded_order_matches(self):
        """The seeded-random elimination order visits leaves identically
        in both engines (same rng consumption, same min-id tie-breaks)."""
        for seed in range(40):
            query, _ = _workload(seed)
            assert _cim_record(query, "v1", seed=seed) == _cim_record(
                query, "v2", seed=seed
            ), seed

    def test_from_scratch_baseline_matches(self):
        for seed in range(40):
            query, ics = _workload(seed)
            assert _acim_record(query, ics, "v1", incremental=False) == _acim_record(
                query, ics, "v2", incremental=False
            ), seed

    def test_memo_free_baseline_matches(self):
        for seed in range(40):
            query, ics = _workload(seed)
            assert _acim_record(query, ics, "v1", oracle_cache=False) == _acim_record(
                query, ics, "v2", oracle_cache=False
            ), seed

    def test_is_minimal_matches(self):
        for seed in self.SEEDS:
            query, _ = _workload(seed)
            assert is_minimal(query, core_engine="v1") == is_minimal(
                query, core_engine="v2"
            ), seed


@st.composite
def patterns(draw, max_size: int = 9) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    pattern.validate()
    return pattern


class TestDifferentialHypothesis:
    @settings(max_examples=60, deadline=None)
    @given(patterns())
    def test_cim_matches(self, pattern):
        assert _cim_record(pattern, "v1") == _cim_record(pattern, "v2")

    @settings(max_examples=60, deadline=None)
    @given(patterns(), st.integers(min_value=0, max_value=10_000))
    def test_acim_matches(self, pattern, ic_seed):
        ics = _random_constraints(random.Random(ic_seed))
        assert _acim_record(pattern, ics, "v1") == _acim_record(pattern, ics, "v2")

    @settings(max_examples=60, deadline=None)
    @given(patterns(), patterns())
    def test_mapping_targets_matches(self, source, target):
        records = []
        for engine in CORE_ENGINES:
            stats = ContainmentStats()
            table = mapping_targets(
                source, target, stats=stats, cache=None, engine=engine
            )
            records.append((table, stats.counters()))
        assert records[0] == records[1]


class TestFlatPattern:
    def test_round_trip_preserves_everything(self):
        for seed in range(60):
            rng = random.Random(seed)
            pattern = random_query(rng.randint(1, 20), types=TYPES, rng=rng)
            back = FlatPattern.from_pattern(pattern).to_pattern()
            assert to_sexpr(back) == to_sexpr(pattern)
            assert [n.id for n in back.nodes()] == [n.id for n in pattern.nodes()]
            for a, b in zip(pattern.nodes(), back.nodes()):
                assert (a.id, a.type, a.edge, a.is_output, a.temporary) == (
                    b.id,
                    b.type,
                    b.edge,
                    b.is_output,
                    b.temporary,
                )
                assert [c.id for c in a.children] == [c.id for c in b.children]

    def test_round_trip_preserves_extra_types(self):
        pattern = parse_xpath("a/b[c]")
        pattern.add_extra_type(pattern.node(1), "x")
        back = FlatPattern.from_pattern(pattern).to_pattern()
        assert back.node(1).extra_types == pattern.node(1).extra_types
        assert back.node(1).has_type("x")

    def test_next_id_survives(self):
        pattern = parse_xpath("a/b[c][d]")
        pattern.delete_leaf(pattern.node(3))
        back = FlatPattern.from_pattern(pattern).to_pattern()
        fresh = back.add_child(back.root, "z", EdgeKind.CHILD)
        expected = pattern.add_child(pattern.root, "z", EdgeKind.CHILD)
        assert fresh.id == expected.id

    def test_subtree_keys_match_fingerprint_module(self):
        for seed in range(60):
            rng = random.Random(seed)
            pattern = random_query(rng.randint(1, 20), types=TYPES, rng=rng)
            assert FlatPattern.from_pattern(pattern).subtree_keys() == subtree_keys(
                pattern
            )

    def test_canonical_key_matches(self):
        for seed in range(60):
            rng = random.Random(seed)
            pattern = random_query(rng.randint(1, 20), types=TYPES, rng=rng)
            assert (
                FlatPattern.from_pattern(pattern).canonical_key()
                == pattern.canonical_key()
            )

    def test_isomorphic_shuffles_share_canonical_key(self):
        rng = random.Random(7)
        pattern = random_query(12, types=TYPES, rng=rng)
        twin = isomorphic_shuffle(pattern, rng=rng)
        assert (
            FlatPattern.from_pattern(pattern).canonical_key()
            == FlatPattern.from_pattern(twin).canonical_key()
        )


class TestFlatPickle:
    def test_flat_pickle_is_default_and_round_trips(self):
        assert flat_pickle_enabled()
        for seed in range(20):
            rng = random.Random(seed)
            pattern = random_query(rng.randint(1, 20), types=TYPES, rng=rng)
            back = pickle.loads(pickle.dumps(pattern))
            assert to_sexpr(back) == to_sexpr(pattern)
            assert [n.id for n in back.nodes()] == [n.id for n in pattern.nodes()]

    def test_legacy_pickle_still_round_trips(self):
        pattern = parse_xpath("a/b[c][.//d]")
        with flat_pickle(False):
            assert not flat_pickle_enabled()
            blob = pickle.dumps(pattern)
        assert flat_pickle_enabled()
        assert to_sexpr(pickle.loads(blob)) == to_sexpr(pattern)

    def test_flat_blob_is_smaller(self):
        pattern = chain_query(120)
        flat = pickle.dumps(pattern)
        with flat_pickle(False):
            legacy = pickle.dumps(pattern)
        assert len(flat) < len(legacy) / 2, (len(flat), len(legacy))

    def test_deepcopy_goes_through_flat_path(self):
        pattern = parse_xpath("a/b[c][c/d]")
        clone = copy.deepcopy(pattern)
        assert to_sexpr(clone) == to_sexpr(pattern)
        clone.delete_leaf(clone.node(4))
        assert pattern.has_node(4)

    def test_pattern_from_flat_is_module_level(self):
        # __reduce_ex__ references it by name; it must stay picklable.
        flat = FlatPattern.from_pattern(parse_xpath("a/b"))
        assert to_sexpr(pattern_from_flat(flat)) == to_sexpr(parse_xpath("a/b"))


class TestBitsetHelpers:
    @settings(max_examples=100, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=400), max_size=40))
    def test_round_trip(self, ids):
        id_of = sorted(ids)
        slot_of = {node_id: slot for slot, node_id in enumerate(id_of)}
        bits = ids_to_bits(ids, slot_of)
        assert bits.bit_count() == len(ids)
        assert bits_to_ids(bits, id_of) == ids

    @settings(max_examples=100, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=300), max_size=40))
    def test_iter_slots_ascending(self, slots):
        bits = 0
        for s in slots:
            bits |= 1 << s
        assert list(iter_slots(bits)) == sorted(slots)

    def test_empty(self):
        assert list(iter_slots(0)) == []
        assert bits_to_ids(0, []) == set()
        assert ids_to_bits((), {}) == 0


class TestFlatDeleteLeaf:
    """Incremental ``delete_leaf`` == a from-scratch rebuild."""

    def _redundancy_profile(self, engine, pattern):
        return {
            leaf.id: engine.is_redundant_leaf(leaf)
            for leaf in pattern.leaves()
            if not leaf.is_root and not leaf.is_output
        }

    def test_incremental_matches_rebuild(self):
        for seed in range(30):
            rng = random.Random(seed)
            pattern = duplicate_random_branch(
                random_query(rng.randint(2, 12), types=TYPES, rng=rng), rng=rng
            )
            incremental = FlatImagesEngine(pattern)
            deletable = [
                n.id
                for n in pattern.leaves()
                if not n.is_root and not n.is_output
            ]
            for leaf_id in deletable:
                if not pattern.has_node(leaf_id):
                    continue
                leaf = pattern.node(leaf_id)
                if not leaf.is_leaf or not incremental.is_redundant_leaf(leaf):
                    continue
                pattern.delete_leaf(leaf)
                incremental.delete_leaf(leaf)
                fresh = FlatImagesEngine(pattern)
                assert self._redundancy_profile(
                    incremental, pattern
                ) == self._redundancy_profile(fresh, pattern), seed

    def test_delete_leaf_validation(self):
        pattern = parse_xpath("a/b[c][c]")
        engine = FlatImagesEngine(pattern)
        with pytest.raises(InvalidPatternError):
            engine.delete_leaf(pattern.node(1))  # still has descendants
        ghost = parse_xpath("x").root
        with pytest.raises(InvalidPatternError):
            engine.delete_leaf(ghost)

    def test_delete_returns_dropped_virtual_targets(self):
        from repro.core.images import VirtualTarget

        pattern = parse_xpath("a/b[c][c]")
        vt = VirtualTarget(id=-1, node_type="d", parent_id=3, edge=EdgeKind.CHILD)
        engine = FlatImagesEngine(pattern, (vt,))
        leaf = pattern.node(3)
        pattern.delete_leaf(leaf)
        dropped = engine.delete_leaf(leaf)
        assert dropped == (vt,)
        assert engine.virtual == ()


class TestEngineConfig:
    def test_default_is_v2(self):
        assert resolve_core_engine(None) in CORE_ENGINES
        assert resolve_core_engine("v1") == "v1"
        assert resolve_core_engine("v2") == "v2"

    def test_explicit_beats_scope(self):
        with core_engine_scope("v1"):
            assert resolve_core_engine(None) == "v1"
            assert resolve_core_engine("v2") == "v2"
        with core_engine_scope("v2"):
            with core_engine_scope("v1"):
                assert resolve_core_engine(None) == "v1"
            assert resolve_core_engine(None) == "v2"

    def test_scope_none_is_noop(self):
        before = resolve_core_engine(None)
        with core_engine_scope(None):
            assert resolve_core_engine(None) == before

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_core_engine("v3")
        with pytest.raises(ValueError):
            with core_engine_scope("bogus"):
                pass

    def test_env_var_controls_process_default(self):
        for engine in CORE_ENGINES:
            env = dict(os.environ, REPRO_CORE_ENGINE=engine)
            env["PYTHONPATH"] = "src"
            out = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    "from repro.core.engine_config import resolve_core_engine;"
                    "print(resolve_core_engine(None))",
                ],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert out.stdout.strip() == engine, out.stderr

    def test_factory_dispatches(self):
        pattern = parse_xpath("a/b[c]")
        assert isinstance(create_images_engine(pattern, engine="v1"), ImagesEngine)
        assert isinstance(create_images_engine(pattern, engine="v2"), FlatImagesEngine)

    def test_options_validate_core_engine(self):
        assert MinimizeOptions(core_engine="v1").core_engine == "v1"
        with pytest.raises(ValueError):
            MinimizeOptions(core_engine="v9")


class TestBatchAndSessionDifferential:
    CONSTRAINTS = parse_constraints("a -> b; b ->> c; a ~ c")

    def _queries(self, n=24, seed=5):
        rng = random.Random(seed)
        out = []
        while len(out) < n:
            base = random_query(rng.randint(2, 10), types=TYPES, rng=rng)
            out.append(base)
            if rng.random() < 0.5 and len(out) < n:
                out.append(isomorphic_shuffle(base, rng=rng))
        return out

    def _session_record(self, engine, queries):
        with Session(
            MinimizeOptions(core_engine=engine), constraints=self.CONSTRAINTS
        ) as session:
            results = session.minimize_many(queries)
        records = []
        for r in results:
            payload = r.to_json()
            payload.pop("timings")
            records.append(payload)
        return records

    def test_session_batch_matches(self):
        queries = self._queries()
        assert self._session_record("v1", queries) == self._session_record(
            "v2", queries
        )

    def test_service_matches(self):
        queries = self._queries(n=16, seed=9)

        def serve(engine):
            async def scenario():
                async with MinimizationService(
                    MinimizeOptions(core_engine=engine),
                    constraints=self.CONSTRAINTS,
                ) as service:
                    return await service.submit_many(queries)

            results = asyncio.run(scenario())
            return [(to_sexpr(r.pattern), r.eliminated) for r in results]

        assert serve("v1") == serve("v2")


class TestJobsAuto:
    def test_resolve_jobs_auto(self):
        from repro.batch.executor import resolve_jobs

        assert resolve_jobs("auto") >= 1
        with pytest.raises(ValueError):
            resolve_jobs("never")

    def test_process_map_auto_small_batch_is_serial(self):
        from repro.batch.executor import AUTO_SERIAL_THRESHOLD, ExecutorStats, process_map

        stats = ExecutorStats()
        payloads = list(range(AUTO_SERIAL_THRESHOLD))
        out = process_map(_double, payloads, jobs="auto", stats=stats)
        assert out == [p * 2 for p in payloads]
        assert stats.dispatched_chunks == 0

    def test_options_accept_auto(self):
        assert MinimizeOptions(jobs="auto").jobs == "auto"
        with pytest.raises(ValueError):
            MinimizeOptions(jobs="many")

    def test_session_with_auto_jobs(self):
        queries = [parse_xpath("a/b[c][c]"), parse_xpath("a//b")]
        with Session(MinimizeOptions(jobs="auto")) as session:
            results = session.minimize_many(queries)
        assert [r.output_size for r in results] == [3, 2]


def _double(x: int) -> int:
    return x * 2
