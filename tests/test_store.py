"""Tests for the persistent content-addressed cache tier (:mod:`repro.store`).

The store's contract has three load-bearing clauses, each pinned here:

* **byte-identical warm starts** — a warm :class:`~repro.api.Session`
  (replaying from disk) produces exactly what a cold one computes;
* **degradation, never corruption** — truncated, bit-flipped,
  version-mismatched, or garbage records turn into *counted misses* and
  the served results stay correct;
* **precise invalidation** — records are keyed by constraint-closure
  digest, so an IC change invalidates exactly the affected proofs (and
  the invalidation is counted), while oracle DP tables (structural
  facts) survive.

Under ``-m chaos``: a SIGKILL mid-compaction (the ``store.compact``
fault point fires inside the transaction) must roll back through the
WAL — the reopened store serves the pre-compaction records
byte-identically.
"""

from __future__ import annotations

import os
import subprocess
import sys
import sqlite3
import threading

import pytest

from repro.api import MinimizeOptions, Session
from repro.constraints.model import parse_constraints
from repro.constraints.repository import coerce_repository
from repro.core.oracle_cache import (
    global_cache,
    global_store,
    reset_global_cache,
    set_global_store,
)
from repro.core.pipeline import minimize
from repro.parsing.sexpr import to_sexpr
from repro.parsing.xpath import parse_xpath
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.store import STORE_FORMAT, PersistentStore, StoreStats
from repro.workloads import batch_workload

CONSTRAINTS = parse_constraints("a -> b; b ->> c; a ~ c")


@pytest.fixture(autouse=True)
def _fresh_process_state():
    """Each test starts with no global store and a fresh oracle cache."""
    reset_global_cache()
    set_global_store(None)
    yield
    reset_global_cache()
    set_global_store(None)


def sexprs(results) -> "list[str]":
    return [to_sexpr(r.pattern) for r in results]


def fig8_stream(count: int = 24, *, seed: int = 5):
    """A repeated-structure workload plus serial expected outputs."""
    queries, constraints = batch_workload(
        count, kind="fig8", distinct=6, size=24, seed=seed
    )
    expected = [to_sexpr(minimize(q, constraints).pattern) for q in queries]
    return queries, constraints, expected


class TestRecordPath:
    """The generic (kind, key, closure) record contract."""

    def test_round_trip_and_counters(self, tmp_path):
        with PersistentStore(tmp_path / "s.db") as store:
            store.put("min", "k1", "d1", {"payload": [1, 2, 3]})
            store.flush()
            assert store.get("min", "k1", "d1") == {"payload": [1, 2, 3]}
            assert store.get("min", "absent", "d1") is None
            assert store.stats.hits == 1
            assert store.stats.misses == 1
            assert store.stats.writes == 1
            assert len(store) == 1

    def test_typed_minimization_round_trip(self, tmp_path):
        pattern = parse_xpath("a/b[c][c]//d")
        with PersistentStore(tmp_path / "s.db") as store:
            store.put_minimization("fp", "digest", pattern, [(3, "c")])
            store.flush()
            loaded, eliminated, certificate = store.get_minimization("fp", "digest")
            assert to_sexpr(loaded) == to_sexpr(pattern)
            assert [n.id for n in loaded.nodes()] == [n.id for n in pattern.nodes()]
            assert eliminated == [(3, "c")]
            assert certificate is None  # written without certification

    def test_reopen_serves_previous_process_records(self, tmp_path):
        path = tmp_path / "s.db"
        with PersistentStore(path) as store:
            store.put("min", "k", "d", "value")
        with PersistentStore(path) as store:
            assert store.get("min", "k", "d") == "value"

    def test_missing_file_read_only_is_all_miss(self, tmp_path):
        store = PersistentStore(tmp_path / "absent.db", read_only=True)
        assert store.get("min", "k", "d") is None
        assert store.stats.misses == 1
        assert len(store) == 0
        store.close()

    def test_closure_digest_mismatch_is_counted_invalidation(self, tmp_path):
        with PersistentStore(tmp_path / "s.db") as store:
            store.put("min", "shared-key", "digest-old", "proof")
            store.flush()
            assert store.get("min", "shared-key", "digest-new") is None
            assert store.stats.invalidations == 1
            # The old-closure record itself is untouched: precise, not
            # a flush of everything.
            assert store.get("min", "shared-key", "digest-old") == "proof"

    def test_oracle_records_are_closure_free(self, tmp_path):
        src, tgt = parse_xpath("a/b"), parse_xpath("a//b")
        with PersistentStore(tmp_path / "s.db") as store:
            store.put_oracle("s", "t", src, tgt, {0: frozenset({0})})
            store.flush()
            loaded = store.get_oracle("s", "t")
            assert loaded is not None
            assert dict(loaded[2]) == {0: frozenset({0})}

    def test_max_records_prunes_oldest(self, tmp_path):
        with PersistentStore(tmp_path / "s.db", max_records=5) as store:
            for i in range(12):
                store.put("min", f"k{i}", "d", i)
            store.flush()
            assert len(store) <= 5
            assert store.stats.pruned >= 7
            # Newest survive, oldest are gone.
            assert store.get("min", "k11", "d") == 11
            assert store.get("min", "k0", "d") is None


class TestCorruptionTolerance:
    """Every bad-record shape degrades to a counted miss, never an error."""

    @staticmethod
    def _seeded(path):
        with PersistentStore(path) as store:
            store.put("min", "k", "d", {"value": 42})
        return path

    @staticmethod
    def _mutate(path, sql, params=()):
        conn = sqlite3.connect(path)
        conn.execute(sql, params)
        conn.commit()
        conn.close()

    def test_checksum_flip_is_counted_miss(self, tmp_path):
        path = self._seeded(tmp_path / "s.db")
        self._mutate(path, "UPDATE records SET checksum='0'||substr(checksum, 2)")
        with PersistentStore(path) as store:
            assert store.get("min", "k", "d") is None
            assert store.stats.corrupt_records == 1
            assert store.stats.misses == 1

    def test_truncated_payload_is_counted_miss(self, tmp_path):
        path = self._seeded(tmp_path / "s.db")
        self._mutate(path, "UPDATE records SET payload=substr(payload, 1, 4)")
        with PersistentStore(path) as store:
            assert store.get("min", "k", "d") is None
            assert store.stats.corrupt_records == 1

    def test_garbage_payload_is_counted_miss(self, tmp_path):
        path = self._seeded(tmp_path / "s.db")
        # Valid checksum over bytes that are not a pickle at all: the
        # unpickle failure (not the checksum) must catch it.
        import hashlib

        garbage = b"\x00not a pickle\xff"
        self._mutate(
            path,
            "UPDATE records SET payload=?, checksum=?",
            (garbage, hashlib.sha256(garbage).hexdigest()),
        )
        with PersistentStore(path) as store:
            assert store.get("min", "k", "d") is None
            assert store.stats.corrupt_records == 1

    def test_format_version_mismatch_is_counted_miss(self, tmp_path):
        path = self._seeded(tmp_path / "s.db")
        self._mutate(path, "UPDATE records SET fmt=?", (STORE_FORMAT + 1,))
        with PersistentStore(path) as store:
            assert store.get("min", "k", "d") is None
            assert store.stats.version_mismatches == 1
            assert store.stats.misses == 1

    def test_bad_row_is_deleted_on_the_write_path(self, tmp_path):
        path = self._seeded(tmp_path / "s.db")
        self._mutate(path, "UPDATE records SET payload=substr(payload, 1, 4)")
        with PersistentStore(path) as store:
            assert store.get("min", "k", "d") is None
            store.flush()
        conn = sqlite3.connect(path)
        (count,) = conn.execute("SELECT COUNT(*) FROM records").fetchone()
        conn.close()
        assert count == 0

    def test_corrupt_warm_records_are_skipped(self, tmp_path):
        path = tmp_path / "s.db"
        pattern = parse_xpath("a/b[c]")
        with PersistentStore(path) as store:
            store.put_minimization("good", "d", pattern, [])
            store.put_minimization("bad", "d", pattern, [])
        self._mutate(
            path,
            "UPDATE records SET payload=substr(payload, 1, 4) WHERE key='bad'",
        )
        with PersistentStore(path) as store:
            warm = list(store.warm_minimizations("d"))
            assert [fp for fp, _, _, _ in warm] == ["good"]
            assert store.stats.corrupt_records == 1
            assert store.stats.warm_loaded == 1


class TestWriteBehind:
    """The async write path: batching, spooling, faults, concurrency."""

    def test_spool_and_apply_rows(self, tmp_path):
        path = tmp_path / "s.db"
        with PersistentStore(path):
            pass  # create the schema
        reader = PersistentStore(path, read_only=True)
        reader.put("min", "k", "d", "spooled-value")
        assert reader.stats.spooled == 1
        rows = reader.drain_spooled()
        assert len(rows) == 1 and reader.drain_spooled() == []
        with PersistentStore(path) as writer:
            writer.apply_rows(rows)
            writer.flush()
            assert writer.stats.applied == 1
        # A fresh read connection sees the committed spool.
        with PersistentStore(path) as check:
            assert check.get("min", "k", "d") == "spooled-value"
        reader.close()

    def test_spool_is_bounded(self, tmp_path):
        path = tmp_path / "s.db"
        with PersistentStore(path):
            pass
        reader = PersistentStore(path, read_only=True, spool_limit=3)
        for i in range(10):
            reader.put("min", f"k{i}", "d", i)
        assert len(reader.drain_spooled()) == 3
        assert reader.stats.spool_dropped == 7
        reader.close()

    def test_malformed_applied_rows_are_dropped(self, tmp_path):
        with PersistentStore(tmp_path / "s.db") as writer:
            writer.apply_rows([("too", "short"), None, 42])
            writer.flush()
            assert writer.stats.applied == 0
            assert writer.stats.write_failures == 3

    def test_store_write_fault_drops_batch_counted(self, tmp_path):
        plan = FaultPlan((FaultSpec(point="store.write", kind="fail", at=(1,)),))
        store = PersistentStore(tmp_path / "s.db", injector=FaultInjector(plan))
        store.put("min", "k", "d", "doomed")
        store.flush()
        # The batch was dropped: a miss, a counted failure, no exception.
        assert store.get("min", "k", "d") is None
        assert store.stats.write_failures == 1
        # The next batch (fault exhausted) commits normally.
        store.put("min", "k2", "d", "survives")
        store.flush()
        assert store.get("min", "k2", "d") == "survives"
        store.close()

    def test_concurrent_readers_during_write_behind(self, tmp_path):
        path = tmp_path / "s.db"
        writer = PersistentStore(path, batch_size=8)
        readers = [PersistentStore(path, read_only=True) for _ in range(3)]
        errors: "list[BaseException]" = []
        stop = threading.Event()

        def read_loop(store):
            try:
                while not stop.is_set():
                    for i in range(50):
                        # Any answer is fine (committed-or-not), but it
                        # must never raise and never return a wrong value.
                        value = store.get("min", f"k{i}", "d")
                        if value is not None:
                            assert value == i
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=read_loop, args=(r,)) for r in readers
        ]
        for t in threads:
            t.start()
        for i in range(50):
            writer.put("min", f"k{i}", "d", i)
        writer.flush()
        stop.set()
        for t in threads:
            t.join(timeout=10)
        writer.close()
        for r in readers:
            r.close()
        assert errors == []

    def test_compact_prunes_and_checkpoints(self, tmp_path):
        with PersistentStore(tmp_path / "s.db") as store:
            for i in range(20):
                store.put("min", f"k{i}", "d", i)
            store.compact(max_records=4)
            assert store.stats.compactions == 1
            assert len(store) == 4
            assert store.get("min", "k19", "d") == 19


class TestSessionIntegration:
    """The store behind Session/BatchMinimizer: warm starts, differentials."""

    def test_cold_vs_warm_session_byte_identical(self, tmp_path):
        path = str(tmp_path / "s.db")
        queries, constraints, expected = fig8_stream()
        with Session(MinimizeOptions(store_path=path), constraints=constraints) as s:
            cold = sexprs(s.minimize_many(queries))
        assert cold == expected
        reset_global_cache()  # simulate a process restart
        with Session(MinimizeOptions(store_path=path), constraints=constraints) as s:
            warm = sexprs(s.minimize_many(queries))
            counters = s.counters()
        assert warm == cold
        assert counters["store_warm_loaded"] > 0
        # Every query replayed from the warm memo: no fresh minimization.
        assert counters["cache_hits"] == len(queries)

    def test_consult_on_memo_miss_hits_the_store(self, tmp_path):
        path = str(tmp_path / "s.db")
        queries, constraints, expected = fig8_stream()
        with Session(MinimizeOptions(store_path=path), constraints=constraints) as s:
            assert sexprs(s.minimize_many(queries)) == expected
        reset_global_cache()
        # warm_limit=0 disables the boot-time preload, so every distinct
        # fingerprint must travel the lookup path instead.
        store = PersistentStore(path, warm_limit=0)
        try:
            with Session(store=store, constraints=constraints) as s:
                warm = sexprs(s.minimize_many(queries))
                counters = s.counters()
        finally:
            store.close()
        assert warm == expected
        assert counters["store_hits"] > 0
        assert counters["store_warm_loaded"] == 0

    def test_closure_churn_invalidates_precisely(self, tmp_path):
        path = str(tmp_path / "s.db")
        query = parse_xpath("a/b[//c]")
        ics_a = parse_constraints("a -> b; b ->> c")
        ics_b = parse_constraints("a -> b")
        with Session(MinimizeOptions(store_path=path), constraints=ics_a) as s:
            under_a = to_sexpr(s.minimize(query).pattern)
        reset_global_cache()
        store = PersistentStore(path, warm_limit=0)
        try:
            with Session(store=store, constraints=ics_b) as s:
                under_b = to_sexpr(s.minimize(query).pattern)
                counters = s.counters()
        finally:
            store.close()
        # Different closure digest: the stored proof must NOT be replayed.
        assert under_b == to_sexpr(minimize(query, ics_b).pattern)
        assert under_b != under_a
        assert counters["store_invalidations"] > 0

    def test_closure_digest_is_content_addressed(self):
        a = coerce_repository(parse_constraints("a -> b; b ->> c"))
        b = coerce_repository(parse_constraints("b ->> c; a -> b"))
        c = coerce_repository(parse_constraints("a -> b"))
        assert a.digest() == b.digest()  # order-independent
        assert a.digest() != c.digest()

    def test_session_without_store_path_opens_nothing(self):
        with Session(constraints=CONSTRAINTS) as s:
            assert s.store is None
            assert "store_hits" not in s.counters()

    def test_session_close_detaches_global_store(self, tmp_path):
        path = str(tmp_path / "s.db")
        with Session(MinimizeOptions(store_path=path), constraints=CONSTRAINTS) as s:
            assert global_store() is s.store
        assert global_store() is None

    def test_oracle_tables_survive_restart(self, tmp_path):
        """After a restart, containment DP tables load from disk: the
        oracle cache reports store hits instead of recomputing.

        The oracle cache backs :func:`mapping_targets` (absolute
        containment), so the driver here is ``Session.equivalent`` on a
        non-isomorphic pair (the fingerprint fast path must not
        short-circuit the DP)."""
        path = str(tmp_path / "s.db")
        q1 = parse_xpath("a/b[c][c]//d")
        q2 = parse_xpath("a/b[c]//d")
        with Session(MinimizeOptions(store_path=path)) as s:
            first = s.equivalent(q1, q2)
            assert global_cache().stats.stores > 0
        reset_global_cache()
        store = PersistentStore(path, warm_limit=0)
        try:
            with Session(store=store) as s:
                assert s.equivalent(q1, q2) == first
                cache_stats = global_cache().stats
        finally:
            store.close()
        # The in-memory cache was cold: every served lookup was
        # disk-backed, and nothing had to be recomputed.
        assert cache_stats.store_hits > 0
        assert cache_stats.hits == cache_stats.store_hits
        assert cache_stats.misses == 0


CHAOS_CHILD = r"""
import sys
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.store import PersistentStore

path = sys.argv[1]
plan = FaultPlan((FaultSpec(point="store.compact", kind="kill", at=(1,)),))
store = PersistentStore(path, injector=FaultInjector(plan))
for i in range(10):
    store.put("min", f"k{i}", "d", i)
store.flush()
print("SEEDED", flush=True)
store.compact(max_records=2)  # SIGKILLed mid-transaction
print("UNREACHABLE", flush=True)
"""


@pytest.mark.chaos
class TestChaosCompaction:
    def test_kill_during_compaction_recovers_byte_identically(self, tmp_path):
        path = str(tmp_path / "s.db")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", CHAOS_CHILD, path],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        # The fault SIGKILLed the process mid-compaction-transaction.
        assert proc.returncode == -9, proc.stderr
        assert "SEEDED" in proc.stdout
        assert "UNREACHABLE" not in proc.stdout
        # Recovery: the WAL rolls the half-done DELETE back; every
        # pre-compaction record is served intact.
        with PersistentStore(path) as store:
            for i in range(10):
                assert store.get("min", f"k{i}", "d") == i
            assert store.stats.corrupt_records == 0
            # And a clean compaction afterwards succeeds.
            store.compact(max_records=2)
            assert len(store) == 2
