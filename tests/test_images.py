"""Tests for the images-based ``redundant-leaf`` engine (Figure 3)."""

from __future__ import annotations

import pytest

from repro import CHILD, DESCENDANT, TreePattern
from repro.core.images import AncestorTable, ImagesEngine, ImagesStats, VirtualTarget
from repro.errors import InvalidPatternError


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestAncestorTable:
    def make(self):
        pattern = q(("a*", [("/", ("b", [("//", "c")])), ("//", "d")]))
        ids = {n.type: n.id for n in pattern.nodes()}
        return pattern, ids

    def test_c_child_relation(self):
        pattern, ids = self.make()
        table = AncestorTable(pattern)
        assert table.is_c_child(ids["b"], ids["a"])
        assert not table.is_c_child(ids["c"], ids["a"])
        assert not table.is_c_child(ids["d"], ids["a"])  # d-edge is not a c-child

    def test_descendant_relation(self):
        pattern, ids = self.make()
        table = AncestorTable(pattern)
        assert table.is_descendant(ids["c"], ids["a"])
        assert table.is_descendant(ids["c"], ids["b"])
        assert table.is_descendant(ids["d"], ids["a"])
        assert not table.is_descendant(ids["a"], ids["c"])
        assert not table.is_descendant(ids["a"], ids["a"])  # proper

    def test_virtual_rows(self):
        pattern, ids = self.make()
        vt_child = VirtualTarget(-1, "x", ids["b"], CHILD)
        vt_desc = VirtualTarget(-2, "y", ids["a"], DESCENDANT)
        table = AncestorTable(pattern, [vt_child, vt_desc])
        assert table.is_c_child(-1, ids["b"])
        assert table.is_descendant(-1, ids["b"])
        assert table.is_descendant(-1, ids["a"])
        assert not table.is_c_child(-2, ids["a"])  # descendant IC: not a child
        assert table.is_descendant(-2, ids["a"])
        assert -1 in table.c_children_of(ids["b"])
        assert -2 in table.descendants_of(ids["a"])

    def test_virtual_requires_live_parent(self):
        pattern, _ = self.make()
        with pytest.raises(InvalidPatternError):
            AncestorTable(pattern, [VirtualTarget(-1, "x", 999, CHILD)])

    def test_virtual_id_must_be_negative(self):
        with pytest.raises(InvalidPatternError):
            VirtualTarget(1, "x", 0, CHILD)


class TestRedundantLeaf:
    def test_duplicate_sibling_leaves(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        engine = ImagesEngine(pattern)
        leaves = pattern.find("b")
        assert engine.is_redundant_leaf(leaves[0])
        assert engine.is_redundant_leaf(leaves[1])

    def test_distinct_leaves_not_redundant(self):
        pattern = q(("a*", [("/", "b"), ("/", "c")]))
        engine = ImagesEngine(pattern)
        for leaf in pattern.leaves():
            assert not engine.is_redundant_leaf(leaf)

    def test_c_leaf_cannot_fold_to_d_leaf_chain(self):
        # a*[/b][//x/b]: the c-child b has no other c-child b target.
        pattern = q(("a*", [("/", "b"), ("//", ("x", [("/", "b")]))]))
        engine = ImagesEngine(pattern)
        c_leaf = [n for n in pattern.find("b") if n.parent.type == "a"][0]
        assert not engine.is_redundant_leaf(c_leaf)

    def test_d_leaf_folds_into_deeper_occurrence(self):
        # a*[//b][//x[/b]]: the outer //b maps to the deeper b.
        pattern = q(("a*", [("//", "b"), ("//", ("x", [("/", "b")]))]))
        engine = ImagesEngine(pattern)
        d_leaf = [n for n in pattern.find("b") if n.parent.type == "a"][0]
        assert engine.is_redundant_leaf(d_leaf)
        deep_leaf = [n for n in pattern.find("b") if n.parent.type == "x"][0]
        assert not engine.is_redundant_leaf(deep_leaf)

    def test_output_leaf_never_redundant(self):
        pattern = q(("a", [("/", "b*"), ("/", "b")]))
        engine = ImagesEngine(pattern)
        assert not engine.is_redundant_leaf(pattern.output_node)

    def test_requires_a_leaf(self):
        pattern = q(("a*", [("/", ("b", [("/", "c")]))]))
        engine = ImagesEngine(pattern)
        with pytest.raises(InvalidPatternError):
            engine.is_redundant_leaf(pattern.find("b")[0])

    def test_whole_branch_fold(self):
        # Figure 2(h): leaf of the right branch is redundant.
        pattern = q(("O*", [
            ("/", ("D", [("/", ("R", [("//", "P")]))])),
            ("//", ("D", [("//", "P")])),
        ]))
        engine = ImagesEngine(pattern)
        right_p = [n for n in pattern.find("P") if n.parent.type == "D" and n.parent.edge.is_descendant][0]
        assert engine.is_redundant_leaf(right_p)

    def test_witness_is_an_endomorphism(self):
        pattern = q(("O*", [
            ("/", ("D", [("/", ("R", [("//", "P")]))])),
            ("//", ("D", [("//", "P")])),
        ]))
        engine = ImagesEngine(pattern)
        right_p = [n for n in pattern.find("P") if n.parent.edge and n.parent.edge.is_descendant][0]
        witness = engine.redundancy_witness(right_p)
        assert witness is not None
        assert witness[right_p.id] != right_p.id
        table = AncestorTable(pattern)
        for node in pattern.nodes():
            target = witness[node.id]
            assert pattern.node(target).has_type(node.type)
            if node.parent is not None:
                parent_target = witness[node.parent.id]
                if node.edge.is_child:
                    assert table.is_c_child(target, parent_target)
                else:
                    assert table.is_descendant(target, parent_target)

    def test_witness_none_when_not_redundant(self):
        pattern = q(("a*", [("/", "b"), ("/", "c")]))
        engine = ImagesEngine(pattern)
        assert engine.redundancy_witness(pattern.find("c")[0]) is None


class TestVirtualTargets:
    def test_leaf_folds_onto_virtual_child(self):
        # a*[/b] with the IC-implied virtual b child present.
        pattern = q(("a*", [("/", "b")]))
        vt = VirtualTarget(-1, "b", pattern.root.id, CHILD)
        engine = ImagesEngine(pattern, [vt])
        assert engine.is_redundant_leaf(pattern.find("b")[0])

    def test_c_leaf_does_not_fold_onto_virtual_descendant(self):
        pattern = q(("a*", [("/", "b")]))
        vt = VirtualTarget(-1, "b", pattern.root.id, DESCENDANT)
        engine = ImagesEngine(pattern, [vt])
        assert not engine.is_redundant_leaf(pattern.find("b")[0])

    def test_d_leaf_folds_onto_virtual_descendant(self):
        pattern = q(("a*", [("//", "b")]))
        vt = VirtualTarget(-1, "b", pattern.root.id, DESCENDANT)
        engine = ImagesEngine(pattern, [vt])
        assert engine.is_redundant_leaf(pattern.find("b")[0])

    def test_virtual_target_deep_anchor(self):
        # Figure 2(d): virtual Paragraph under Section unlocks the fold of
        # the whole left branch (tested leaf-first).
        pattern = q(("Articles", [
            ("/", ("Article", [("//", "Paragraph")])),
            ("/", ("Article*", [("//", "Section")])),
        ]))
        section = pattern.find("Section")[0]
        vt = VirtualTarget(-1, "Paragraph", section.id, DESCENDANT)
        engine = ImagesEngine(pattern, [vt])
        left_paragraph = pattern.find("Paragraph")[0]
        assert engine.is_redundant_leaf(left_paragraph)

    def test_internal_nodes_never_map_to_virtual(self):
        # Virtual targets are leaves; an internal node requiring children
        # cannot map onto one even with matching type.
        pattern = q(("a*", [("//", ("b", [("/", "c")])), ("//", ("x", [("/", ("b", [("/", "c")]))]))]))
        vt = VirtualTarget(-1, "b", pattern.root.id, DESCENDANT)
        engine = ImagesEngine(pattern, [vt])
        outer_b = [n for n in pattern.find("b") if n.parent.type == "a"][0]
        outer_c = outer_b.children[0]
        # The c under the outer b: can still fold via the x-branch b/c.
        assert engine.is_redundant_leaf(outer_c)


class TestStatsAndFilter:
    def test_stats_accumulate(self):
        stats = ImagesStats()
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        engine = ImagesEngine(pattern, stats=stats)
        engine.is_redundant_leaf(pattern.find("b")[0])
        assert stats.redundancy_checks == 1
        assert stats.tables_seconds >= 0.0
        assert stats.total_seconds >= stats.tables_seconds

    def test_pair_filter_blocks_targets(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        engine = ImagesEngine(pattern, pair_filter=lambda source, target: False)
        assert not engine.is_redundant_leaf(pattern.find("b")[0])
