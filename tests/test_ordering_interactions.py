"""Section 3.3's subtle points, as tests.

The paper's examples show that the *order* of constraint-dependent and
constraint-independent steps matters for naive strategies — and that the
right pipeline is immune. Each claim below is one of the narrative's
bullet points, made executable.
"""

from __future__ import annotations

from repro import acim_minimize, apply_strategy, cim_minimize, minimize
from repro.core.reduction import reduce_pattern
from repro.workloads.paper_queries import (
    ARTICLE_TITLE,
    SECTION_PARAGRAPH,
    figure2_b,
    figure2_c,
    figure2_d,
    figure2_e,
)

ICS = [SECTION_PARAGRAPH]


class TestOrderMatters:
    def test_reduce_then_minimize_gets_stuck(self):
        """From (b): reduction first gives (d), which no further r/m step
        can shrink — strictly worse than the optimum (e)."""
        reduced = reduce_pattern(figure2_b(), ICS)
        assert reduced.isomorphic(figure2_d())
        assert cim_minimize(reduced).removed_count == 0
        assert reduce_pattern(reduced, ICS).size == reduced.size
        # r·m ends at 5 nodes; the optimum has 3.
        assert reduced.size == 5 and figure2_e().size == 3

    def test_minimize_then_reduce_succeeds_here(self):
        """From (b): CIM first gives (c); reduction then reaches (e).
        (Ordering helps in this instance — but not in general, which is
        why augmentation exists.)"""
        minimized = cim_minimize(figure2_b()).pattern
        assert minimized.isomorphic(figure2_c())
        assert reduce_pattern(minimized, ICS).isomorphic(figure2_e())

    def test_strategy_strings_reproduce_both_orders(self):
        rm = apply_strategy(figure2_b(), ICS, "rm")
        mr = apply_strategy(figure2_b(), ICS, "mr")
        assert rm.size == 5 and mr.size == 3

    def test_augmentation_repairs_the_stuck_order(self):
        """From (d): neither r nor m applies, yet a·m·r reaches (e) — the
        temporary Paragraph makes the fold visible."""
        stuck = figure2_d()
        assert apply_strategy(stuck, ICS, "rm").size == stuck.size
        assert apply_strategy(stuck, ICS, "mr").size == stuck.size
        assert apply_strategy(stuck, ICS, "amr").isomorphic(figure2_e())

    def test_pipeline_immune_to_input_shape(self):
        """Whatever station of the chain we start from, the pipeline ends
        at the unique minimum (e)."""
        for station in (figure2_b(), figure2_c(), figure2_d()):
            assert minimize(station, ICS).pattern.isomorphic(figure2_e())

    def test_longer_strategies_do_not_beat_amr(self):
        for strategy in ("ramram", "mmrr", "arm", "amrm", "aamrr"):
            result = apply_strategy(figure2_b(), ICS, strategy)
            original_survivors = [n for n in result.nodes() if not n.temporary]
            assert len(original_survivors) >= figure2_e().size

    def test_title_first_or_last_is_irrelevant_to_pipeline(self):
        """(a)'s two ICs can fire in either conceptual order; the unique
        minimum does not care."""
        from repro.workloads.paper_queries import figure2_a

        both = [ARTICLE_TITLE, SECTION_PARAGRAPH]
        assert acim_minimize(figure2_a(), both).pattern.isomorphic(figure2_e())
        assert acim_minimize(figure2_a(), list(reversed(both))).pattern.isomorphic(
            figure2_e()
        )
