"""Tests for the logical closure of constraint sets (Section 5.2)."""

from __future__ import annotations

from repro.constraints import (
    closure,
    co_occurrence,
    required_child,
    required_descendant,
)
from repro.constraints.closure import implied_by
from repro.constraints.repository import ConstraintRepository


class TestRules:
    def test_child_implies_descendant(self):
        repo = closure([required_child("a", "b")])
        assert repo.has_required_descendant("a", "b")

    def test_descendant_transitive(self):
        repo = closure([required_descendant("a", "b"), required_descendant("b", "c")])
        assert repo.has_required_descendant("a", "c")

    def test_child_chains_compose_to_descendant_not_child(self):
        repo = closure([required_child("a", "b"), required_child("b", "c")])
        assert repo.has_required_descendant("a", "c")
        assert not repo.has_required_child("a", "c")  # grandchild, not child

    def test_descendant_then_child(self):
        repo = closure([required_descendant("a", "b"), required_child("b", "c")])
        assert repo.has_required_descendant("a", "c")

    def test_co_occurrence_transitive(self):
        repo = closure([co_occurrence("a", "b"), co_occurrence("b", "c")])
        assert repo.has_co_occurrence("a", "c")

    def test_co_occurrence_transfers_obligations(self):
        # a ~ b and b -> c: an a node IS a b node, so it has a c child.
        repo = closure([co_occurrence("a", "b"), required_child("b", "c")])
        assert repo.has_required_child("a", "c")
        assert repo.has_required_descendant("a", "c")

    def test_target_co_occurrence_widens_requirement(self):
        # a -> b and b ~ c: the required b child IS a c node.
        repo = closure([required_child("a", "b"), co_occurrence("b", "c")])
        assert repo.has_required_child("a", "c")

    def test_descendant_target_co_occurrence(self):
        repo = closure([required_descendant("a", "b"), co_occurrence("b", "c")])
        assert repo.has_required_descendant("a", "c")

    def test_no_trivial_self_co_occurrence(self):
        repo = closure([co_occurrence("a", "b"), co_occurrence("b", "a")])
        for c in repo:
            assert not (c.is_co_occurrence and c.source == c.target)

    def test_cooccurrence_cycle_terminates(self):
        repo = closure([co_occurrence("a", "b"), co_occurrence("b", "c"), co_occurrence("c", "a")])
        assert repo.has_co_occurrence("a", "c")
        assert repo.has_co_occurrence("c", "b")


class TestClosureProperties:
    def test_closure_is_idempotent(self):
        base = [
            required_child("a", "b"),
            required_descendant("b", "c"),
            co_occurrence("c", "d"),
        ]
        once = closure(base)
        twice = closure(once)
        assert set(once) == set(twice)

    def test_closure_marks_closed(self):
        repo = closure([required_child("a", "b")])
        assert repo.is_closed

    def test_closure_does_not_mutate_input(self):
        base = ConstraintRepository([required_child("a", "b")])
        closure(base)
        assert len(base) == 1
        assert not base.is_closed

    def test_closure_contains_input(self):
        base = [required_child("a", "b"), co_occurrence("x", "y")]
        repo = closure(base)
        for c in base:
            assert c in repo

    def test_size_stays_polynomial(self):
        # A long chain: closure is O(T^2), not exponential.
        chain = [required_child(f"t{i}", f"t{i+1}") for i in range(20)]
        repo = closure(chain)
        assert len(repo) <= 4 * 21 * 21

    def test_empty_closure(self):
        repo = closure([])
        assert len(repo) == 0 and repo.is_closed


class TestImpliedBy:
    def test_single_step_child(self):
        repo = ConstraintRepository([co_occurrence("b", "c")])
        implied = implied_by(required_child("a", "b"), repo)
        assert required_descendant("a", "b") in implied
        assert required_child("a", "c") in implied

    def test_single_step_co_occurrence_skips_self(self):
        repo = ConstraintRepository([co_occurrence("b", "a")])
        implied = implied_by(co_occurrence("a", "b"), repo)
        assert all(not (c.is_co_occurrence and c.source == c.target) for c in implied)
