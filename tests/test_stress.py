"""Stress and scale tests: deep, wide, and large inputs.

These guard the iterative traversals (no interpreter recursion limits)
and keep the asymptotics honest at sizes well beyond the paper's plots.
"""

from __future__ import annotations

import pytest

from repro import TreePattern, cdm_minimize, cim_minimize, minimize
from repro.constraints.closure import closure
from repro.data.generate import random_tree
from repro.matching import EmbeddingEngine, TwigJoinEngine
from repro.parsing import parse_sexpr, parse_xpath, to_sexpr, to_xpath
from repro.workloads.querygen import (
    bushy_cdm_query,
    chain_constraints,
    chain_query,
    cyclic_chain_constraints,
    right_deep_cdm_query,
)


class TestDeepPatterns:
    DEPTH = 1500  # far beyond the default recursion limit

    def test_deep_copy_and_traversal(self):
        q = chain_query(self.DEPTH)
        clone = q.copy()
        assert clone.size == self.DEPTH
        assert len(list(clone.postorder())) == self.DEPTH
        assert clone.isomorphic(q)

    def test_deep_canonical_key(self):
        q = chain_query(self.DEPTH)
        assert q.canonical_key() == q.copy().canonical_key()

    def test_deep_to_ascii(self):
        q = chain_query(self.DEPTH)
        assert len(q.to_ascii().splitlines()) == self.DEPTH

    def test_deep_cdm(self):
        repo = closure(cyclic_chain_constraints())
        result = cdm_minimize(right_deep_cdm_query(self.DEPTH), repo)
        assert result.pattern.size == 1

    def test_deep_serializers(self):
        q = chain_query(300)
        assert parse_xpath(to_xpath(q)).isomorphic(q)
        assert parse_sexpr(to_sexpr(q)).isomorphic(q)

    def test_deep_subtree_delete(self):
        q = chain_query(self.DEPTH)
        first_child = q.root.children[0]
        removed = q.delete_subtree(first_child)
        assert len(removed) == self.DEPTH - 1
        assert q.size == 1


class TestWidePatterns:
    WIDTH = 2000

    def test_wide_cim_duplicates(self):
        q = TreePattern("root", root_is_output=True)
        from repro.core.edges import EdgeKind

        for _ in range(self.WIDTH):
            q.add_child(q.root, "x", EdgeKind.CHILD)
        result = cim_minimize(q)
        assert result.pattern.size == 2  # all duplicates collapse to one

    def test_wide_cdm(self):
        q = bushy_cdm_query(self.WIDTH, fanout=50)
        repo = closure(cyclic_chain_constraints())
        assert cdm_minimize(q, repo).pattern.size == 1


class TestLargeDocuments:
    def test_engines_agree_on_large_tree(self):
        db = random_tree(["a", "b", "c", "d"], size=3000, seed=11)
        pattern = TreePattern.build(("a", [("//", ("b*", [("/", "c")])), ("//", "d")]))
        assert (
            EmbeddingEngine(pattern, db).answer_set()
            == TwigJoinEngine(pattern, db).answer_set()
        )

    def test_full_pipeline_on_200_node_chain(self):
        size = 200
        q = chain_query(size)
        repo = closure(chain_constraints(size))
        result = minimize(q, repo)
        assert result.pattern.size == 1
        # CDM should have done all the work; ACIM sees a single node.
        assert result.cdm is not None and result.cdm.removed_count == size - 1


@pytest.mark.parametrize("size", [101, 333])
def test_chain_cim_no_spurious_removals(size):
    """Distinct-typed chains are already minimal at any size."""
    assert cim_minimize(chain_query(size)).removed_count == 0
