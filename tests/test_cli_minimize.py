"""Tests for the ``tpq-minimize`` command-line tool."""

from __future__ import annotations

import pytest

from repro.tools.minimize_cli import main


class TestMinimizeCli:
    def test_plain_cim(self, capsys):
        assert main(["a/b[c][c]", "--algorithm", "cim"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == "a/b[c]"

    def test_pipeline_with_inline_constraints(self, capsys):
        code = main(["Book*[Title][Publisher]", "-c", "Book -> Title; Book -> Publisher"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "Book"

    def test_cdm_explain(self, capsys):
        code = main(
            ["Book*[Title]", "-c", "Book -> Title", "--algorithm", "cdm", "--explain"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "Book"
        assert "CDM rule" in captured.err

    def test_explain_already_minimal(self, capsys):
        assert main(["a/b", "--explain"]) == 0
        assert "already minimal" in capsys.readouterr().err

    def test_sexpr_in_and_out(self, capsys):
        code = main(["(a (/ b) (/ b))", "--sexpr", "--format", "sexpr"])
        assert code == 0
        assert capsys.readouterr().out.strip().startswith("(a")

    def test_ascii_output(self, capsys):
        assert main(["a/b", "--format", "ascii"]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "/b" in out

    def test_constraints_file(self, tmp_path, capsys):
        ics = tmp_path / "ics.txt"
        ics.write_text("# schema\nBook -> Title\n")
        assert main(["Book*[Title]", "-C", str(ics)]) == 0
        assert capsys.readouterr().out.strip() == "Book"

    def test_acim_algorithm(self, capsys):
        code = main(
            [
                "Articles/Article[.//Paragraph]",  # like Figure 2(d) wrong-side
                "--algorithm",
                "acim",
                "-c",
                "Article ->> Paragraph",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "Articles/Article"

    def test_parse_error_exit_code(self, capsys):
        assert main(["a[["]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_constraint_exit_code(self, capsys):
        assert main(["a/b", "-c", "a >>> b"]) == 1


class TestBatchMode:
    def test_batch_file_preserves_order(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "a/b[c][c]\n"
            "# a comment line\n"
            "Book*[Title]   # trailing comment\n"
            "\n"
            "a/b[c][c]\n"
        )
        code = main(["--batch", str(queries), "-c", "Book -> Title"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["a/b[c]", "Book", "a/b[c]"]

    def test_batch_matches_single_query_runs(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        lines = ["a/b[c][c]", "Book*[Title][Publisher]", "a*[.//b][.//b]"]
        queries.write_text("\n".join(lines) + "\n")
        constraints = "Book -> Title; Book -> Publisher"
        assert main(["--batch", str(queries), "-c", constraints]) == 0
        batch_out = capsys.readouterr().out.strip().splitlines()
        singles = []
        for line in lines:
            assert main([line, "-c", constraints]) == 0
            singles.append(capsys.readouterr().out.strip())
        assert batch_out == singles

    def test_batch_explain_reports_cache(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("a/b[c][c]\na/b[c][c]\n")
        assert main(["--batch", str(queries), "--explain", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip().splitlines() == ["a/b[c]", "a/b[c]"]
        assert "2 queries (1 distinct structures)" in captured.err
        assert "hit rate 50%" in captured.err

    def test_batch_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("a/b[c][c]\n"))
        assert main(["--batch", "-"]) == 0
        assert capsys.readouterr().out.strip() == "a/b[c]"

    def test_batch_and_query_are_exclusive(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("a/b\n")
        with pytest.raises(SystemExit):
            main(["a/b", "--batch", str(queries)])
        with pytest.raises(SystemExit):
            main([])

    def test_batch_rejects_non_pipeline_algorithms(self, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("a/b\n")
        with pytest.raises(SystemExit):
            main(["--batch", str(queries), "--algorithm", "cim"])

    def test_batch_parse_error_exit_code(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("a/b\na[[\n")
        assert main(["--batch", str(queries)]) == 1
        assert "error:" in capsys.readouterr().err
