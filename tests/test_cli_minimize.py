"""Tests for the ``tpq-minimize`` command-line tool."""

from __future__ import annotations

from repro.tools.minimize_cli import main


class TestMinimizeCli:
    def test_plain_cim(self, capsys):
        assert main(["a/b[c][c]", "--algorithm", "cim"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == "a/b[c]"

    def test_pipeline_with_inline_constraints(self, capsys):
        code = main(["Book*[Title][Publisher]", "-c", "Book -> Title; Book -> Publisher"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "Book"

    def test_cdm_explain(self, capsys):
        code = main(
            ["Book*[Title]", "-c", "Book -> Title", "--algorithm", "cdm", "--explain"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "Book"
        assert "CDM rule" in captured.err

    def test_explain_already_minimal(self, capsys):
        assert main(["a/b", "--explain"]) == 0
        assert "already minimal" in capsys.readouterr().err

    def test_sexpr_in_and_out(self, capsys):
        code = main(["(a (/ b) (/ b))", "--sexpr", "--format", "sexpr"])
        assert code == 0
        assert capsys.readouterr().out.strip().startswith("(a")

    def test_ascii_output(self, capsys):
        assert main(["a/b", "--format", "ascii"]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "/b" in out

    def test_constraints_file(self, tmp_path, capsys):
        ics = tmp_path / "ics.txt"
        ics.write_text("# schema\nBook -> Title\n")
        assert main(["Book*[Title]", "-C", str(ics)]) == 0
        assert capsys.readouterr().out.strip() == "Book"

    def test_acim_algorithm(self, capsys):
        code = main(
            [
                "Articles/Article[.//Paragraph]",  # like Figure 2(d) wrong-side
                "--algorithm",
                "acim",
                "-c",
                "Article ->> Paragraph",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "Articles/Article"

    def test_parse_error_exit_code(self, capsys):
        assert main(["a[["]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_constraint_exit_code(self, capsys):
        assert main(["a/b", "-c", "a >>> b"]) == 1
