"""Tests for the evaluation planner."""

from __future__ import annotations

from repro import TreePattern
from repro.constraints import parse_constraints
from repro.data import build_tree
from repro.data.generate import random_tree
from repro.matching import DocumentStatistics, EmbeddingEngine, execute, plan


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


def small_tree():
    return build_tree(("Library", [("Book", [("Title", [], "t")])]))


class TestPlan:
    def test_minimization_always_applied(self):
        p = plan(q(("a*", [("/", "b"), ("/", "b")])))
        assert p.removed_nodes == 1
        assert p.pattern.size == 2
        assert "minimization removed 1" in p.explain()

    def test_constraints_forwarded(self):
        p = plan(q(("Book*", [("/", "Title")])), constraints=parse_constraints("Book -> Title"))
        assert p.pattern.size == 1

    def test_linear_pattern_uses_pathstack(self):
        p = plan(q(("a", [("/", ("b", [("//", "c*")]))])))
        assert p.engine == "pathstack"

    def test_single_node_pattern_avoids_pathstack(self):
        p = plan(q("a"))
        assert p.engine == "dp"

    def test_twig_small_document_uses_dp(self):
        stats = DocumentStatistics.collect(small_tree())
        p = plan(q(("a*", [("/", "b"), ("/", "c")])), statistics=stats)
        assert p.engine == "dp"

    def test_twig_large_document_uses_joins(self):
        stats = DocumentStatistics.collect(random_tree(["a", "b", "c"], size=500, seed=0))
        p = plan(q(("a*", [("/", "b"), ("/", "c")])), statistics=stats)
        assert p.engine == "twigjoin"
        assert p.estimated_cost is not None

    def test_no_stats_no_estimate(self):
        p = plan(q("a"))
        assert p.estimated_cost is None

    def test_explain_readable(self):
        p = plan(q(("a", [("//", "b*")])))
        text = p.explain()
        assert "engine=pathstack" in text and "already minimal" in text


class TestExecute:
    def test_all_engines_give_reference_answers(self):
        db = random_tree(["a", "b", "c"], size=200, seed=3)
        stats = DocumentStatistics.collect(db)
        for spec in (
            ("a", [("//", "b*")]),  # path -> pathstack
            ("a*", [("/", "b"), ("//", "c")]),  # twig + large doc -> joins
        ):
            pattern = q(spec)
            evaluation_plan = plan(pattern, statistics=stats)
            got = execute(evaluation_plan, db)
            want = EmbeddingEngine(pattern, db).answer_set()
            assert got == want, evaluation_plan.explain()

    def test_dp_fallback(self):
        db = small_tree()
        pattern = q(("Library*", [("/", "Book"), ("//", "Title")]))
        evaluation_plan = plan(pattern, statistics=DocumentStatistics.collect(db))
        assert evaluation_plan.engine == "dp"
        assert execute(evaluation_plan, db) == EmbeddingEngine(pattern, db).answer_set()
