"""Executable checks of the Section 5.3 strategy algebra (Lemmas 5.2-5.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import TreePattern, acim_minimize, amr, apply_strategy
from repro.constraints import co_occurrence, required_child, required_descendant
from repro.core.edges import EdgeKind
from repro.core.ic_containment import finitely_satisfiable
from repro.core.strategy import OPTIMAL_STRATEGY
from repro.errors import StrategyError
from repro.workloads.paper_queries import (
    ARTICLE_TITLE,
    SECTION_PARAGRAPH,
    figure2_a,
    figure2_d,
    figure2_e,
)

TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 7) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@st.composite
def constraint_sets(draw):
    out = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["child", "desc", "cooc"]))
        if kind == "cooc":
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            j = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            if i != j:
                out.append(co_occurrence(TYPES[i], TYPES[j]))
        else:
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 2))
            j = draw(st.integers(min_value=i + 1, max_value=len(TYPES) - 1))
            make = required_child if kind == "child" else required_descendant
            out.append(make(TYPES[i], TYPES[j]))
    return out


STRATEGIES = st.text(alphabet="arm", min_size=0, max_size=5)


def original_ids(pattern: TreePattern, result: TreePattern) -> set[int]:
    """Ids of the input's nodes surviving in a strategy result (strategy
    steps preserve node identity; augmentation ids are fresh)."""
    input_ids = {n.id for n in pattern.nodes()}
    return {n.id for n in result.nodes() if n.id in input_ids}


class TestSteps:
    def test_unknown_step_rejected(self):
        with pytest.raises(StrategyError):
            apply_strategy(figure2_a(), [], "axm")

    def test_empty_strategy_is_identity(self):
        pattern = figure2_a()
        result = apply_strategy(pattern, [ARTICLE_TITLE], "")
        assert result.isomorphic(pattern)

    def test_m_alone_is_cim(self):
        result = apply_strategy(figure2_a(), [], "m")
        # (a) is CIM-minimal.
        assert result.size == figure2_a().size

    def test_r_removes_directly_implied(self):
        result = apply_strategy(figure2_a(), [ARTICLE_TITLE], "r")
        assert result.size == figure2_a().size - 1  # just the Title

    def test_a_adds_temporaries(self):
        result = apply_strategy(figure2_d(), [SECTION_PARAGRAPH], "a")
        assert result.size == figure2_d().size + 1
        assert any(n.temporary for n in result.nodes())


class TestOptimalStrategy:
    def test_amr_on_the_paper_showcase(self):
        assert amr(figure2_d(), [SECTION_PARAGRAPH]).isomorphic(figure2_e())
        assert amr(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH]).isomorphic(figure2_e())

    def test_optimal_strategy_constant(self):
        assert OPTIMAL_STRATEGY == "amr"

    @settings(max_examples=40, deadline=None)
    @given(patterns(), constraint_sets())
    def test_amr_idempotent(self, pattern, ics):
        """Lemma 5.3: a·m·r is idempotent."""
        once = amr(pattern, ics)
        twice = amr(once, ics)
        assert once.isomorphic(twice)

    @settings(max_examples=40, deadline=None)
    @given(patterns(), constraint_sets(), STRATEGIES)
    def test_amr_dominates_every_strategy(self, pattern, ics, strategy):
        """Lemma 5.4: every strategy string's result contains (node-wise)
        the a·m·r result."""
        if not finitely_satisfiable(ics):
            return
        best = apply_strategy(pattern, ics, "amr")
        other = apply_strategy(pattern, ics, strategy)
        assert original_ids(pattern, best) <= original_ids(pattern, other), (
            f"strategy {strategy!r} removed nodes amr kept"
        )

    @settings(max_examples=40, deadline=None)
    @given(patterns(), constraint_sets(), STRATEGIES)
    def test_no_strategy_beats_amr_in_size(self, pattern, ics, strategy):
        if not finitely_satisfiable(ics):
            return
        best = apply_strategy(pattern, ics, "amr")
        other = apply_strategy(pattern, ics, strategy)
        # Compare surviving original nodes (temporaries may linger in
        # strategies not ending with r).
        assert len(original_ids(pattern, best)) <= len(original_ids(pattern, other))

    @settings(max_examples=30, deadline=None)
    @given(patterns(max_size=6), constraint_sets())
    def test_acim_equals_amr(self, pattern, ics):
        if not finitely_satisfiable(ics):
            return
        assert acim_minimize(pattern, ics).pattern.isomorphic(amr(pattern, ics))
