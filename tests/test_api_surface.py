"""API-surface sanity: exports resolve, docstrings exist, no cycles."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.batch",
    "repro.constraints",
    "repro.data",
    "repro.matching",
    "repro.parsing",
    "repro.schema",
    "repro.workloads",
    "repro.bench",
    "repro.extensions",
    "repro.resilience",
    "repro.service",
    "repro.tools",
    "repro.certify",
]


def all_modules() -> list[str]:
    out = list(SUBPACKAGES)
    for name in SUBPACKAGES:
        package = importlib.import_module(name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                out.append(f"{name}.{info.name}")
    return sorted(set(out))


@pytest.mark.parametrize("module_name", all_modules())
def test_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def test_version():
    assert repro.__version__ == "1.2.0"


def test_session_api_is_exported():
    """The Session front door (and its option/result shapes) is the
    pinned public configuration path."""
    import dataclasses

    for name in ("Session", "MinimizeOptions", "QueryResult", "STRATEGIES"):
        assert name in repro.__all__, f"repro.__all__ is missing {name}"
    fields = {f.name for f in dataclasses.fields(repro.MinimizeOptions)}
    assert fields == {
        "engine",
        "incremental",
        "oracle_cache",
        "jobs",
        "strategy",
        "memoize",
        "chunksize",
        "persistent_pool",
        "verify",
        "watchdog",
        "fault_plan",
        "core_engine",
        "store_path",
        "certify",
        "audit_rate",
    }


def test_service_surface():
    """The serving layer's exports resolve and ride on the Session API."""
    service = importlib.import_module("repro.service")
    for name in (
        "MinimizationService",
        "ServiceStats",
        "LatencyHistogram",
        "serve_tcp",
        "serve_stdio",
        "handle_line",
        "handle_connection",
    ):
        assert hasattr(service, name), f"repro.service is missing {name}"
    for name in ("ServiceError", "ServiceClosedError", "ServiceOverloadedError"):
        assert name in repro.__all__, f"repro.__all__ is missing {name}"


def test_public_callables_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name, None)
        if callable(obj) and not isinstance(obj, type):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"undocumented public functions: {undocumented}"


def test_public_classes_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name, None)
        if isinstance(obj, type) and not (obj.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, f"undocumented public classes: {undocumented}"
