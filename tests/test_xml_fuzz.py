"""Property-based round-trip fuzzing of the XML reader/writer."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.data import DataTree, parse_xml, to_xml

# Tag names: XML-safe identifiers.
TAGS = st.from_regex(r"[A-Za-z][A-Za-z0-9_.-]{0,8}", fullmatch=True)
# Text values: printable, no control chars; the writer must escape the
# markup-significant ones.
TEXTS = st.text(
    alphabet=st.characters(
        min_codepoint=0x20, max_codepoint=0xD7FF, exclude_characters="\r"
    ),
    min_size=1,
    max_size=24,
).map(str.strip).filter(bool)
ATTR_NAMES = st.from_regex(r"[A-Za-z][A-Za-z0-9_-]{0,6}", fullmatch=True)


@st.composite
def data_trees(draw, max_nodes: int = 12) -> DataTree:
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    tree = DataTree(draw(TAGS))
    nodes = [tree.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        node = tree.add_child(parent, draw(TAGS))
        if draw(st.booleans()):
            node.value = draw(TEXTS)
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            node.attributes[draw(ATTR_NAMES)] = draw(TEXTS)
        nodes.append(node)
    # Occasionally make a node multi-typed.
    if size > 1 and draw(st.booleans()):
        victim = nodes[draw(st.integers(min_value=1, max_value=len(nodes) - 1))]
        extra = draw(TAGS)
        victim.types = victim.types | {extra}
    return tree


def _shape(tree: DataTree) -> list[tuple]:
    return [
        (
            tuple(sorted(n.types)),
            n.depth,
            n.value,
            tuple(sorted(n.attributes.items())),
        )
        for n in tree.nodes()
    ]


@settings(max_examples=200, deadline=None)
@given(data_trees())
def test_xml_round_trip_preserves_shape(tree: DataTree):
    text = to_xml(tree)
    back = parse_xml(text)
    assert _shape(back) == _shape(tree)


@settings(max_examples=100, deadline=None)
@given(data_trees())
def test_serialization_is_a_fixpoint(tree: DataTree):
    once = to_xml(tree)
    assert to_xml(parse_xml(once)) == once
