"""Tests for the LDAP directory façade."""

from __future__ import annotations

import pytest

from repro import TreePattern
from repro.data.ldap import Directory, dn_of
from repro.errors import DataModelError
from repro.matching import evaluate_nodes


def build() -> Directory:
    d = Directory("Organization", rdn="o=Corp")
    dept = d.add(d.root_entry, "Dept", rdn="ou=Research")
    d.add(dept, ["Employee", "Person"], rdn="cn=Ada", attributes={"mail": "ada@corp"})
    return d


class TestDirectory:
    def test_dn_leaf_first(self):
        d = build()
        ada = d.entries_of_class("Employee")[0]
        assert dn_of(ada) == "cn=Ada,ou=Research,o=Corp"

    def test_dn_fallback_without_rdn(self):
        d = Directory("Organization")
        entry = d.add(d.root_entry, "Dept")
        assert dn_of(entry).startswith("Dept=#")

    def test_lookup_round_trip(self):
        d = build()
        ada = d.entries_of_class("Person")[0]
        assert d.lookup(dn_of(ada)) is ada

    def test_lookup_unknown_raises(self):
        with pytest.raises(DataModelError):
            build().lookup("cn=Nobody,o=Corp")

    def test_entries_of_class_uses_all_classes(self):
        d = build()
        assert d.entries_of_class("Person") == d.entries_of_class("Employee")

    def test_attributes_stored(self):
        d = build()
        ada = d.entries_of_class("Employee")[0]
        assert ada.attributes["mail"] == "ada@corp"

    def test_len(self):
        assert len(build()) == 3

    def test_patterns_match_object_classes(self):
        d = build()
        q = TreePattern.build(("Organization", [("//", "Person*")]))
        answers = evaluate_nodes(q, d.tree)
        assert len(answers) == 1 and "Employee" in answers[0].types
