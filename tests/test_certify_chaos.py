"""Certification chaos suite: seeded semantic corruption, zero escapes.

``store.tamper`` and ``cache.poison`` are the *semantic* fault points:
they mutate replay recipes while leaving every checksum valid, so only
the certification layer (:mod:`repro.certify`) stands between a
poisoned cache and a wrong answer. Each test here corrupts a cache tier
under a deterministic :class:`~repro.resilience.faults.FaultPlan` and
holds the stack — in-process sessions, the TCP service, and the sharded
fleet — to the differential contract: every served answer is
byte-identical to the cold serial ``minimize`` loop, the corruption is
*detected* (nonzero ``audit_failures``/``quarantined_records``), and no
answer is served unverified (``certified`` covers every response).

Companion "gap" tests prove the suite is non-vacuous: with
certification off, the same fault plans make wrong answers escape.

Marked ``chaos`` (run with ``pytest -m chaos``).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import MinimizeOptions, Session
from repro.core.pipeline import minimize
from repro.parsing.serializer import to_xpath
from repro.parsing.xpath import parse_xpath
from repro.resilience import AsyncServiceClient, FaultPlan, FaultSpec, RetryPolicy
from repro.service import MinimizationService
from repro.service.protocol import serve_tcp
from repro.shard import ShardManager
from repro.workloads import chaos_workload

pytestmark = pytest.mark.chaos

#: One deterministic workload shared by the whole suite. Ten queries
#: over four distinct structures: the six repeats are what replay — and
#: what a poisoned recipe would mis-serve.
QUERIES, CONSTRAINTS = chaos_workload(10, seed=1)

FAST_RETRY = RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.1)

#: Corrupt every in-memory memo insert / store write. ``drop`` removes a
#: recorded elimination, so a replayed answer is *equivalent but not
#: minimal* — the nastiest semantic corruption, invisible to checksums.
POISON = FaultPlan(
    specs=(FaultSpec(point="cache.poison", kind="drop", every=1),)
)
TAMPER = FaultPlan(
    specs=(FaultSpec(point="store.tamper", kind="drop", every=1),)
)


def serial_expected() -> list[str]:
    """The cold serial-loop oracle (minimal queries are unique)."""
    return [to_xpath(minimize(parse_xpath(q), CONSTRAINTS).pattern) for q in QUERIES]


EXPECTED = serial_expected()


def _session_minimized(options: MinimizeOptions) -> tuple[list[str], dict]:
    with Session(options, constraints=CONSTRAINTS) as session:
        results = [session.minimize(parse_xpath(q)) for q in QUERIES]
        counters = session.counters()
    return [to_xpath(r.pattern) for r in results], counters


def assert_no_escapes(minimized: list[str], counters: dict) -> None:
    """The chaos gate: byte-identical answers, detected corruption, and
    every response covered by a verified certificate."""
    assert minimized == EXPECTED
    assert counters["audit_failures"] > 0
    assert counters["quarantined_records"] > 0
    # Zero unverified answers: each of the len(QUERIES) responses was
    # either fresh-checked or replay-audited (quarantined replays are
    # recomputed and fresh-checked again, so the count can exceed it).
    assert counters["certified"] >= len(QUERIES)


class TestPoisonedMemo:
    """``cache.poison``: the in-memory replay memo lies."""

    def test_gap_uncertified_session_serves_wrong_answers(self):
        """Non-vacuity: without certification the poisoned recipes are
        replayed verbatim and wrong answers escape."""
        minimized, _ = _session_minimized(MinimizeOptions(fault_plan=POISON))
        assert minimized != EXPECTED

    def test_certified_session_quarantines_and_recomputes(self):
        minimized, counters = _session_minimized(
            MinimizeOptions(certify=True, fault_plan=POISON)
        )
        assert_no_escapes(minimized, counters)
        assert counters["recomputed_after_quarantine"] > 0

    def test_tcp_service_under_poison(self):
        async def scenario():
            options = MinimizeOptions(certify=True, fault_plan=POISON)
            service = MinimizationService(
                options,
                constraints=CONSTRAINTS,
                max_batch_size=4,
                max_wait=0.005,
            )
            stop = asyncio.Event()
            bound: dict = {}
            async with service:
                server = asyncio.ensure_future(
                    serve_tcp(
                        service, "127.0.0.1", 0, stop=stop,
                        on_bound=lambda p: bound.update(port=p),
                    )
                )
                while "port" not in bound:
                    await asyncio.sleep(0.005)
                client = AsyncServiceClient(
                    "127.0.0.1", bound["port"], retry=FAST_RETRY, timeout=30.0
                )
                try:
                    results = [await client.minimize(q) for q in QUERIES]
                finally:
                    await client.aclose()
                counters = service.counters()
                stop.set()
                await server
            return results, counters

        results, counters = asyncio.run(scenario())
        assert_no_escapes([r["minimized"] for r in results], counters)

    # Note: ``cache.poison`` cannot reach shard workers — the manager
    # deliberately strips the fault plan from worker options (it owns
    # chaos, and it is the store's single writer). The sharded leg of
    # this suite therefore corrupts through ``store.tamper`` below.


class TestTamperedStore:
    """``store.tamper``: the persistent tier commits checksum-valid lies."""

    def _write_tampered(self, store_path: str) -> None:
        """Phase 1: a certified writer session whose store commits
        tampered recipes (the corruption rides the write-behind, so the
        writer's own in-memory answers stay correct)."""
        minimized, _ = _session_minimized(
            MinimizeOptions(
                certify=True, store_path=store_path, fault_plan=TAMPER
            )
        )
        assert minimized == EXPECTED  # the writer itself was never wrong

    def test_gap_uncertified_warm_session_serves_wrong_answers(self, tmp_path):
        store_path = str(tmp_path / "tampered.sqlite")
        self._write_tampered(store_path)
        minimized, _ = _session_minimized(
            MinimizeOptions(store_path=store_path)
        )
        assert minimized != EXPECTED

    def test_certified_warm_session_quarantines_and_recomputes(self, tmp_path):
        store_path = str(tmp_path / "tampered.sqlite")
        self._write_tampered(store_path)
        minimized, counters = _session_minimized(
            MinimizeOptions(certify=True, store_path=store_path)
        )
        assert_no_escapes(minimized, counters)
        assert counters["recomputed_after_quarantine"] > 0

    def test_tcp_service_on_tampered_store(self, tmp_path):
        store_path = str(tmp_path / "tampered.sqlite")
        self._write_tampered(store_path)

        async def scenario():
            options = MinimizeOptions(certify=True, store_path=store_path)
            service = MinimizationService(
                options,
                constraints=CONSTRAINTS,
                max_batch_size=4,
                max_wait=0.005,
            )
            stop = asyncio.Event()
            bound: dict = {}
            async with service:
                server = asyncio.ensure_future(
                    serve_tcp(
                        service, "127.0.0.1", 0, stop=stop,
                        on_bound=lambda p: bound.update(port=p),
                    )
                )
                while "port" not in bound:
                    await asyncio.sleep(0.005)
                client = AsyncServiceClient(
                    "127.0.0.1", bound["port"], retry=FAST_RETRY, timeout=30.0
                )
                try:
                    results = [await client.minimize(q) for q in QUERIES]
                finally:
                    await client.aclose()
                counters = service.counters()
                stop.set()
                await server
            return results, counters

        results, counters = asyncio.run(scenario())
        assert_no_escapes([r["minimized"] for r in results], counters)

    def test_sharded_fleet_on_tampered_store(self, tmp_path):
        """End-to-end through the fleet: a sharded run whose *manager*
        (the single writer) tampers every spooled row it commits, then a
        fresh certified fleet warm-starts from that store — every worker
        detects, quarantines (read-only: counted), and recomputes."""
        store_path = str(tmp_path / "tampered.sqlite")

        async def write_phase():
            async with ShardManager(
                MinimizeOptions(
                    certify=True, store_path=store_path, fault_plan=TAMPER
                ),
                constraints=CONSTRAINTS,
                shards=2,
                max_queue=256,
            ) as manager:
                results = [
                    await manager.submit(parse_xpath(q)) for q in QUERIES
                ]
            return [to_xpath(r.pattern) for r in results]

        assert asyncio.run(write_phase()) == EXPECTED  # writers never lied

        async def read_phase():
            async with ShardManager(
                MinimizeOptions(certify=True, store_path=store_path),
                constraints=CONSTRAINTS,
                shards=2,
                max_queue=256,
            ) as manager:
                results = [
                    await manager.submit(parse_xpath(q)) for q in QUERIES
                ]
                counters = await manager.counters_async()
            return results, counters

        results, counters = asyncio.run(read_phase())
        assert_no_escapes([to_xpath(r.pattern) for r in results], counters)

    def test_store_self_heals_after_quarantine(self, tmp_path):
        """After one certified pass over a tampered store, the forged
        rows have been replaced: a later *uncertified* session reads only
        healed records and serves correctly."""
        store_path = str(tmp_path / "tampered.sqlite")
        self._write_tampered(store_path)
        minimized, counters = _session_minimized(
            MinimizeOptions(certify=True, store_path=store_path)
        )
        assert_no_escapes(minimized, counters)
        healed, after = _session_minimized(
            MinimizeOptions(store_path=store_path)
        )
        assert healed == EXPECTED
        assert after.get("audit_failures", 0) == 0
