"""Cross-validation of CIM/ACIM against the exhaustive reference minimizer.

The strongest correctness evidence in the suite: the polynomial
algorithms must find exactly the size the exponential search finds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import TreePattern, acim_minimize, cim_minimize
from repro.core.bruteforce import exhaustive_minimize
from repro.core.edges import EdgeKind
from repro.core.ic_containment import finitely_satisfiable
from repro.constraints import co_occurrence, required_child, required_descendant
from repro.workloads.paper_queries import (
    SECTION_PARAGRAPH,
    figure2_d,
    figure2_e,
    figure2_h,
    figure2_i,
)

TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 7) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@st.composite
def constraint_sets(draw):
    out = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["child", "desc", "cooc"]))
        if kind == "cooc":
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            j = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            if i != j:
                out.append(co_occurrence(TYPES[i], TYPES[j]))
        else:
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 2))
            j = draw(st.integers(min_value=i + 1, max_value=len(TYPES) - 1))
            make = required_child if kind == "child" else required_descendant
            out.append(make(TYPES[i], TYPES[j]))
    return out


class TestReference:
    def test_figure2_h(self):
        assert exhaustive_minimize(figure2_h()).size == figure2_i().size

    def test_figure2_d_under_ic(self):
        best = exhaustive_minimize(figure2_d(), [SECTION_PARAGRAPH])
        assert best.size == figure2_e().size

    def test_size_guard(self):
        from repro.workloads.querygen import chain_query

        with pytest.raises(ValueError):
            exhaustive_minimize(chain_query(30))


@settings(max_examples=60, deadline=None)
@given(patterns())
def test_cim_finds_the_exhaustive_minimum(pattern: TreePattern):
    """CIM's polynomial MEO reaches the true minimum (Theorem 4.1)."""
    assert cim_minimize(pattern).pattern.size == exhaustive_minimize(pattern).size


@settings(max_examples=40, deadline=None)
@given(patterns(max_size=6), constraint_sets())
def test_acim_finds_the_exhaustive_minimum(pattern: TreePattern, ics):
    """ACIM reaches the true minimum under constraints (Theorem 5.1)."""
    if not finitely_satisfiable(ics):
        return
    assert (
        acim_minimize(pattern, ics).pattern.size
        == exhaustive_minimize(pattern, ics).size
    )
