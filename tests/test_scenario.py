"""Tests for the scenario harness (:mod:`repro.scenario`).

Covers spec parsing/validation, plan determinism, the burst/diurnal
arrival generators, replay determinism across backends (session vs
service vs a 2-shard fleet, sequential vs paced), live IC churn
counters and cold-probe verification, and the ``repro-scenario`` CLI.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.scenario import (
    SCENARIO_OPS,
    ScenarioRunner,
    ScenarioSpec,
    SpecError,
    build_plan,
    event_log_digest,
    load_events,
    run_scenario,
)
from repro.scenario.cli import main as scenario_main
from repro.workloads.arrival import (
    ARRIVAL_PROCESSES,
    arrival_workload,
    burst_arrivals,
    diurnal_arrivals,
)

SMALL = {
    "name": "small",
    "seed": 11,
    "events": 24,
    "arrival": {"process": "poisson", "rate": 300.0},
    "constraints": 3,
    "tenants": [
        {
            "name": "t",
            "ops": {"minimize": 0.7, "equivalence-check": 0.2, "evaluate": 0.1},
            "families": 3,
            "family_size": 14,
            "zipf_s": 1.1,
        }
    ],
}

CHURNY = {
    "name": "churny",
    "seed": 5,
    "events": 30,
    "arrival": {"process": "burst", "rate": 400.0},
    "constraints": 3,
    "churn": {"every": 6, "pool": 3},
    "tenants": [
        {
            "name": "t",
            "ops": {"minimize": 0.8, "equivalence-check": 0.2},
            "families": 3,
            "family_size": 14,
        }
    ],
}


def spec(payload: dict) -> ScenarioSpec:
    return ScenarioSpec.from_dict(payload)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------


class TestSpec:
    def test_round_trip(self):
        s = spec(CHURNY)
        assert ScenarioSpec.from_dict(s.to_dict()) == s

    def test_known_ops_only(self):
        bad = dict(SMALL, tenants=[dict(SMALL["tenants"][0], ops={"frobnicate": 1.0})])
        with pytest.raises(SpecError):
            spec(bad)
        assert set(SMALL["tenants"][0]["ops"]) <= set(SCENARIO_OPS)

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SpecError):
            spec(dict(SMALL, surprise=1))

    def test_ic_update_requires_churn_pool(self):
        bad = dict(SMALL, tenants=[dict(SMALL["tenants"][0], ops={"ic-update": 1.0})])
        with pytest.raises(SpecError):
            spec(bad)

    def test_duplicate_tenant_names_rejected(self):
        tenant = SMALL["tenants"][0]
        with pytest.raises(SpecError):
            spec(dict(SMALL, tenants=[tenant, tenant]))

    def test_nonpositive_weights_rejected(self):
        bad = dict(SMALL, tenants=[dict(SMALL["tenants"][0], ops={"minimize": 0.0})])
        with pytest.raises(SpecError):
            spec(bad)


# ----------------------------------------------------------------------
# Arrival generators
# ----------------------------------------------------------------------


class TestArrivals:
    def test_burst_shape(self):
        offsets = burst_arrivals(64, 200.0, seed=3)
        assert len(offsets) == 64
        assert offsets == sorted(offsets)
        assert all(t >= 0 for t in offsets)
        # Determinism under the seed.
        assert offsets == burst_arrivals(64, 200.0, seed=3)
        assert offsets != burst_arrivals(64, 200.0, seed=4)

    def test_burst_clusters(self):
        # Bursts land near multiples of burst_every: a large fraction of
        # gaps inside a cluster are far smaller than the mean gap.
        offsets = burst_arrivals(200, 100.0, seed=1, burst_every=0.5, burst_size=10)
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        tiny = sum(1 for g in gaps if g < 0.002)
        assert tiny >= 50

    def test_diurnal_shape(self):
        offsets = diurnal_arrivals(128, 300.0, seed=9)
        assert len(offsets) == 128
        assert offsets == sorted(offsets)
        assert offsets == diurnal_arrivals(128, 300.0, seed=9)

    def test_workload_dispatch(self):
        for process in ARRIVAL_PROCESSES:
            queries, offsets, constraints = arrival_workload(
                8, 100.0, process=process, size=10, seed=2
            )
            assert len(queries) == 8 and len(offsets) == 8
            assert constraints


# ----------------------------------------------------------------------
# Plan determinism
# ----------------------------------------------------------------------


class TestPlan:
    def test_same_seed_same_plan(self):
        a, b = build_plan(spec(CHURNY)), build_plan(spec(CHURNY))
        assert [(p.op, p.tenant, p.family, p.offset, p.add, p.drop) for p in a.ops] == [
            (p.op, p.tenant, p.family, p.offset, p.add, p.drop) for p in b.ops
        ]
        assert [c.notation() for c in a.initial_constraints] == [
            c.notation() for c in b.initial_constraints
        ]
        assert [c.notation() for c in a.churn_pool] == [
            c.notation() for c in b.churn_pool
        ]

    def test_different_seed_different_plan(self):
        a = build_plan(spec(CHURNY))
        b = build_plan(spec(dict(CHURNY, seed=6)))
        assert [(p.op, p.family) for p in a.ops] != [(p.op, p.family) for p in b.ops]

    def test_churn_cadence(self):
        plan = build_plan(spec(CHURNY))
        for index, planned in enumerate(plan.ops):
            if (index + 1) % 6 == 0:
                assert planned.op == "ic-update"
                assert planned.add or planned.drop

    def test_notation_constraints_passthrough(self):
        explicit = dict(SMALL, constraints=["a -> b", "b ~ c"])
        plan = build_plan(spec(explicit))
        assert [c.notation() for c in plan.initial_constraints] == [
            "a -> b",
            "b ~ c",
        ]


# ----------------------------------------------------------------------
# Replay determinism across backends
# ----------------------------------------------------------------------


class TestReplay:
    def test_session_replay_deterministic(self):
        a = run_scenario(spec(SMALL), target="session")
        b = run_scenario(spec(SMALL), target="session")
        assert a.digest == b.digest
        assert [e.to_dict() for e in a.events] == [e.to_dict() for e in b.events]
        assert a.digest == event_log_digest(a.events)

    def test_service_matches_session(self):
        a = run_scenario(spec(CHURNY), target="session")
        b = run_scenario(spec(CHURNY), target="service")
        assert a.digest == b.digest

    def test_paced_matches_sequential(self):
        a = run_scenario(spec(CHURNY), target="service")
        b = run_scenario(spec(CHURNY), target="service", paced=True)
        assert a.digest == b.digest

    def test_shards_match_session(self):
        a = run_scenario(spec(CHURNY), target="session")
        b = run_scenario(spec(CHURNY), target="shards:2")
        assert a.digest == b.digest

    def test_unknown_target_rejected(self):
        from repro.scenario.runner import ScenarioError

        with pytest.raises(ScenarioError):
            run_scenario(spec(SMALL), target="cluster:9000")


# ----------------------------------------------------------------------
# Live IC churn
# ----------------------------------------------------------------------


class TestChurnScenario:
    def test_churn_counters_and_probes(self):
        report = run_scenario(spec(CHURNY), target="session", verify=True)
        assert report.ic_updates == 5
        assert report.invalidated_replays > 0
        assert report.verify_probes > 0
        assert report.verify_failures == []
        churn_events = [e for e in report.events if e.op == "ic-update"]
        assert len(churn_events) == 5
        for event in churn_events:
            assert event.payload["old_digest"] != event.payload["new_digest"]
            assert event.payload["changed"] is True
            # Transient counter keys must not leak into the hashed log.
            assert "_invalidated" not in event.payload
            assert "_surviving" not in event.payload

    def test_oracle_entries_survive_churn(self):
        # equivalence-check ops populate the closure-free oracle tier
        # client-side; the churn snapshot must see it survive.
        from repro.core.oracle_cache import reset_global_cache

        reset_global_cache()
        try:
            report = run_scenario(spec(CHURNY), target="session")
            assert report.surviving_oracle_entries > 0
        finally:
            reset_global_cache()

    def test_verify_probes_are_digest_neutral(self):
        # Regression: a --verify cold probe warms the live target's
        # replay memo with the family exemplar, so later isomorphs
        # replay in the *exemplar's* deletion order instead of their
        # own. The digest hashes the eliminated set, not the order —
        # so probing must not move it.
        a = run_scenario(spec(CHURNY), target="session")
        b = run_scenario(spec(CHURNY), target="session", verify=True)
        assert b.verify_probes > 0
        assert a.digest == b.digest

    def test_churn_digest_stable_under_oracle_state(self):
        # Same spec, cold vs pre-warmed oracle cache: counters differ,
        # the hashed event log must not.
        from repro.core.oracle_cache import reset_global_cache

        reset_global_cache()
        a = run_scenario(spec(CHURNY), target="session")
        b = run_scenario(spec(CHURNY), target="session")  # warm cache now
        assert a.digest == b.digest


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def _write_spec(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return path

    def test_validate(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, SMALL)
        assert scenario_main(["validate", str(path)]) == 0
        bad = self._write_spec(tmp_path, dict(SMALL, surprise=1))
        assert scenario_main(["validate", str(bad)]) != 0

    def test_plan(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, CHURNY)
        assert scenario_main(["plan", str(path)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["name"] == "churny"
        assert len(out["ops"]) == CHURNY["events"]
        assert any(op["op"] == "ic-update" for op in out["ops"])

    def test_run_repeat_deterministic(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, SMALL)
        events_path = tmp_path / "events.jsonl"
        code = scenario_main(
            [
                "run",
                str(path),
                "--repeat",
                "2",
                "--events",
                str(events_path),
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["replay_deterministic"] is True
        assert len(set(out["replay_digests"])) == 1
        replayed = load_events(events_path)
        assert event_log_digest(replayed) == out["digest"]

    def test_run_verify_churn(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, CHURNY)
        assert scenario_main(["run", str(path), "--verify"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["ic_updates"] == 5
        assert out["verify_failures"] == []


def test_example_specs_validate():
    """The shipped docs/scenarios pack must stay loadable."""
    from pathlib import Path

    from repro.scenario import load_spec

    pack = Path(__file__).resolve().parent.parent / "docs" / "scenarios"
    names = {p.name for p in pack.glob("*.json")}
    assert {
        "steady-state.json",
        "burst.json",
        "diurnal.json",
        "churn-heavy.json",
    } <= names
    for path in sorted(pack.glob("*.json")):
        loaded = load_spec(path)
        assert loaded.events > 0
