"""Every example script must run cleanly (they are executable docs)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: Path):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 4, "the deliverable requires at least three examples"
