"""Certification: the independent checker, certificate mutations, and
the cache-integrity quarantine pipeline.

Three layers of coverage:

* unit tests for :mod:`repro.certify` (JSON round-trip, checker verdicts,
  the oracle-table checker);
* a Hypothesis property suite showing the checker rejects *every*
  mutation of a genuine certificate (and accepts every genuine one, byte
  for byte, after a trip through the persistent store);
* the regression pinning the gap this subsystem closes: a
  checksum-valid but semantically wrong replay record in the persistent
  store is served verbatim by an uncertified session, and detected,
  quarantined, and transparently recomputed by a certified one.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import MinimizeOptions, QueryResult, Session
from repro.certify import Certificate, check_certificate, check_oracle_table
from repro.constraints.closure import closure
from repro.constraints.model import parse_constraints
from repro.constraints.repository import coerce_repository
from repro.core.containment import mapping_targets
from repro.core.fingerprint import fingerprint
from repro.core.oracle_cache import ContainmentOracleCache, _digest, subtree_keys
from repro.parsing.sexpr import to_sexpr
from repro.parsing.xpath import parse_xpath
from repro.store import PersistentStore
from repro.workloads.batchgen import batch_workload, isomorphic_shuffle
from repro.workloads.querygen import duplicate_random_branch, random_query

# A query with one redundant branch: the pipeline eliminates exactly one
# node, so its certificate has one witness step.
REDUNDANT = "a[b][b]/c"


def _certified_pool():
    """Deterministic certified answers (with their constraints) for the
    property suite: every entry carries a certificate, most with at
    least one witness step."""
    queries = []
    for i in range(8):
        base = random_query(8, seed=100 + i)
        queries.append(duplicate_random_branch(base, seed=200 + i))
    generated, constraints = batch_workload(
        8, kind="mixed", distinct=4, size=10, seed=7
    )
    queries.extend(generated)
    with Session(MinimizeOptions(certify=True), constraints=constraints) as session:
        results = session.minimize_many(queries)
    entries = [r for r in results if r.certificate is not None]
    assert entries, "pool construction produced no certified answers"
    return entries, constraints


POOL, POOL_CONSTRAINTS = _certified_pool()
#: Certificates are bound to the *closed* repository's digest — direct
#: checker calls must close the constraint set exactly as a session does.
POOL_REPO = closure(coerce_repository(POOL_CONSTRAINTS))
#: Entries whose certificate has at least one witness step (needed by
#: the step-level mutations).
STEPPED = [r for r in POOL if r.certificate.steps]
assert STEPPED, "pool has no answers with eliminations"


# ---------------------------------------------------------------------------
# Certificate structure
# ---------------------------------------------------------------------------


def test_certificate_json_round_trip():
    for result in POOL:
        data = result.certificate.to_json()
        clone = Certificate.from_json(data)
        assert clone == result.certificate
        assert clone.to_json() == data
        # JSON-serializable all the way down.
        assert json.loads(json.dumps(data)) == data


def test_certificate_binds_recipe_and_sizes():
    for result in POOL:
        cert = result.certificate
        assert cert.fingerprint == result.fingerprint
        assert cert.eliminated == tuple(result.eliminated)
        assert cert.input_size == result.input_pattern.size
        assert cert.output_size == result.pattern.size
        assert cert.output_key == result.pattern.canonical_key()


# ---------------------------------------------------------------------------
# Checker verdicts (unit)
# ---------------------------------------------------------------------------


def test_genuine_certificates_verify():
    for result in POOL:
        verdict = check_certificate(
            result.certificate,
            result.input_pattern,
            POOL_REPO,
            eliminated=list(result.eliminated),
        )
        assert verdict.ok, verdict.reason


def test_genuine_certificates_survive_store_round_trip(tmp_path):
    """Byte-for-byte persistence: a certificate written with its replay
    record reads back identical and still verifies."""
    store = PersistentStore(str(tmp_path / "certs.sqlite"))
    digest = POOL[0].certificate.closure_digest
    # One record per fingerprint: isomorphic duplicates share a key, so
    # a later write would replace an earlier variant's certificate.
    distinct = list({r.fingerprint: r for r in POOL}.values())
    for result in distinct:
        store.put_minimization(
            result.fingerprint,
            digest,
            result.input_pattern.copy(),
            list(result.eliminated),
            result.certificate,
        )
    store.close()
    store = PersistentStore(str(tmp_path / "certs.sqlite"))
    for result in distinct:
        record = store.get_minimization(result.fingerprint, digest)
        assert record is not None
        pattern, eliminated, cert = record
        assert cert is not None
        assert cert.to_json() == result.certificate.to_json()
        verdict = check_certificate(
            cert, pattern, POOL_REPO, eliminated=eliminated
        )
        assert verdict.ok, verdict.reason
    store.close()


def test_checker_rejects_wrong_input_pattern():
    result = next(r for r in STEPPED)
    other = parse_xpath("x/y/z")
    verdict = check_certificate(result.certificate, other, POOL_REPO)
    assert not verdict.ok


def test_checker_rejects_wrong_constraints():
    """A certificate is bound to the closure digest it was proven under."""
    result = next(r for r in STEPPED)
    verdict = check_certificate(
        result.certificate,
        result.input_pattern,
        closure(coerce_repository(parse_constraints("Zq -> Zr"))),
        eliminated=list(result.eliminated),
    )
    assert not verdict.ok


# ---------------------------------------------------------------------------
# Mutation properties: every tampered certificate is rejected
# ---------------------------------------------------------------------------


def _flip(hex_string: str) -> str:
    head = "0" if hex_string[0] != "0" else "1"
    return head + hex_string[1:]


def _eliminated_pair(step: dict) -> int:
    """Index of the mapping pair that remaps the eliminated node (the
    checker requires one, so it is always present)."""
    for index, (source, _target) in enumerate(step["mapping"]):
        if source == step["node"]:
            return index
    raise AssertionError("genuine step does not remap its own node")


def _mutate_flip_fingerprint(data, eliminated):
    data["fingerprint"] = _flip(data["fingerprint"])
    return data, eliminated


def _mutate_flip_closure_digest(data, eliminated):
    data["closure_digest"] = _flip(data["closure_digest"])
    return data, eliminated


def _mutate_version(data, eliminated):
    data["version"] = 2
    return data, eliminated


def _mutate_input_size(data, eliminated):
    data["input_size"] += 1
    return data, eliminated


def _mutate_output_key(data, eliminated):
    data["output_key"] += "#"
    return data, eliminated


def _mutate_drop_step(data, eliminated):
    if not data["steps"]:
        return None
    data["steps"].pop()
    return data, eliminated


def _mutate_drop_mapping_pair(data, eliminated):
    if not data["steps"]:
        return None
    step = data["steps"][0]
    step["mapping"].pop(_eliminated_pair(step))
    return data, eliminated


def _mutate_retarget_nonexistent(data, eliminated):
    if not data["steps"]:
        return None
    step = data["steps"][0]
    step["mapping"][_eliminated_pair(step)][1] = 987654321
    return data, eliminated


def _mutate_bad_stage(data, eliminated):
    if not data["steps"]:
        return None
    data["steps"][0]["stage"] = "zzz"
    return data, eliminated


def _mutate_recipe_binding(data, eliminated):
    if not eliminated:
        return None
    return data, eliminated[:-1]


MUTATIONS = {
    "flip-fingerprint": _mutate_flip_fingerprint,
    "flip-closure-digest": _mutate_flip_closure_digest,
    "version-bump": _mutate_version,
    "input-size-off-by-one": _mutate_input_size,
    "output-key-garbage": _mutate_output_key,
    "drop-step": _mutate_drop_step,
    "drop-mapping-pair": _mutate_drop_mapping_pair,
    "retarget-nonexistent": _mutate_retarget_nonexistent,
    "bad-stage": _mutate_bad_stage,
    "recipe-binding-mismatch": _mutate_recipe_binding,
}


@settings(max_examples=250, deadline=None)
@given(data=st.data())
def test_every_mutation_is_rejected(data):
    result = data.draw(st.sampled_from(STEPPED), label="workload")
    name = data.draw(st.sampled_from(sorted(MUTATIONS)), label="mutation")
    # Deep-copy through JSON: exactly the wire/store representation an
    # adversary would tamper with.
    cert_json = json.loads(json.dumps(result.certificate.to_json()))
    mutated = MUTATIONS[name](cert_json, list(result.eliminated))
    assume(mutated is not None)
    cert_data, eliminated = mutated
    cert = Certificate.from_json(cert_data)
    verdict = check_certificate(
        cert, result.input_pattern, POOL_REPO, eliminated=eliminated
    )
    assert not verdict.ok, f"mutation {name!r} was accepted"
    assert verdict.reason


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_genuine_certificates_always_accepted(data):
    result = data.draw(st.sampled_from(POOL), label="workload")
    cert = Certificate.from_json(
        json.loads(json.dumps(result.certificate.to_json()))
    )
    verdict = check_certificate(
        cert, result.input_pattern, POOL_REPO,
        eliminated=list(result.eliminated),
    )
    assert verdict.ok, verdict.reason


# ---------------------------------------------------------------------------
# The pinned gap: a semantically wrong store record
# ---------------------------------------------------------------------------


def _forge_wrong_recipe(store_path: str, query, genuine: QueryResult) -> None:
    """Overwrite the query's replay record with a checksum-valid forgery
    claiming the query is already minimal (the genuine certificate is
    kept, so only the recipe lies)."""
    store = PersistentStore(store_path)
    store.put_minimization(
        fingerprint(query),
        genuine.certificate.closure_digest,
        query.copy(),
        [],
        genuine.certificate,
    )
    store.close()


def test_wrong_store_record_served_without_certification(tmp_path):
    """The gap itself: checksums protect bytes, not meaning. A forged
    replay record passes every storage-level check and an uncertified
    session serves the wrong answer from it."""
    store_path = str(tmp_path / "cache.sqlite")
    query = parse_xpath(REDUNDANT)
    with Session(MinimizeOptions(certify=True, store_path=store_path)) as session:
        genuine = session.minimize(query)
    assert genuine.eliminated, "fixture query must have a redundant node"
    _forge_wrong_recipe(store_path, query, genuine)

    with Session(MinimizeOptions(store_path=store_path)) as session:
        served = session.minimize(parse_xpath(REDUNDANT))
    assert served.cache_hit
    # The wrong answer escapes: this is exactly what certification exists
    # to prevent.
    assert to_sexpr(served.pattern) != to_sexpr(genuine.pattern)


def test_wrong_store_record_quarantined_under_certification(tmp_path):
    """Regression for the gap above: under ``certify=True`` the forged
    record is detected (recipe/certificate cross-binding), quarantined,
    and the request transparently recomputes the correct answer."""
    store_path = str(tmp_path / "cache.sqlite")
    query = parse_xpath(REDUNDANT)
    with Session(MinimizeOptions(certify=True, store_path=store_path)) as session:
        genuine = session.minimize(query)
    _forge_wrong_recipe(store_path, query, genuine)

    with Session(
        MinimizeOptions(certify=True, store_path=store_path)
    ) as session:
        served = session.minimize(parse_xpath(REDUNDANT))
        counters = session.counters()

    # Byte-identical to the cold answer — the forgery never surfaced.
    assert to_sexpr(served.pattern) == to_sexpr(genuine.pattern)
    assert served.eliminated == genuine.eliminated
    assert counters["audit_failures"] == 1
    assert counters["quarantined_records"] == 1
    assert counters["recomputed_after_quarantine"] == 1
    assert counters["certified"] >= 1

    # The store self-healed: the recompute overwrote the forged row.
    store = PersistentStore(store_path)
    record = store.get_minimization(
        fingerprint(query), genuine.certificate.closure_digest
    )
    store.close()
    assert record is not None
    assert record[1] == list(genuine.eliminated)


def test_uncertified_store_record_recomputed_not_quarantined(tmp_path):
    """A record *without* a certificate is merely unproven: certified
    sessions refuse to serve it (counted separately) but do not treat it
    as corruption."""
    store_path = str(tmp_path / "cache.sqlite")
    query = parse_xpath(REDUNDANT)
    with Session(MinimizeOptions(certify=True, store_path=store_path)) as session:
        genuine = session.minimize(query)
    store = PersistentStore(store_path)
    store.put_minimization(
        fingerprint(query),
        genuine.certificate.closure_digest,
        query.copy(),
        [],
        None,
    )
    store.close()

    with Session(
        MinimizeOptions(certify=True, store_path=store_path)
    ) as session:
        served = session.minimize(parse_xpath(REDUNDANT))
        counters = session.counters()
    assert to_sexpr(served.pattern) == to_sexpr(genuine.pattern)
    assert counters["uncertified_cache_skips"] == 1
    assert counters.get("audit_failures", 0) == 0
    assert counters.get("quarantined_records", 0) == 0


# ---------------------------------------------------------------------------
# Session certification API
# ---------------------------------------------------------------------------


def test_session_check_certificate():
    with Session(MinimizeOptions(certify=True)) as session:
        result = session.minimize(parse_xpath(REDUNDANT))
        verdict = session.check_certificate(result)
        assert verdict
        assert verdict.ok


def test_session_check_certificate_requires_certificate():
    with Session() as session:
        result = session.minimize(parse_xpath(REDUNDANT))
        assert result.certificate is None
        with pytest.raises(ValueError, match="no certificate"):
            session.check_certificate(result)


def test_audit_result_verifies_certified_answer():
    with Session(MinimizeOptions(certify=True)) as session:
        result = session.minimize(parse_xpath(REDUNDANT))
        assert session.audit_result(result) is True
        counters = session.counters()
    assert counters["audited"] == 1
    assert counters.get("audit_failures", 0) == 0


def test_audit_result_recomputes_uncertified_answer():
    with Session() as session:
        result = session.minimize(parse_xpath(REDUNDANT))
        assert session.audit_result(result) is True
        assert session.counters()["audited"] == 1


def test_audit_result_quarantines_wrong_answer():
    """The sampling auditor's failure path: a served answer that does
    not match the cold recompute is quarantined from every cache."""
    with Session() as session:
        result = session.minimize(parse_xpath(REDUNDANT))
        wrong = QueryResult(
            pattern=result.input_pattern.copy(),  # un-minimized: wrong
            input_pattern=result.input_pattern,
            eliminated=[],
            fingerprint=result.fingerprint,
        )
        assert session.audit_result(wrong) is False
        counters = session.counters()
        assert counters["audit_failures"] == 1
        assert counters["quarantined_records"] == 1
        # The quarantined fingerprint recomputes cold (and correctly).
        again = session.minimize(parse_xpath(REDUNDANT))
        assert again.cache_hit is False
        assert to_sexpr(again.pattern) == to_sexpr(result.pattern)


# ---------------------------------------------------------------------------
# Fast-path equivalence auditing
# ---------------------------------------------------------------------------


def _isomorphic_pair():
    base = random_query(9, seed=31)
    return base, isomorphic_shuffle(base, rng=random.Random(5))


def test_fast_path_equivalence_audited_under_certify():
    q1, q2 = _isomorphic_pair()
    with Session(MinimizeOptions(certify=True)) as session:
        assert session.equivalent(q1, q2) is True
        counters = session.counters()
    assert counters["equivalent_fast_path_audited"] == 1
    assert counters["equivalent_fast_path_uncertified"] == 0


def test_fast_path_equivalence_sampled_by_audit_rate():
    q1, q2 = _isomorphic_pair()
    with Session(MinimizeOptions(audit_rate=1)) as session:
        assert session.equivalent(q1, q2) is True
        counters = session.counters()
    assert counters["equivalent_fast_path_audited"] == 1
    assert counters["equivalent_fast_path_uncertified"] == 0


def test_fast_path_equivalence_counted_when_unaudited():
    q1, q2 = _isomorphic_pair()
    with Session(MinimizeOptions(audit_rate=0)) as session:
        assert session.equivalent(q1, q2) is True
        counters = session.counters()
    assert counters["equivalent_fast_path_uncertified"] == 1
    assert counters.get("equivalent_fast_path_audited", 0) == 0


# ---------------------------------------------------------------------------
# Oracle-table checking and store-load auditing
# ---------------------------------------------------------------------------


def test_check_oracle_table_accepts_genuine_table():
    source = parse_xpath(REDUNDANT)
    target = parse_xpath("a[b]/c")
    table = mapping_targets(source, target)
    assert check_oracle_table(source, target, table)


def test_check_oracle_table_rejects_inflated_table():
    source = parse_xpath(REDUNDANT)
    target = parse_xpath("a[b]/c")
    table = mapping_targets(source, target)
    table[source.root.id] = {n.id for n in target.nodes()}
    assert not check_oracle_table(source, target, table)


def _oracle_key(source, target):
    source_keys, target_keys = subtree_keys(source), subtree_keys(target)
    return (
        _digest(source_keys[source.root.id]),
        _digest(target_keys[target.root.id]),
    )


def test_tampered_oracle_row_quarantined_on_audited_load(tmp_path):
    source = parse_xpath(REDUNDANT)
    target = parse_xpath("a[b]/c")
    table = mapping_targets(source, target)
    path = str(tmp_path / "oracle.sqlite")

    store = PersistentStore(path)
    cache = ContainmentOracleCache(store=store)
    cache.lookup(source, target)  # miss arms the key hand-off
    cache.store(source, target, table)
    store.close()

    # Tamper: same key, valid checksum, wrong (but well-formed) table.
    bad = {v: set(ts) for v, ts in table.items()}
    bad[source.root.id] = {n.id for n in target.nodes()}
    key = _oracle_key(source, target)
    store = PersistentStore(path)
    store.put_oracle(key[0], key[1], source.copy(), target.copy(), bad)
    store.close()

    # An unaudited cache serves the poisoned table (the gap) ...
    store = PersistentStore(path)
    plain = ContainmentOracleCache(store=store)
    served = plain.lookup(source, target)
    store.close()
    assert served is not None
    assert served[source.root.id] == bad[source.root.id]

    # ... the audited cache refuses it, counts it, and quarantines it.
    store = PersistentStore(path)
    audited = ContainmentOracleCache(store=store, audit_store_loads=True)
    assert audited.lookup(source, target) is None
    assert audited.stats.store_audit_failures == 1
    assert store.stats.quarantined == 1
    store.close()

    # Quarantine deleted the row: later loads miss instead of re-serving.
    store = PersistentStore(path)
    later = ContainmentOracleCache(store=store, audit_store_loads=True)
    assert later.lookup(source, target) is None
    assert later.stats.store_audit_failures == 0
    store.close()


# ---------------------------------------------------------------------------
# Differential sweep (the full 400-workload sweep runs in bench_certify)
# ---------------------------------------------------------------------------


def test_differential_sweep_certify_is_transparent():
    """``certify=True`` changes nothing about the answers — it only adds
    proofs, all of which verify."""
    queries, constraints = batch_workload(
        40, kind="mixed", distinct=10, size=12, seed=11
    )
    with Session(MinimizeOptions(), constraints=constraints) as plain:
        baseline = plain.minimize_many(queries)
    with Session(MinimizeOptions(certify=True), constraints=constraints) as session:
        certified = session.minimize_many(queries)
        for base, result in zip(baseline, certified):
            assert to_sexpr(base.pattern) == to_sexpr(result.pattern)
            assert base.eliminated == result.eliminated
            assert result.certificate is not None
            assert session.check_certificate(result).ok
