"""Property tests for structural fingerprints (``repro.core.fingerprint``).

The batch backend's memoization is sound only if the fingerprint is a
*perfect* structural hash: isomorphic patterns (same shape up to sibling
order and node-id renaming) must collide, and colliding patterns must be
isomorphic. Both directions are pinned here, plus the validity of the
witness mapping ``isomorphism`` that the replay path consumes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TreePattern
from repro.core.edges import EdgeKind
from repro.core.fingerprint import are_isomorphic, fingerprint, isomorphism, subtree_keys
from repro.workloads import isomorphic_shuffle

TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 10) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


class TestFingerprintCollides:
    """Isomorphic-by-construction patterns must collide."""

    @given(patterns(), st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=150, deadline=None)
    def test_shuffle_preserves_fingerprint(self, pattern, seed):
        twin = isomorphic_shuffle(pattern, seed=seed)
        assert fingerprint(twin) == fingerprint(pattern)
        assert are_isomorphic(pattern, twin)

    @given(patterns(), st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=100, deadline=None)
    def test_shuffle_is_idempotent_on_fingerprint(self, pattern, seed):
        once = isomorphic_shuffle(pattern, seed=seed)
        twice = isomorphic_shuffle(once, seed=seed + 1)
        assert fingerprint(twice) == fingerprint(pattern)


class TestFingerprintSeparates:
    """Fingerprint equality must imply isomorphism (no false merges)."""

    @given(patterns(), patterns())
    @settings(max_examples=200, deadline=None)
    def test_equality_iff_isomorphic(self, a, b):
        assert (fingerprint(a) == fingerprint(b)) == are_isomorphic(a, b)

    def test_edge_kind_matters(self):
        child = TreePattern("a", root_is_output=True)
        child.add_child(child.root, "b", EdgeKind.CHILD)
        desc = TreePattern("a", root_is_output=True)
        desc.add_child(desc.root, "b", EdgeKind.DESCENDANT)
        assert fingerprint(child) != fingerprint(desc)

    def test_output_position_matters(self):
        marked_root = TreePattern("a", root_is_output=True)
        marked_root.add_child(marked_root.root, "b", EdgeKind.CHILD)
        marked_leaf = TreePattern("a")
        marked_leaf.add_child(marked_leaf.root, "b", EdgeKind.CHILD, is_output=True)
        assert fingerprint(marked_root) != fingerprint(marked_leaf)

    def test_type_rename_matters(self):
        a = TreePattern("a", root_is_output=True)
        b = TreePattern("b", root_is_output=True)
        assert fingerprint(a) != fingerprint(b)


class TestIsomorphismWitness:
    """The mapping the replay path consumes must be a real isomorphism."""

    @given(patterns(), st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=150, deadline=None)
    def test_mapping_is_structure_preserving(self, pattern, seed):
        twin = isomorphic_shuffle(pattern, seed=seed)
        mapping = isomorphism(pattern, twin)
        assert mapping is not None
        assert sorted(mapping) == sorted(n.id for n in pattern.nodes())
        assert sorted(mapping.values()) == sorted(n.id for n in twin.nodes())
        for node in pattern.nodes():
            image = twin.node(mapping[node.id])
            assert image.type == node.type
            assert image.is_output == node.is_output
            if not node.is_root:
                assert image.edge is node.edge
                assert mapping[node.parent.id] == image.parent.id

    @given(patterns(), patterns())
    @settings(max_examples=100, deadline=None)
    def test_mapping_exists_iff_isomorphic(self, a, b):
        assert (isomorphism(a, b) is not None) == are_isomorphic(a, b)


class TestSubtreeKeys:
    def test_root_key_agrees_with_canonical_key(self):
        pattern = TreePattern("a", root_is_output=True)
        b = pattern.add_child(pattern.root, "b", EdgeKind.DESCENDANT)
        pattern.add_child(b, "c", EdgeKind.CHILD)
        assert subtree_keys(pattern)[pattern.root.id] == pattern.canonical_key()

    @given(patterns())
    @settings(max_examples=100, deadline=None)
    def test_every_node_keyed(self, pattern):
        keys = subtree_keys(pattern)
        assert sorted(keys) == sorted(n.id for n in pattern.nodes())

    def test_fingerprint_is_stable_hex(self):
        pattern = TreePattern("a", root_is_output=True)
        fp = fingerprint(pattern)
        assert fp == fingerprint(pattern)
        assert len(fp) == 64 and int(fp, 16) >= 0
