"""Tests for the structural-join (twig) evaluation engine."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TreePattern
from repro.core.edges import EdgeKind
from repro.data import build_tree
from repro.data.generate import random_tree
from repro.matching import DataIndex, EmbeddingEngine, TwigJoinEngine
from repro.matching.structural import (
    ancestors_with_descendant_in,
    descendants_with_ancestor_in,
)


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


def sample_tree():
    return build_tree(
        ("Library", [
            ("Book", [("Title", [], "T1"), ("Author", [("LastName", [], "L1")])]),
            ("Book", [("Title", [], "T2")]),
            ("Shelf", [("Book", [("Title", [], "T3")])]),
        ])
    )


class TestStackJoins:
    def test_ancestor_side(self):
        tree = sample_tree()
        index = DataIndex(tree)
        books = index.nodes_of_type("Book")
        titles = index.nodes_of_type("Title")
        hits = ancestors_with_descendant_in(books, titles, index)
        assert hits == {b.id for b in books}
        # LastName appears only under the first book.
        hits = ancestors_with_descendant_in(books, index.nodes_of_type("LastName"), index)
        assert hits == {books[0].id}

    def test_ancestor_side_is_proper(self):
        tree = build_tree(("a", [("a", [("a", [])])]))
        index = DataIndex(tree)
        nodes = index.nodes_of_type("a")
        hits = ancestors_with_descendant_in(nodes, nodes, index)
        # The deepest 'a' has no proper 'a' descendant.
        deepest = max(nodes, key=lambda n: n.depth)
        assert deepest.id not in hits
        assert len(hits) == 2

    def test_descendant_side(self):
        tree = sample_tree()
        index = DataIndex(tree)
        books = index.nodes_of_type("Book")
        shelf = index.nodes_of_type("Shelf")
        hits = descendants_with_ancestor_in(books, shelf, index)
        shelf_book = shelf[0].children[0]
        assert hits == {shelf_book.id}

    def test_descendant_side_is_proper(self):
        tree = build_tree(("a", [("a", [])]))
        index = DataIndex(tree)
        nodes = index.nodes_of_type("a")
        hits = descendants_with_ancestor_in(nodes, nodes, index)
        assert hits == {tree.root.children[0].id}

    def test_empty_inputs(self):
        tree = sample_tree()
        index = DataIndex(tree)
        assert ancestors_with_descendant_in([], [], index) == set()
        assert descendants_with_ancestor_in([], index.nodes_of_type("Book"), index) == set()


class TestTwigJoinEngine:
    def test_matches_dp_engine_on_known_query(self):
        tree = sample_tree()
        pattern = q(("Book*", [("/", "Title"), ("//", "LastName")]))
        assert (
            TwigJoinEngine(pattern, tree).answer_set()
            == EmbeddingEngine(pattern, tree).answer_set()
        )

    def test_exists(self):
        tree = sample_tree()
        assert TwigJoinEngine(q(("Shelf", [("//", "Title*")])), tree).exists()
        assert not TwigJoinEngine(q(("Shelf", [("/", "Title*")])), tree).exists()

    def test_c_edge_requires_direct_child(self):
        tree = sample_tree()
        direct = TwigJoinEngine(q(("Library", [("/", "Book*")])), tree).answer_set()
        assert len(direct) == 2

    def test_single_node_pattern(self):
        tree = sample_tree()
        engine = TwigJoinEngine(q("Book"), tree)
        assert len(engine.answer_set()) == 3


TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 6) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@settings(max_examples=120, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=80))
def test_twig_join_agrees_with_dp_engine(pattern, seed):
    """The two engines implement the same semantics with different
    algorithmics; they must agree on every (pattern, database) pair."""
    db = random_tree(TYPES, size=30, seed=seed)
    assert (
        TwigJoinEngine(pattern, db).answer_set()
        == EmbeddingEngine(pattern, db).answer_set()
    )


@settings(max_examples=60, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=80))
def test_twig_join_feasible_agrees(pattern, seed):
    db = random_tree(TYPES, size=25, seed=seed)
    assert TwigJoinEngine(pattern, db).feasible() == EmbeddingEngine(pattern, db).feasible()
