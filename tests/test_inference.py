"""Tests for schema-to-constraint inference (Section 2.2, Figure 1)."""

from __future__ import annotations

from repro.constraints.inference import infer_constraints
from repro.schema import parse_schema

FIGURE1 = """
# Figure 1(a): every Book has a Title child, Authors 1..5, chapters.
element Book { Title Author+ Chapter* }
element Author { LastName }
element Chapter { Section* }
"""


class TestInference:
    def test_required_particles_become_child_ics(self):
        repo = infer_constraints(parse_schema(FIGURE1), close=False)
        assert repo.has_required_child("Book", "Title")
        assert repo.has_required_child("Book", "Author")
        assert repo.has_required_child("Author", "LastName")

    def test_optional_particles_do_not(self):
        repo = infer_constraints(parse_schema(FIGURE1), close=False)
        assert not repo.has_required_child("Book", "Chapter")
        assert not repo.has_required_child("Chapter", "Section")

    def test_paper_composition_example(self):
        # "every Book element must have a LastName descendant, since every
        # Author must have a LastName child"
        repo = infer_constraints(parse_schema(FIGURE1))
        assert repo.has_required_descendant("Book", "LastName")

    def test_close_flag(self):
        open_repo = infer_constraints(parse_schema(FIGURE1), close=False)
        assert not open_repo.is_closed
        assert not open_repo.has_required_descendant("Book", "LastName")
        closed = infer_constraints(parse_schema(FIGURE1))
        assert closed.is_closed

    def test_type_declarations_become_co_occurrences(self):
        schema = parse_schema("type Employee : Person")
        repo = infer_constraints(schema)
        assert repo.has_co_occurrence("Employee", "Person")

    def test_co_occurrence_transfers_through_closure(self):
        schema = parse_schema(
            """
            element Person { Name }
            type Employee : Person
            """
        )
        repo = infer_constraints(schema)
        assert repo.has_required_child("Employee", "Name")

    def test_empty_schema(self):
        repo = infer_constraints(parse_schema(""))
        assert len(repo) == 0
