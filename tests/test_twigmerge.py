"""Tests for the path-decomposition twig merge engine."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TreePattern
from repro.core.edges import EdgeKind
from repro.data import build_tree
from repro.data.generate import random_tree
from repro.matching import EmbeddingEngine
from repro.matching.twigmerge import TwigMergeEngine, root_to_leaf_paths


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


def sample_tree():
    return build_tree(
        ("Library", [
            ("Book", [("Title", [], "T1"), ("Author", [("LastName", [], "L1")])]),
            ("Book", [("Title", [], "T2")]),
        ])
    )


class TestPathDecomposition:
    def test_single_node(self):
        paths = root_to_leaf_paths(q("a"))
        assert len(paths) == 1 and len(paths[0]) == 1

    def test_twig_paths(self):
        pattern = q(("a", [("/", ("b*", [("//", "c"), ("/", "d")])), ("//", "e")]))
        paths = root_to_leaf_paths(pattern)
        assert [[n.type for n in p] for p in paths] == [
            ["a", "b", "c"],
            ["a", "b", "d"],
            ["a", "e"],
        ]


class TestTwigMerge:
    def test_branching_query(self):
        tree = sample_tree()
        pattern = q(("Book*", [("/", "Title"), ("//", "LastName")]))
        engine = TwigMergeEngine(pattern, tree)
        reference = EmbeddingEngine(pattern, tree)
        assert engine.answer_set() == reference.answer_set()
        assert engine.count_embeddings() == reference.count_embeddings()

    def test_no_match(self):
        tree = sample_tree()
        engine = TwigMergeEngine(q(("Book*", [("/", "Publisher")])), tree)
        assert not engine.exists()
        assert engine.answer_set() == set()

    def test_embeddings_are_complete_mappings(self):
        tree = sample_tree()
        pattern = q(("Library", [("/", ("Book*", [("/", "Title")])), ("//", "LastName")]))
        for embedding in TwigMergeEngine(pattern, tree).embeddings():
            assert set(embedding) == {n.id for n in pattern.nodes()}

    def test_shared_branch_nodes_consistent(self):
        tree = sample_tree()
        pattern = q(("Book*", [("/", "Title"), ("/", "Author")]))
        for embedding in TwigMergeEngine(pattern, tree).embeddings():
            book = embedding[pattern.output_node.id]
            for v in pattern.nodes():
                if v.parent is not None and v.parent.is_output:
                    assert embedding[v.id].parent is book


TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 6) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@settings(max_examples=100, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=60))
def test_twig_merge_agrees_with_dp_engine(pattern, seed):
    db = random_tree(TYPES, size=20, seed=seed)
    merge = TwigMergeEngine(pattern, db)
    reference = EmbeddingEngine(pattern, db)
    assert merge.answer_set() == reference.answer_set()
    assert merge.count_embeddings() == reference.count_embeddings()
