"""Chaos suite: the full stack under deterministic fault injection.

Every test drives the TCP service (and the resilient clients) under a
:class:`~repro.resilience.faults.FaultPlan` and holds it to the same
contract as the fault-free differential tests: **responses are
byte-identical to the serial ``minimize`` loop** — the minimal-query
uniqueness theorem (SIGMOD 2001) makes that a perfect oracle — with
zero requests lost, duplicated, or misrouted, whatever crashes, stalls,
truncations, or corruption happen along the way.

Marked ``chaos`` (run with ``pytest -m chaos``); CI gives the marker
its own job with a hard timeout.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import MinimizeOptions, Session
from repro.core.pipeline import minimize
from repro.errors import DeadlineExceededError
from repro.parsing.serializer import to_xpath
from repro.parsing.xpath import parse_xpath
from repro.resilience import (
    AsyncServiceClient,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServiceClient,
)
from repro.service import MinimizationService
from repro.service.protocol import serve_tcp
from repro.service.service import _Request
from repro.workloads import chaos_workload

pytestmark = pytest.mark.chaos

#: One deterministic workload shared by the whole suite.
QUERIES, CONSTRAINTS = chaos_workload(10, seed=1)

#: Fast client retry settings — chaos runs retry a lot; never sleep long.
FAST_RETRY = RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.1)


def serial_expected() -> list[tuple[str, list]]:
    """The serial-loop oracle: (minimized xpath, eliminated pairs)."""
    out = []
    for query in QUERIES:
        result = minimize(parse_xpath(query), CONSTRAINTS)
        eliminated = []
        if result.cdm is not None:
            eliminated.extend([i, t] for i, t, _ in result.cdm.eliminated)
        if result.acim is not None:
            eliminated.extend([i, t] for i, t in result.acim.eliminated)
        out.append((to_xpath(result.pattern), eliminated))
    return out


EXPECTED = serial_expected()


def assert_identical(results: list[dict]) -> None:
    """Responses must match the serial loop: byte-identical minimized
    queries, same eliminated node set (the memoized replay path may
    order eliminations differently than serial cdm+acim)."""
    assert len(results) == len(EXPECTED)
    for response, (minimized, eliminated) in zip(results, EXPECTED):
        assert response["minimized"] == minimized
        got = sorted(tuple(pair) for pair in response["eliminated"])
        assert got == sorted(tuple(pair) for pair in eliminated)


async def drive_tcp(
    plan,
    *,
    jobs: int = 1,
    watchdog=None,
    max_batch_size: int = 4,
    sequential: bool = False,
):
    """Serve the shared workload over TCP under ``plan``; returns
    ``(results, counters, fault_events, client_stats)``."""
    options = MinimizeOptions(jobs=jobs, fault_plan=plan, watchdog=watchdog)
    service = MinimizationService(
        options,
        constraints=CONSTRAINTS,
        max_batch_size=max_batch_size,
        max_wait=0.005,
    )
    stop = asyncio.Event()
    bound: dict = {}
    async with service:
        server = asyncio.ensure_future(
            serve_tcp(
                service, "127.0.0.1", 0, stop=stop,
                on_bound=lambda p: bound.update(port=p),
            )
        )
        while "port" not in bound:
            await asyncio.sleep(0.005)
        client = AsyncServiceClient(
            "127.0.0.1", bound["port"], retry=FAST_RETRY, timeout=30.0, seed=7
        )
        try:
            if sequential:
                results = [await client.minimize(q) for q in QUERIES]
            else:
                results = list(
                    await asyncio.gather(*(client.minimize(q) for q in QUERIES))
                )
        finally:
            await client.aclose()
        counters = service.counters()
        events = service.fault_events()
        stop.set()
        await server
    return results, counters, events, client.stats


class TestFaultMatrix:
    def test_no_faults_baseline(self):
        results, counters, events, _ = asyncio.run(drive_tcp(None))
        assert_identical(results)
        assert counters["faults_injected"] == 0 and events == []

    def test_slow_batch(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="batch.run", kind="slow", every=1, delay=0.01),)
        )
        results, counters, events, _ = asyncio.run(drive_tcp(plan))
        assert_identical(results)
        assert counters["faults_injected"] == counters["batches"] > 0
        assert all(e[0] == "batch.run" for e in events)

    def test_queue_stall(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="batcher.flush", kind="stall", every=2, delay=0.02),)
        )
        results, counters, _, _ = asyncio.run(drive_tcp(plan))
        assert_identical(results)
        assert counters["faults_injected"] >= 1

    def test_protocol_garbage(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="protocol.send", kind="garbage", every=2),)
        )
        results, counters, _, client_stats = asyncio.run(drive_tcp(plan))
        assert_identical(results)
        assert counters["faults_injected"] >= 1
        assert client_stats.garbage_lines >= 1
        assert client_stats.retries == 0  # garbage is skipped, not retried

    def test_protocol_truncate(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="protocol.send", kind="truncate", at=(2,)),)
        )
        results, counters, _, client_stats = asyncio.run(drive_tcp(plan))
        assert_identical(results)
        assert counters["faults_injected"] == 1
        assert client_stats.retries >= 1
        assert counters["client_retries"] >= 1  # the server saw the resend

    def test_protocol_broken_pipe(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="protocol.send", kind="broken_pipe", at=(2,)),)
        )
        results, counters, _, client_stats = asyncio.run(drive_tcp(plan))
        assert_identical(results)
        assert client_stats.retries >= 1 and client_stats.reconnects >= 1

    def test_pickle_failure(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="executor.pickle", kind="fail", every=2),)
        )
        results, counters, _, _ = asyncio.run(drive_tcp(plan, jobs=2))
        assert_identical(results)
        assert counters["pickle_fallbacks"] >= 1

    def test_worker_crash_mid_chunk(self):
        plan = FaultPlan(
            specs=(FaultSpec(point="worker.chunk", kind="crash", at=(1,)),)
        )
        results, counters, _, _ = asyncio.run(drive_tcp(plan, jobs=2))
        assert_identical(results)
        assert counters["faults_injected"] >= 1
        assert counters["chunks_retried"] >= 1  # only lost chunks re-ran

    def test_hung_worker_watchdog(self):
        plan = FaultPlan(
            # A deterministic hang: a "slow" fault far beyond the watchdog.
            specs=(FaultSpec(point="worker.chunk", kind="slow", at=(1,), delay=30.0),)
        )
        results, counters, _, _ = asyncio.run(
            drive_tcp(plan, jobs=2, watchdog=0.5)
        )
        assert_identical(results)
        assert counters["watchdog_kills"] >= 1


class TestDeadlines:
    def test_expired_deadline_shed_before_any_work(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.submit(parse_xpath(QUERIES[0]), deadline=0)
                return service.stats

        stats = asyncio.run(scenario())
        assert stats.sheds == 1
        assert stats.batches == 0 and stats.submitted == 0  # no work ran

    def test_deadline_expiring_in_queue_sheds_at_batch_assembly(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                # White-box: a request whose deadline lapsed while queued
                # (the batcher was stalled) must be shed by _run_batch
                # without reaching the backend.
                future = asyncio.get_running_loop().create_future()
                request = _Request(
                    parse_xpath(QUERIES[0]),
                    future,
                    time.perf_counter() - 1.0,
                    time.perf_counter() - 0.5,
                )
                await service._run_batch([request])
                return service.stats, future

        stats, future = asyncio.run(scenario())
        assert stats.sheds == 1 and stats.batches == 0
        assert isinstance(future.exception(), DeadlineExceededError)

    def test_deadline_travels_through_protocol(self):
        async def scenario():
            stall = FaultPlan(
                specs=(FaultSpec(point="batcher.flush", kind="stall", every=1, delay=0.2),)
            )
            options = MinimizeOptions(fault_plan=stall)
            service = MinimizationService(
                options, constraints=CONSTRAINTS, max_batch_size=1, max_wait=0.0
            )
            stop = asyncio.Event()
            bound: dict = {}
            async with service:
                server = asyncio.ensure_future(
                    serve_tcp(
                        service, "127.0.0.1", 0, stop=stop,
                        on_bound=lambda p: bound.update(port=p),
                    )
                )
                while "port" not in bound:
                    await asyncio.sleep(0.005)
                client = AsyncServiceClient(
                    "127.0.0.1", bound["port"], retry=FAST_RETRY, timeout=30.0
                )
                try:
                    with pytest.raises(DeadlineExceededError):
                        await client.minimize(QUERIES[0], deadline=-1)
                    ok = await client.minimize(QUERIES[1])
                finally:
                    await client.aclose()
                counters = service.counters()
                stop.set()
                await server
            return ok, counters

        ok, counters = asyncio.run(scenario())
        assert ok["minimized"] == EXPECTED[1][0]
        assert counters["sheds"] == 1


class TestReplayDeterminism:
    """The same seed must replay the same fault sequence — in-process,
    over TCP, and across independent runs. No wall-clock randomness."""

    SEED = 5

    def test_tcp_replays_identically(self):
        plan = FaultPlan.seeded(self.SEED)
        first = asyncio.run(drive_tcp(plan, max_batch_size=1, sequential=True))
        second = asyncio.run(drive_tcp(plan, max_batch_size=1, sequential=True))
        assert_identical(first[0])
        assert_identical(second[0])
        assert first[2] == second[2]  # the full fired-event sequences
        assert first[2], "seeded plan fired nothing — window never reached"

    def test_in_process_matches_tcp_on_shared_points(self):
        plan = FaultPlan.seeded(self.SEED)
        # In-process: the serial Session loop arms batch.run once per
        # query, exactly like the TCP service at max_batch_size=1.
        with Session(
            MinimizeOptions(fault_plan=plan), constraints=CONSTRAINTS
        ) as session:
            for query in QUERIES:
                result = session.minimize(parse_xpath(query))
                assert result is not None
            in_process = [
                [e.point, e.kind, e.hit] for e in session.injector.events()
            ]
        _, _, tcp_events, _ = asyncio.run(
            drive_tcp(plan, max_batch_size=1, sequential=True)
        )
        shared = [e for e in tcp_events if e[0] == "batch.run"]
        assert shared == [e for e in in_process if e[0] == "batch.run"]
        assert shared, "batch.run never fired — determinism check is vacuous"

    def test_injector_replay_is_pure_counting(self):
        plan = FaultPlan.seeded(self.SEED)
        arms = ["batch.run", "batcher.flush", "batch.run", "protocol.send"] * 4
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for point in arms:
                injector.draw(point)
            runs.append(injector.events())
        assert runs[0] == runs[1]


class TestReproServeSubprocess:
    """``repro-serve --fault-plan`` end-to-end: the console entry point
    replays plans deterministically and drains gracefully on SIGTERM."""

    def _spawn(self, *extra_args: str) -> tuple[subprocess.Popen, int]:
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        constraint_text = "; ".join(str(c) for c in CONSTRAINTS)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service.cli",
                "--tcp", "127.0.0.1:0",
                "-c", constraint_text,
                *extra_args,
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.monotonic() + 30
        port = None
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
                break
            if proc.poll() is not None:
                break
        if port is None:
            proc.kill()
            raise AssertionError("repro-serve never announced its port")
        return proc, port

    def _run_workload(self, port: int) -> tuple[list[dict], list]:
        with ServiceClient(
            "127.0.0.1", port, retry=FAST_RETRY, timeout=30.0, seed=7
        ) as client:
            results = [client.minimize(q) for q in QUERIES]
            events = client.server_faults()
        return results, events

    def test_fault_plan_replays_across_server_processes(self):
        seed_arg = f"seed:{TestReplayDeterminism.SEED}"
        runs = []
        for _ in range(2):
            proc, port = self._spawn(
                "--fault-plan", seed_arg, "--max-batch-size", "1"
            )
            try:
                results, events = self._run_workload(port)
            finally:
                proc.send_signal(signal.SIGTERM)
                proc.wait(timeout=30)
            assert proc.returncode == 0  # graceful drain exits clean
            assert_identical(results)
            runs.append(events)
        assert runs[0] == runs[1]
        assert runs[0], "seeded plan fired nothing through repro-serve"

    def test_sigterm_mid_stream_drains_in_flight_requests(self):
        proc, port = self._spawn("--max-batch-size", "4", "--max-wait", "0.05")
        try:
            import socket as socket_mod

            sock = socket_mod.create_connection(("127.0.0.1", port), timeout=30)
            sock.settimeout(30)
            reader = sock.makefile("rb")
            n = 6
            payload = b"".join(
                json.dumps({"op": "minimize", "query": q, "id": i}).encode() + b"\n"
                for i, q in enumerate(QUERIES[:n])
            )
            sock.sendall(payload)
            # SIGTERM lands while those requests are queued/batching.
            proc.send_signal(signal.SIGTERM)
            responses = []
            while len(responses) < n:
                line = reader.readline()
                if not line:
                    break
                responses.append(json.loads(line))
            sock.close()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0
        # Every accepted request got exactly one response, none lost.
        assert sorted(r["id"] for r in responses) == list(range(n))
        for response in responses:
            assert response["ok"], response
            assert response["result"]["minimized"] == EXPECTED[response["id"]][0]
