"""Tests for evaluator engine selection and forest handling."""

from __future__ import annotations

import pytest

from repro import TreePattern
from repro.data import Forest, build_tree
from repro.errors import EvaluationError
from repro.matching.evaluator import (
    ENGINES,
    agree_on,
    count_embeddings,
    evaluate,
    evaluate_nodes,
    matches,
)


def forest() -> Forest:
    return Forest(
        [
            build_tree(("a", [("b", [])])),
            build_tree(("a", [("b", [("b", [])]), ("c", [])])),
        ]
    )


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_path_query_all_engines(self, engine):
        q = TreePattern.build(("a", [("//", "b*")]))
        assert evaluate(q, forest(), engine=engine) == {(0, 1), (1, 1), (1, 2)}

    @pytest.mark.parametrize("engine", ["dp", "twig", "twigmerge"])
    def test_twig_query_branching_engines(self, engine):
        q = TreePattern.build(("a*", [("/", "b"), ("/", "c")]))
        assert evaluate(q, forest(), engine=engine) == {(1, 0)}

    def test_pathstack_rejects_twigs(self):
        q = TreePattern.build(("a*", [("/", "b"), ("/", "c")]))
        with pytest.raises(EvaluationError):
            evaluate(q, forest(), engine="pathstack")

    def test_unknown_engine(self):
        q = TreePattern.build("a")
        with pytest.raises(EvaluationError):
            evaluate(q, forest(), engine="nope")

    def test_default_is_dp(self):
        q = TreePattern.build(("a", [("//", "b*")]))
        assert evaluate(q, forest()) == evaluate(q, forest(), engine="dp")


class TestEngineThreading:
    """Every evaluator entry point accepts ``engine=`` and agrees with dp."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_evaluate_nodes_all_engines(self, engine):
        q = TreePattern.build(("a", [("//", "b*")]))
        db = forest()
        baseline = [id(n) for n in evaluate_nodes(q, db)]
        assert [id(n) for n in evaluate_nodes(q, db, engine=engine)] == baseline
        assert len(baseline) == len(evaluate(q, db))

    @pytest.mark.parametrize("engine", ["dp", "twigmerge"])
    def test_count_embeddings_counting_engines(self, engine):
        q = TreePattern.build(("a", [("//", "b*")]))
        assert count_embeddings(q, forest(), engine=engine) == 3

    @pytest.mark.parametrize("engine", ["twig", "pathstack"])
    def test_count_embeddings_rejects_noncounting_engines(self, engine):
        q = TreePattern.build(("a", [("//", "b*")]))
        with pytest.raises(EvaluationError, match="cannot count"):
            count_embeddings(q, forest(), engine=engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_all_engines(self, engine):
        hit = TreePattern.build(("a", [("//", "b*")]))
        miss = TreePattern.build(("a", [("/", "zzz*")]))
        assert matches(hit, forest(), engine=engine)
        assert not matches(miss, forest(), engine=engine)

    @pytest.mark.parametrize("engine", ["dp", "twig", "twigmerge"])
    def test_agree_on_all_engines(self, engine):
        q1 = TreePattern.build(("a*", [("/", "b"), ("/", "c")]))
        q2 = TreePattern.build(("a*", [("/", "c")]))
        q3 = TreePattern.build(("a*", [("/", "b")]))
        assert not agree_on(q1, q3, forest(), engine=engine)
        assert agree_on(q1, q2, forest()) == agree_on(q1, q2, forest(), engine=engine)


class TestGeneratorDatabases:
    """A database passed as a one-shot generator must not be silently
    exhausted between the two evaluations inside ``agree_on``."""

    def trees(self):
        yield build_tree(("a", [("b", [])]))
        yield build_tree(("a", [("b", [("b", [])]), ("c", [])]))

    def test_agree_on_generator(self):
        q1 = TreePattern.build(("a", [("//", "b*")]))
        q2 = TreePattern.build(("a", [("//", "b*")]))
        assert agree_on(q1, q2, self.trees())

    def test_agree_on_generator_detects_disagreement(self):
        q1 = TreePattern.build(("a", [("//", "b*")]))
        q2 = TreePattern.build(("a", [("/", "c*")]))
        assert not agree_on(q1, q2, self.trees())

    def test_evaluate_generator(self):
        q = TreePattern.build(("a", [("//", "b*")]))
        assert evaluate(q, self.trees()) == {(0, 1), (1, 1), (1, 2)}
