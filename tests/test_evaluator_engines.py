"""Tests for evaluator engine selection and forest handling."""

from __future__ import annotations

import pytest

from repro import TreePattern
from repro.data import Forest, build_tree
from repro.errors import EvaluationError
from repro.matching.evaluator import ENGINES, evaluate


def forest() -> Forest:
    return Forest(
        [
            build_tree(("a", [("b", [])])),
            build_tree(("a", [("b", [("b", [])]), ("c", [])])),
        ]
    )


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_path_query_all_engines(self, engine):
        q = TreePattern.build(("a", [("//", "b*")]))
        assert evaluate(q, forest(), engine=engine) == {(0, 1), (1, 1), (1, 2)}

    @pytest.mark.parametrize("engine", ["dp", "twig", "twigmerge"])
    def test_twig_query_branching_engines(self, engine):
        q = TreePattern.build(("a*", [("/", "b"), ("/", "c")]))
        assert evaluate(q, forest(), engine=engine) == {(1, 0)}

    def test_pathstack_rejects_twigs(self):
        q = TreePattern.build(("a*", [("/", "b"), ("/", "c")]))
        with pytest.raises(EvaluationError):
            evaluate(q, forest(), engine="pathstack")

    def test_unknown_engine(self):
        q = TreePattern.build("a")
        with pytest.raises(EvaluationError):
            evaluate(q, forest(), engine="nope")

    def test_default_is_dp(self):
        q = TreePattern.build(("a", [("//", "b*")]))
        assert evaluate(q, forest()) == evaluate(q, forest(), engine="dp")
