"""Tests for LDIF import/export."""

from __future__ import annotations

import pytest

from repro.data import Directory, parse_ldif, to_ldif
from repro.errors import ParseError

SAMPLE = """# corporate white pages
dn: o=Corp
objectClass: Organization

dn: ou=Research,o=Corp
objectClass: Dept

dn: cn=Ada,ou=Research,o=Corp
objectClass: Employee
objectClass: Person
mail: ada@corp
"""


class TestParse:
    def test_structure(self):
        d = parse_ldif(SAMPLE)
        assert len(d) == 3
        ada = d.lookup("cn=Ada,ou=Research,o=Corp")
        assert ada.types == {"Employee", "Person"}
        assert ada.attributes["mail"] == "ada@corp"

    def test_comments_ignored(self):
        d = parse_ldif("# only\n# comments\ndn: o=X\nobjectClass: Org\n")
        assert len(d) == 1

    def test_continuation_lines(self):
        d = parse_ldif(
            "dn: o=X\nobjectClass: Org\ndescription: a very\n  long value\n"
        )
        assert d.root_entry.attributes["description"] == "a very long value"

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "objectClass: X\n",  # no dn first
            "dn: o=X\n",  # no objectClass
            "dn: cn=A,o=Missing\nobjectClass: X\n",  # orphan
            "dn: o=A\nobjectClass: X\n\ndn: o=B\nobjectClass: X\n",  # two roots
            "dn: o=A\nobjectClass X\n",  # missing colon
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_ldif(text)

    def test_child_before_root(self):
        with pytest.raises(ParseError):
            parse_ldif("dn: cn=A,o=X\nobjectClass: P\n\ndn: o=X\nobjectClass: O\n")


class TestRoundTrip:
    def test_parse_serialize_fixpoint(self):
        d = parse_ldif(SAMPLE)
        once = to_ldif(d)
        assert to_ldif(parse_ldif(once)) == once

    def test_serialize_programmatic_directory(self):
        d = Directory("Organization", rdn="o=Corp")
        dept = d.add(d.root_entry, "Dept", rdn="ou=Sales")
        d.add(dept, ["Employee", "Person"], rdn="cn=Bob", attributes={"mail": "b@c"})
        text = to_ldif(d)
        assert "dn: cn=Bob,ou=Sales,o=Corp" in text
        assert "objectClass: Person" in text
        back = parse_ldif(text)
        assert len(back) == 3
