"""The paper's running examples, end to end (Sections 1, 3.3, 5.2).

Every minimization claim the narrative makes about Figure 2 is asserted
here, in the paper's own order.
"""

from __future__ import annotations

from conftest import assert_semantically_equal_under

from repro import (
    acim_minimize,
    amr,
    cim_minimize,
    equivalent,
    equivalent_under,
    is_minimal,
    minimize,
)
from repro.core.reduction import reduce_pattern
from repro.workloads.paper_queries import (
    ARTICLE_TITLE,
    FIGURE2_FG_CONSTRAINTS,
    FIGURE5_CONSTRAINTS,
    SECTION_PARAGRAPH,
    figure2_a,
    figure2_b,
    figure2_c,
    figure2_d,
    figure2_e,
    figure2_f,
    figure2_g,
    figure2_h,
    figure2_i,
    figure2_j,
    figure5_query,
)


class TestIntroductionExamples:
    def test_book_title_publisher(self):
        """'find the title and author of books that have a publisher' +
        'every book has a publisher' = drop the publisher branch."""
        from repro.parsing import parse_xpath
        from repro.constraints import required_child

        query = parse_xpath("Book*[Title][Author][Publisher]")
        result = minimize(query, [required_child("Book", "Publisher")])
        assert sorted(result.pattern.node_types()) == ["Author", "Book", "Title"]


class TestFigure2Chain:
    def test_a_minimal_without_ics(self):
        assert is_minimal(figure2_a())

    def test_a_to_b_via_article_title(self):
        reduced = reduce_pattern(figure2_a(), [ARTICLE_TITLE])
        assert reduced.isomorphic(figure2_b())

    def test_b_not_minimal_pure_cim_gives_c(self):
        assert not is_minimal(figure2_b())
        assert cim_minimize(figure2_b()).pattern.isomorphic(figure2_c())

    def test_c_minimal_without_ics(self):
        assert is_minimal(figure2_c())

    def test_b_to_d_via_section_paragraph_locally(self):
        reduced = reduce_pattern(figure2_b(), [SECTION_PARAGRAPH])
        assert reduced.isomorphic(figure2_d())

    def test_d_resists_reduction_and_cim(self):
        # "(d) cannot be simplified further, either by applying this IC,
        # or by using constraint independent means."
        assert reduce_pattern(figure2_d(), [SECTION_PARAGRAPH]).size == figure2_d().size
        assert is_minimal(figure2_d())

    def test_d_equivalent_to_e_under_ic(self):
        assert equivalent_under(figure2_d(), figure2_e(), [SECTION_PARAGRAPH])
        assert not equivalent(figure2_d(), figure2_e())

    def test_d_to_e_needs_augmentation(self):
        result = acim_minimize(figure2_d(), [SECTION_PARAGRAPH])
        assert result.pattern.isomorphic(figure2_e())

    def test_c_to_e_via_ic(self):
        result = acim_minimize(figure2_c(), [SECTION_PARAGRAPH])
        assert result.pattern.isomorphic(figure2_e())

    def test_full_chain_from_a(self):
        result = minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH])
        assert result.pattern.isomorphic(figure2_e())

    def test_order_of_applying_steps_does_not_matter_for_pipeline(self):
        # Section 3.3 warns the r/m application ORDER matters for naive
        # strategies; the pipeline must be immune.
        via_amr = amr(figure2_b(), [SECTION_PARAGRAPH])
        via_acim = acim_minimize(figure2_b(), [SECTION_PARAGRAPH]).pattern
        assert via_amr.isomorphic(figure2_e())
        assert via_acim.isomorphic(figure2_e())

    def test_semantic_spot_check(self):
        assert_semantically_equal_under(
            figure2_a(), figure2_e(), [ARTICLE_TITLE, SECTION_PARAGRAPH], seeds=range(3)
        )


class TestFigure2FG:
    def test_f_to_g(self):
        result = minimize(figure2_f(), FIGURE2_FG_CONSTRAINTS)
        assert result.pattern.isomorphic(figure2_g())

    def test_g_minimal_under_ics(self):
        result = minimize(figure2_g(), FIGURE2_FG_CONSTRAINTS)
        assert result.pattern.isomorphic(figure2_g())

    def test_f_not_reducible_without_ics(self):
        assert is_minimal(figure2_f())


class TestFigure2HI:
    def test_h_to_i_no_ics(self):
        assert cim_minimize(figure2_h()).pattern.isomorphic(figure2_i())

    def test_i_minimal(self):
        assert is_minimal(figure2_i())

    def test_h_equivalent_to_i(self):
        assert equivalent(figure2_h(), figure2_i())


class TestFigure2J:
    def test_j_is_augmented_b(self):
        j = figure2_j()
        assert j.size == figure2_b().size + 1
        temps = [n for n in j.nodes() if n.temporary]
        assert len(temps) == 1
        assert temps[0].type == "Paragraph"
        assert temps[0].parent.type == "Section"

    def test_j_equivalent_to_b_under_ic(self):
        assert equivalent_under(figure2_j(), figure2_b(), [SECTION_PARAGRAPH])


class TestFigure5:
    def test_reduces_to_root_only(self):
        result = minimize(figure5_query(), FIGURE5_CONSTRAINTS)
        assert result.pattern.size == 1
        assert result.pattern.root.type == "t1"

    def test_cdm_alone_suffices_here(self):
        from repro import cdm_minimize

        result = cdm_minimize(figure5_query(), FIGURE5_CONSTRAINTS)
        assert result.pattern.size == 1
