"""Tests for the constraint model and the hash-indexed repository."""

from __future__ import annotations

import pytest

from repro.constraints import (
    ConstraintKind,
    ConstraintRepository,
    IntegrityConstraint,
    co_occurrence,
    coerce_repository,
    parse_constraint,
    parse_constraints,
    required_child,
    required_descendant,
)
from repro.errors import ConstraintError


class TestModel:
    def test_constructors_and_kinds(self):
        assert required_child("a", "b").is_required_child
        assert required_descendant("a", "b").is_required_descendant
        assert co_occurrence("a", "b").is_co_occurrence

    def test_notation_round_trip(self):
        for c in (required_child("A", "B"), required_descendant("A", "B"), co_occurrence("A", "B")):
            assert parse_constraint(c.notation()) == c

    def test_hashable_and_equal(self):
        assert required_child("a", "b") == required_child("a", "b")
        assert len({required_child("a", "b"), required_child("a", "b")}) == 1

    def test_ordering_is_total_and_stable(self):
        cs = [co_occurrence("b", "a"), required_child("a", "b"), required_descendant("a", "b")]
        ordered = sorted(cs)
        assert ordered[0].source == "a"
        assert sorted(ordered) == ordered

    def test_empty_types_rejected(self):
        with pytest.raises(ConstraintError):
            IntegrityConstraint(ConstraintKind.REQUIRED_CHILD, "", "b")

    def test_trivial_co_occurrence_rejected(self):
        with pytest.raises(ConstraintError):
            co_occurrence("a", "a")

    def test_reflexive_child_allowed(self):
        # t -> t is syntactically fine (unsatisfiable in finite trees, but
        # the model layer does not judge satisfiability).
        assert required_child("a", "a").source == "a"


class TestParsing:
    def test_parse_each_operator(self):
        assert parse_constraint("A -> B") == required_child("A", "B")
        assert parse_constraint("A ->> B") == required_descendant("A", "B")
        assert parse_constraint("A ~ B") == co_occurrence("A", "B")

    def test_whitespace_optional(self):
        assert parse_constraint("A->B") == required_child("A", "B")
        assert parse_constraint("  A  ->>   B ") == required_descendant("A", "B")

    def test_arrow_arrow_not_confused_with_arrow(self):
        c = parse_constraint("A ->> B")
        assert c.kind is ConstraintKind.REQUIRED_DESCENDANT

    def test_parse_errors(self):
        with pytest.raises(ConstraintError):
            parse_constraint("A B")
        with pytest.raises(ConstraintError):
            parse_constraint("-> B")
        with pytest.raises(ConstraintError):
            parse_constraint("A ->")

    def test_parse_block_with_comments(self):
        block = """
        # header comment
        Book -> Title
        Book ->> LastName   # trailing comment

        Employee ~ Person; Dept ->> Manager
        """
        cs = parse_constraints(block)
        assert len(cs) == 4
        assert co_occurrence("Employee", "Person") in cs

    def test_parse_empty_block(self):
        assert parse_constraints("   \n # nothing \n") == []


class TestRepository:
    def make(self) -> ConstraintRepository:
        return ConstraintRepository(
            [
                required_child("Book", "Title"),
                required_child("Book", "Author"),
                required_descendant("Book", "LastName"),
                co_occurrence("Employee", "Person"),
            ]
        )

    def test_point_lookups(self):
        repo = self.make()
        assert repo.has_required_child("Book", "Title")
        assert not repo.has_required_child("Book", "LastName")
        assert repo.has_required_descendant("Book", "LastName")
        assert repo.has_co_occurrence("Employee", "Person")
        assert not repo.has_co_occurrence("Person", "Employee")  # directional

    def test_target_sets(self):
        repo = self.make()
        assert repo.required_children_of("Book") == {"Title", "Author"}
        assert repo.required_descendants_of("Book") == {"LastName"}
        assert repo.co_occurring_with("Employee") == {"Person"}
        assert repo.required_children_of("Nope") == frozenset()

    def test_constraints_from(self):
        repo = self.make()
        assert len(repo.constraints_from("Book")) == 3

    def test_membership_and_len(self):
        repo = self.make()
        assert required_child("Book", "Title") in repo
        assert required_child("Book", "X") not in repo
        assert len(repo) == 4

    def test_duplicates_collapse(self):
        repo = self.make()
        assert not repo.add(required_child("Book", "Title"))
        assert len(repo) == 4
        assert repo.add(required_child("Book", "ISBN"))

    def test_update_counts_new(self):
        repo = self.make()
        added = repo.update([required_child("Book", "Title"), required_child("X", "Y")])
        assert added == 1

    def test_relevant_to(self):
        repo = self.make()
        sub = repo.relevant_to({"Book"})
        assert len(sub) == 3
        assert not sub.has_co_occurrence("Employee", "Person")

    def test_types(self):
        repo = self.make()
        assert repo.types() == {"Book", "Title", "Author", "LastName", "Employee", "Person"}

    def test_iteration_deterministic(self):
        repo = self.make()
        assert list(repo) == list(repo)

    def test_copy_independent(self):
        repo = self.make()
        clone = repo.copy()
        clone.add(required_child("Z", "W"))
        assert len(repo) == 4 and len(clone) == 5
        assert repo == self.make()

    def test_closed_repository_rejects_direct_mutation(self):
        from repro.errors import RepositoryClosedError

        repo = self.make()
        repo._mark_closed()
        assert repo.is_closed
        with pytest.raises(RepositoryClosedError):
            repo.add(required_child("Z", "W"))
        with pytest.raises(RepositoryClosedError):
            repo.update([required_child("Z", "W")])
        with pytest.raises(RepositoryClosedError):
            repo.discard(required_child("Book", "Title"))
        assert repo.is_closed and len(repo) == 4

    def test_begin_update_is_the_closed_mutation_path(self):
        repo = self.make()
        repo._mark_closed()
        with repo.begin_update() as update:
            update.add(required_child("Z", "W"))
        assert repo.is_closed
        assert required_child("Z", "W") in repo
        assert update.new_digest == repo.digest()
        assert update.new_digest != update.old_digest

    def test_notation_deterministic(self):
        repo = self.make()
        assert repo.notation() == repo.copy().notation()


class TestCoerce:
    def test_none_gives_empty(self):
        assert len(coerce_repository(None)) == 0

    def test_list_wrapped(self):
        repo = coerce_repository([required_child("a", "b")])
        assert repo.has_required_child("a", "b")

    def test_repository_passes_through(self):
        repo = ConstraintRepository()
        assert coerce_repository(repo) is repo
