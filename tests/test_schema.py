"""Tests for the schema language, model, and validation."""

from __future__ import annotations

import pytest

from repro.data import build_tree
from repro.errors import SchemaError
from repro.schema import Occurs, Particle, Schema, conforms, parse_schema, schema_violations

TEXT = """
# publishing schema
element Book {
    Title
    Author+
    Chapter*
    Publisher?
}
element Author { LastName FirstName? }
type Employee : Person, Principal
"""


class TestOccurs:
    def test_suffix_round_trip(self):
        for suffix in ("", "?", "*", "+"):
            assert Occurs.from_suffix(suffix).suffix == suffix

    def test_required(self):
        assert Occurs.from_suffix("").required
        assert Occurs.from_suffix("+").required
        assert not Occurs.from_suffix("?").required
        assert not Occurs.from_suffix("*").required

    def test_custom_bounds_notation(self):
        assert Occurs(1, 5).suffix == "{1,5}"

    def test_invalid_bounds(self):
        with pytest.raises(SchemaError):
            Occurs(-1, None)
        with pytest.raises(SchemaError):
            Occurs(3, 2)

    def test_unknown_suffix(self):
        with pytest.raises(SchemaError):
            Occurs.from_suffix("!")


class TestParsing:
    def test_elements_and_particles(self):
        schema = parse_schema(TEXT)
        book = schema.element("Book")
        assert book is not None
        assert [p.notation() for p in book.particles] == [
            "Title", "Author+", "Chapter*", "Publisher?",
        ]
        assert book.required_children() == ["Title", "Author"]
        assert book.particle_for("Chapter").occurs.max_occurs is None
        assert book.particle_for("Nope") is None

    def test_co_occurrence_list(self):
        schema = parse_schema(TEXT)
        assert ("Employee", "Person") in schema.co_occurrences
        assert ("Employee", "Principal") in schema.co_occurrences

    def test_types_collects_everything(self):
        schema = parse_schema(TEXT)
        assert {"Book", "Title", "LastName", "Person"} <= schema.types()

    def test_notation_reparses(self):
        schema = parse_schema(TEXT)
        again = parse_schema(schema.notation())
        assert again.notation() == schema.notation()

    @pytest.mark.parametrize(
        "text",
        [
            "element Book Title }",
            "element Book {",
            "nonsense Book {}",
            "type A :",
            "element A { B B }",
            "element A {} element A {}",
            "type A : A",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(SchemaError):
            parse_schema(text)


class TestValidation:
    SCHEMA = parse_schema(TEXT)

    def test_conforming_tree(self):
        tree = build_tree(
            ("Book", [("Title", [], "t"), ("Author", [("LastName", [], "l")])])
        )
        assert conforms(tree, self.SCHEMA)

    def test_missing_required_child(self):
        tree = build_tree(("Book", [("Author", [("LastName", [], "l")])]))
        found = schema_violations(tree, self.SCHEMA)
        assert any("Title" in v.message for v in found)

    def test_over_max(self):
        tree = build_tree(
            ("Book", [("Title", [], "a"), ("Title", [], "b"), ("Author", [("LastName", [], "l")])])
        )
        found = schema_violations(tree, self.SCHEMA)
        assert any("at most" in v.message for v in found)

    def test_undeclared_child_rejected(self):
        tree = build_tree(
            ("Book", [("Title", [], "t"), ("Author", [("LastName", [], "l")]), ("Blurb", [])])
        )
        found = schema_violations(tree, self.SCHEMA)
        assert any("not allowed" in v.message for v in found)

    def test_undeclared_element_is_open(self):
        tree = build_tree(("Junk", [("Whatever", [])]))
        assert conforms(tree, self.SCHEMA)

    def test_co_occurrence_validated(self):
        bad = build_tree(("Org", [("Employee", [])]))
        found = schema_violations(bad, self.SCHEMA)
        assert len(found) == 2  # missing Person and Principal

    def test_declare_api(self):
        schema = Schema()
        schema.declare_element("X", [Particle("Y")])
        schema.declare_co_occurrence("A", "B")
        schema.declare_co_occurrence("A", "B")  # idempotent
        assert len(schema) == 1
        assert schema.co_occurrences == (("A", "B"),)
