"""Tests for the XPath-subset parser and serializer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import TreePattern
from repro.core.edges import EdgeKind
from repro.errors import OutputNodeError, ParseError
from repro.parsing import parse_xpath, to_xpath


class TestParser:
    def test_simple_path(self):
        q = parse_xpath("a/b//c")
        assert [n.type for n in q.nodes()] == ["a", "b", "c"]
        edges = [n.edge for n in q.nodes() if n.edge]
        assert edges == [EdgeKind.CHILD, EdgeKind.DESCENDANT]

    def test_leading_slash_optional(self):
        assert parse_xpath("/a/b").isomorphic(parse_xpath("a/b"))

    def test_default_output_is_last_step(self):
        assert parse_xpath("a/b//c").output_node.type == "c"

    def test_explicit_star(self):
        q = parse_xpath("a/b*/c")
        assert q.output_node.type == "b"

    def test_predicates_child_by_default(self):
        q = parse_xpath("a[b]")
        b = q.find("b")[0]
        assert b.edge is EdgeKind.CHILD

    def test_predicate_axes(self):
        q = parse_xpath("a[//b][.//c][/d][./e]")
        edges = {n.type: n.edge for n in q.nodes() if n.edge}
        assert edges["b"] is EdgeKind.DESCENDANT
        assert edges["c"] is EdgeKind.DESCENDANT
        assert edges["d"] is EdgeKind.CHILD
        assert edges["e"] is EdgeKind.CHILD

    def test_nested_predicates(self):
        q = parse_xpath("a[b[c//d]/e]")
        assert q.size == 5
        d = q.find("d")[0]
        assert [n.type for n in d.path_from_root()] == ["a", "b", "c", "d"]

    def test_predicate_path_with_steps(self):
        q = parse_xpath("a[b/c]")
        c = q.find("c")[0]
        assert c.parent.type == "b"

    def test_star_inside_predicate(self):
        q = parse_xpath("a[b*]/c")
        assert q.output_node.type == "b"

    def test_type_name_characters(self):
        q = parse_xpath("ns.type-1/_x")
        assert q.root.type == "ns.type-1"

    @pytest.mark.parametrize(
        "text",
        ["", "/", "a[", "a[]", "a[b", "a/", "a//", "a]b", "a b", "1a", "a[*]"],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ParseError):
            parse_xpath(text)

    def test_double_star_rejected(self):
        with pytest.raises(OutputNodeError):
            parse_xpath("a*/b*")


class TestSerializer:
    def test_spine_is_root_to_output(self):
        q = parse_xpath("a/b*[c]//d")
        text = to_xpath(q)
        assert text.startswith("a/b")
        assert parse_xpath(text).isomorphic(q)

    def test_star_omitted_when_last(self):
        q = parse_xpath("a/b")
        assert to_xpath(q) == "a/b"

    def test_branches_become_predicates(self):
        q = TreePattern.build(("a*", [("/", "b"), ("//", ("c", [("/", "d")]))]))
        text = to_xpath(q)
        assert parse_xpath(text).isomorphic(q)
        assert text.startswith("a")

    def test_deep_output(self):
        q = TreePattern.build(("a", [("/", ("b", [("//", ("c*", [("/", "d")]))])), ("/", "e")]))
        assert parse_xpath(to_xpath(q)).isomorphic(q)


@st.composite
def patterns(draw, max_size: int = 8) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(["a", "b", "c"])))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(["a", "b", "c"])), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@settings(max_examples=150, deadline=None)
@given(patterns())
def test_round_trip_is_isomorphic(pattern: TreePattern):
    assert parse_xpath(to_xpath(pattern)).isomorphic(pattern)
