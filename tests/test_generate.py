"""Tests for random data generation and constraint repair."""

from __future__ import annotations

import pytest

from repro.constraints import closure, co_occurrence, parse_constraints, required_child
from repro.data import build_tree, random_satisfying_tree, random_tree, repair, witness_tree
from repro.errors import ConstraintError
from repro.matching import satisfies, violations


TYPES = ["Library", "Book", "Title", "Author", "LastName"]
ICS = parse_constraints("Book -> Title; Author ->> LastName; Book ~ Item")


class TestRandomTree:
    def test_exact_size(self):
        for size in (1, 2, 17, 50):
            assert random_tree(TYPES, size=size, seed=1).size == size

    def test_fanout_respected(self):
        tree = random_tree(TYPES, size=60, max_fanout=2, seed=3)
        assert all(len(n.children) <= 2 for n in tree.nodes())

    def test_deterministic_per_seed(self):
        t1 = random_tree(TYPES, size=25, seed=9)
        t2 = random_tree(TYPES, size=25, seed=9)
        assert t1.to_ascii() == t2.to_ascii()

    def test_seed_varies_output(self):
        t1 = random_tree(TYPES, size=25, seed=1)
        t2 = random_tree(TYPES, size=25, seed=2)
        assert t1.to_ascii() != t2.to_ascii()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            random_tree([], size=5)
        with pytest.raises(ValueError):
            random_tree(TYPES, size=0)


class TestWitness:
    def test_witness_satisfies(self):
        repo = closure(ICS)
        spec = witness_tree("Book", repo)
        tree = build_tree(spec)
        assert satisfies(tree, repo)
        assert "Title" in tree.types_present()
        assert "Item" in tree.root.types  # co-occurrence applied

    def test_unsatisfiable_type_detected(self):
        repo = closure([required_child("a", "a")])
        with pytest.raises(ConstraintError):
            witness_tree("a", repo)

    def test_transitive_cycle_detected(self):
        repo = closure([required_child("a", "b"), required_child("b", "a")])
        with pytest.raises(ConstraintError):
            witness_tree("a", repo)


class TestRepair:
    def test_repair_satisfies(self):
        base = random_tree(TYPES, size=40, seed=5)
        fixed = repair(base, ICS)
        assert satisfies(fixed, ICS), violations(fixed, ICS)[:3]

    def test_repair_preserves_original_shape(self):
        base = build_tree(("Library", [("Book", [("Title", [], "x")])]))
        fixed = repair(base, ICS)
        # Only additions: every original type still present, size >= base.
        assert fixed.size >= base.size
        assert base.types_present() <= fixed.types_present()

    def test_repair_adds_co_occurrence_types(self):
        base = build_tree(("Book", [("Title", [], "x")]))
        fixed = repair(base, ICS)
        assert "Item" in fixed.root.types

    def test_repair_preserves_values(self):
        base = build_tree(("Library", [("Book", [("Title", [], "kept")])]))
        fixed = repair(base, ICS)
        assert [n.value for n in fixed.find("Title")] == ["kept"]

    def test_multi_ic_interaction(self):
        ics = parse_constraints(
            "Dept ->> Manager; Manager ~ Employee; Employee ~ Person"
        )
        base = build_tree(("Org", [("Dept", [])]))
        fixed = repair(base, ics)
        assert satisfies(fixed, ics)
        manager = fixed.find("Manager")[0]
        assert {"Employee", "Person"} <= manager.types


class TestRandomSatisfying:
    def test_satisfies_for_many_seeds(self):
        for seed in range(6):
            tree = random_satisfying_tree(TYPES, ICS, size=30, seed=seed)
            assert satisfies(tree, ICS)

    def test_empty_constraints(self):
        tree = random_satisfying_tree(TYPES, [], size=20, seed=0)
        assert tree.size == 20
