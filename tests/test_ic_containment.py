"""Tests for containment/equivalence under integrity constraints."""

from __future__ import annotations

from repro import TreePattern, equivalent, equivalent_under, is_contained_in_under
from repro.constraints import (
    closure,
    co_occurrence,
    parse_constraints,
    required_child,
    required_descendant,
)
from repro.core.ic_containment import finitely_satisfiable
from repro.workloads.paper_queries import SECTION_PARAGRAPH, figure2_d, figure2_e


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestContainmentUnder:
    def test_reduces_to_plain_containment_without_ics(self):
        q1 = q(("a", [("/", "b*"), ("//", "c")]))
        q2 = q(("a", [("/", "b*")]))
        assert is_contained_in_under(q1, q2, None)
        assert not is_contained_in_under(q2, q1, None)

    def test_required_child_closes_gap(self):
        bare = q("a")
        with_b = q(("a", [("/", "b")]))
        assert not equivalent(bare, with_b)
        assert equivalent_under(bare, with_b, [required_child("a", "b")])

    def test_required_descendant_vs_child_edges(self):
        bare = q("a")
        with_child_b = q(("a", [("/", "b")]))
        with_desc_b = q(("a", [("//", "b")]))
        ics = [required_descendant("a", "b")]
        assert equivalent_under(bare, with_desc_b, ics)
        assert not equivalent_under(bare, with_child_b, ics)

    def test_co_occurrence_containment(self):
        employees = q(("Org", [("//", "Employee*")]))
        persons = q(("Org", [("//", "Person*")]))
        # Wait: answer nodes differ in type... containment is about the
        # same answer nodes, so compare sibling-branch variants instead.
        asks_employee = q(("Org*", [("//", "Employee")]))
        asks_person = q(("Org*", [("//", "Person")]))
        ics = [co_occurrence("Employee", "Person")]
        assert is_contained_in_under(asks_employee, asks_person, ics)
        assert not is_contained_in_under(asks_person, asks_employee, ics)
        assert not equivalent_under(employees, persons, ics)

    def test_paper_d_vs_e(self):
        assert equivalent_under(figure2_d(), figure2_e(), [SECTION_PARAGRAPH])
        assert not equivalent_under(figure2_d(), figure2_e(), [])

    def test_accepts_closed_repository(self):
        repo = closure([required_child("a", "b")])
        assert equivalent_under(q("a"), q(("a", [("/", "b")])), repo)


class TestFinitelySatisfiable:
    def test_plain_sets_ok(self):
        assert finitely_satisfiable(parse_constraints("a -> b; b ->> c; a ~ d"))

    def test_direct_self_requirement(self):
        assert not finitely_satisfiable([required_child("a", "a")])

    def test_cycle_through_closure(self):
        assert not finitely_satisfiable(parse_constraints("a -> b; b -> a"))

    def test_co_occurrence_induced_cycle(self):
        # a -> b plus b ~ a: every a needs a child that IS an a.
        assert not finitely_satisfiable(parse_constraints("a -> b; b ~ a"))

    def test_empty(self):
        assert finitely_satisfiable([])
