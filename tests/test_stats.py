"""Tests for document statistics and matching-cost estimation."""

from __future__ import annotations

from repro import TreePattern, cim_minimize, minimize
from repro.constraints import parse_constraints
from repro.data import Forest, build_tree
from repro.data.generate import random_satisfying_tree
from repro.matching.stats import DocumentStatistics, estimate_cost, measured_cost


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


def library():
    return build_tree(
        ("Library", [
            ("Book", [("Title", [], "a"), ("Author", [("LastName", [], "x")])]),
            ("Book", [("Title", [], "b")]),
        ])
    )


class TestStatistics:
    def test_counts(self):
        stats = DocumentStatistics.collect(library())
        assert stats.total_nodes == 7
        assert stats.cardinality("Book") == 2
        assert stats.cardinality("Title") == 2
        assert stats.cardinality("Nope") == 0

    def test_child_pairs(self):
        stats = DocumentStatistics.collect(library())
        assert stats.child_pairs[("Library", "Book")] == 2
        assert stats.child_pairs[("Book", "Title")] == 2
        assert stats.child_pairs[("Author", "LastName")] == 1

    def test_child_selectivity(self):
        stats = DocumentStatistics.collect(library())
        assert stats.child_selectivity("Library", "Book") == 1.0
        assert stats.child_selectivity("Book", "LastName") == 0.0
        assert stats.child_selectivity("X", "Missing") == 0.0

    def test_multi_type_nodes_counted_per_type(self):
        tree = build_tree(("Org", [("Employee+Person", [])]))
        stats = DocumentStatistics.collect(tree)
        assert stats.cardinality("Employee") == 1
        assert stats.cardinality("Person") == 1
        assert stats.child_pairs[("Org", "Person")] == 1

    def test_forest_accumulates(self):
        stats = DocumentStatistics.collect(Forest([library(), library()]))
        assert stats.total_nodes == 14
        assert stats.cardinality("Book") == 4


class TestCost:
    def test_smaller_pattern_never_costs_more(self):
        stats = DocumentStatistics.collect(library())
        redundant = q(("Library", [("/", ("Book*", [("//", "Title")])), ("//", "Title")]))
        minimized = cim_minimize(redundant).pattern
        assert minimized.size < redundant.size
        assert estimate_cost(minimized, stats) <= estimate_cost(redundant, stats)

    def test_estimate_zero_for_absent_types(self):
        stats = DocumentStatistics.collect(library())
        assert estimate_cost(q("Missing"), stats) == 0.0

    def test_measured_cost_drops_with_minimization(self):
        ics = parse_constraints("Book -> Title; Author ->> LastName")
        docs = [
            random_satisfying_tree(
                ["Library", "Book", "Title", "Author", "LastName"], ics, size=120, seed=s
            )
            for s in range(2)
        ]
        redundant = q(("Library", [
            ("/", ("Book*", [("/", "Title"), ("//", ("Author", [("//", "LastName")]))])),
        ]))
        smaller = minimize(redundant, ics).pattern
        assert smaller.size < redundant.size
        assert measured_cost(smaller, docs) <= measured_cost(redundant, docs)
