"""Property-based tests for minimization under constraints.

Exercises Theorems 5.1–5.3 on random queries and random constraint sets:
ACIM preserves equivalence under the constraints (checked both with the
augmented-containment oracle and semantically on random satisfying
databases), is idempotent, agrees with the ``a·m·r`` strategy, and the
CDM pre-filter never changes the final result.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TreePattern, acim_minimize, amr, cdm_minimize, minimize
from repro.constraints import closure, co_occurrence, required_child, required_descendant
from repro.core.edges import EdgeKind
from repro.core.ic_containment import equivalent_under, finitely_satisfiable

from conftest import assert_semantically_equal_under

TYPES = ["a", "b", "c", "d"]


@st.composite
def patterns(draw, max_size: int = 8) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    pattern.validate()
    return pattern


@st.composite
def constraint_sets(draw):
    """Random, finitely-satisfiable constraint sets over TYPES.

    Child/descendant constraints only point 'forward' in the type order,
    so no type transitively requires a descendant of its own type (which
    would make databases infinite); co-occurrences may point anywhere.
    """
    out = []
    n = draw(st.integers(min_value=0, max_value=5))
    for _ in range(n):
        kind = draw(st.sampled_from(["child", "desc", "cooc"]))
        if kind == "cooc":
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            j = draw(st.integers(min_value=0, max_value=len(TYPES) - 1))
            if i != j:
                out.append(co_occurrence(TYPES[i], TYPES[j]))
        else:
            i = draw(st.integers(min_value=0, max_value=len(TYPES) - 2))
            j = draw(st.integers(min_value=i + 1, max_value=len(TYPES) - 1))
            make = required_child if kind == "child" else required_descendant
            out.append(make(TYPES[i], TYPES[j]))
    return out


def _satisfiable(ics) -> bool:
    """Filter out degenerate sets (see ``finitely_satisfiable``): under
    them the affected types are empty in every finite database, the
    augmented-containment oracle is incomplete, and equivalence holds
    only vacuously."""
    return finitely_satisfiable(ics)


@settings(max_examples=70, deadline=None)
@given(patterns(), constraint_sets())
def test_acim_equivalent_under_constraints(pattern, ics):
    if not _satisfiable(ics):
        return
    result = acim_minimize(pattern, ics)
    assert equivalent_under(result.pattern, pattern, ics)


@settings(max_examples=25, deadline=None)
@given(patterns(max_size=6), constraint_sets())
def test_acim_semantically_equivalent_on_satisfying_databases(pattern, ics):
    if not _satisfiable(ics):
        return
    result = acim_minimize(pattern, ics)
    assert_semantically_equal_under(pattern, result.pattern, ics, seeds=range(2), size=30)


@settings(max_examples=50, deadline=None)
@given(patterns(), constraint_sets())
def test_acim_idempotent(pattern, ics):
    once = acim_minimize(pattern, ics).pattern
    twice = acim_minimize(once, ics).pattern
    assert once.isomorphic(twice)


@settings(max_examples=50, deadline=None)
@given(patterns(max_size=7), constraint_sets())
def test_acim_matches_amr(pattern, ics):
    """ACIM is 'nothing but a clever implementation of a·m·r'.

    Degenerate closures (some type requiring its own type below it) are
    excluded: there the compared types are empty in every finite
    database, equivalence is vacuous, and the two implementations may
    legitimately settle on different (both correct) syntactic forms.
    """
    if not _satisfiable(ics):
        return
    assert acim_minimize(pattern, ics).pattern.isomorphic(amr(pattern, ics))


@settings(max_examples=50, deadline=None)
@given(patterns(), constraint_sets())
def test_cdm_prefilter_does_not_change_result(pattern, ics):
    """Theorem 5.3: CDM followed by ACIM yields the same unique minimum."""
    direct = acim_minimize(pattern, ics).pattern
    piped = minimize(pattern, ics, use_cdm_prefilter=True).pattern
    assert direct.isomorphic(piped)


@settings(max_examples=50, deadline=None)
@given(patterns(), constraint_sets())
def test_cdm_removals_subset_of_acim(pattern, ics):
    """CDM is incomplete but sound: it never removes a node the global
    minimizer would keep."""
    repo = closure(ics)
    cdm_removed = {node_id for node_id, _, _ in cdm_minimize(pattern, repo).eliminated}
    acim_removed = {node_id for node_id, _ in acim_minimize(pattern, repo).eliminated}
    assert cdm_removed <= acim_removed


@settings(max_examples=40, deadline=None)
@given(patterns(), constraint_sets(), st.integers(min_value=0, max_value=100))
def test_acim_order_independent(pattern, ics, seed):
    reference = acim_minimize(pattern, ics).pattern
    shuffled = acim_minimize(pattern, ics, seed=seed).pattern
    assert reference.isomorphic(shuffled)
