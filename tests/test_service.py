"""Tests for the async serving layer (``repro.service``).

The load-bearing guarantee mirrors the batch backend's: results served
through the micro-batching service are byte-identical to the serial
``minimize`` loop, whatever the concurrency, batching, timeouts, or
worker crashes along the way. The slow/crashing backends are injected
through the ``_process_batch`` seam.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import time

import pytest

from repro.api import MinimizeOptions, QueryResult
from repro.constraints.model import parse_constraints
from repro.core.pipeline import minimize
from repro.errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.parsing.sexpr import to_sexpr
from repro.parsing.xpath import parse_xpath
from repro.service import (
    MAX_LINE_BYTES,
    LatencyHistogram,
    MinimizationService,
    ServiceStats,
    handle_connection,
    handle_line,
    serve_tcp,
)
from repro.workloads import batch_workload, isomorphic_shuffle, random_query

CONSTRAINTS = parse_constraints("a -> b; b ->> c; a ~ c")


def run(coro):
    """Drive one async test body to completion."""
    return asyncio.run(coro)


def seeded_queries(n_queries: int, *, seed: int = 0, max_size: int = 8):
    """Random queries with isomorphic duplicates mixed in (the workload
    shape the fingerprint memo exists for)."""
    rng = random.Random(seed)
    queries = []
    while len(queries) < n_queries:
        base = random_query(rng.randint(1, max_size), types=["a", "b", "c"], rng=rng)
        queries.append(base)
        if rng.random() < 0.5 and len(queries) < n_queries:
            queries.append(isomorphic_shuffle(base, rng=rng))
    rng.shuffle(queries)
    return queries


class SlowService(MinimizationService):
    """Backend that sleeps before answering (timeout/backpressure tests)."""

    def __init__(self, *args, delay: float = 0.2, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay = delay

    def _process_batch(self, patterns):
        time.sleep(self.delay)
        return super()._process_batch(patterns)


class ExplodingService(MinimizationService):
    """Backend that raises (failure-propagation tests)."""

    def _process_batch(self, patterns):
        raise ReproError("backend exploded")


class TestDifferential:
    """Service == serial minimize loop, byte for byte, under concurrency."""

    def test_concurrent_stream_matches_serial(self):
        queries = seeded_queries(240, seed=17)
        expected = [to_sexpr(minimize(q, CONSTRAINTS).pattern) for q in queries]

        async def scenario():
            async with MinimizationService(
                constraints=CONSTRAINTS, max_queue=512, max_wait=0.002
            ) as service:
                results = await service.submit_many(queries)
                stats = service.stats
                assert stats.submitted == stats.completed == 240
                assert stats.mean_batch_size > 1.0, "nothing micro-batched"
                return results

        results = run(scenario())
        assert [to_sexpr(r.pattern) for r in results] == expected
        assert all(isinstance(r, QueryResult) for r in results)

    def test_many_seeds_interleaved(self):
        """Several seeded workloads in flight at once still serve each
        request its own correct answer."""

        async def scenario():
            async with MinimizationService(
                constraints=CONSTRAINTS, max_queue=512
            ) as service:
                workloads = [seeded_queries(12, seed=s) for s in range(8)]
                groups = await asyncio.gather(
                    *(service.submit_many(w) for w in workloads)
                )
                return workloads, groups

        workloads, groups = run(scenario())
        for queries, results in zip(workloads, groups):
            assert [to_sexpr(r.pattern) for r in results] == [
                to_sexpr(minimize(q, CONSTRAINTS).pattern) for q in queries
            ]

    def test_verify_mode_through_service(self):
        queries, constraints = batch_workload(
            10, kind="fig7", distinct=2, size=12, seed=3
        )

        async def scenario():
            async with MinimizationService(
                MinimizeOptions(verify=True), constraints=constraints
            ) as service:
                results = await service.submit_many(queries)
                return results, service.counters()

        results, counters = run(scenario())
        assert [to_sexpr(r.pattern) for r in results] == [
            to_sexpr(minimize(q, constraints).pattern) for q in queries
        ]
        assert counters["verified"] == 10
        # The equivalence proofs flow through the containment oracle.
        assert counters.get("oracle_cache_hits", 0) + counters.get(
            "oracle_cache_misses", 0
        ) > 0


class TestLifecycle:
    def test_submit_requires_start(self):
        async def scenario():
            service = MinimizationService(constraints=CONSTRAINTS)
            with pytest.raises(ServiceClosedError, match="not started"):
                await service.submit(parse_xpath("a/b"))

        run(scenario())

    def test_closed_service_rejects_submissions(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                pass
            with pytest.raises(ServiceClosedError, match="closed"):
                await service.submit(parse_xpath("a/b"))

        run(scenario())

    def test_graceful_drain_finishes_queued_work(self):
        """aclose() must answer everything already queued, not drop it."""

        async def scenario():
            service = SlowService(
                constraints=CONSTRAINTS, delay=0.05, max_batch_size=4, max_wait=0.5
            )
            await service.start()
            tasks = [
                asyncio.ensure_future(service.submit(parse_xpath("a/b[c][c]")))
                for _ in range(6)
            ]
            await asyncio.sleep(0)  # let them enqueue
            await service.aclose()
            return await asyncio.gather(*tasks)

        results = run(scenario())
        assert [to_sexpr(r.pattern) for r in results] == [
            to_sexpr(minimize(parse_xpath("a/b[c][c]"), CONSTRAINTS).pattern)
        ] * 6

    def test_aclose_is_idempotent(self):
        async def scenario():
            service = MinimizationService(constraints=CONSTRAINTS)
            await service.start()
            await service.aclose()
            await service.aclose()

        run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MinimizationService(max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait"):
            MinimizationService(max_wait=-1)
        with pytest.raises(ValueError, match="max_queue"):
            MinimizationService(max_queue=0)

    def test_jobs_force_persistent_pool(self):
        service = MinimizationService(MinimizeOptions(jobs=2))
        assert service.options.persistent_pool is True
        assert MinimizationService().options.persistent_pool is False


class TestTimeoutsAndCancellation:
    def test_per_request_timeout(self):
        async def scenario():
            async with SlowService(
                constraints=CONSTRAINTS, delay=0.3, max_wait=0.0
            ) as service:
                with pytest.raises(asyncio.TimeoutError):
                    await service.submit(parse_xpath("a/b[c][c]"), timeout=0.02)
                assert service.stats.timed_out == 1
                # The service keeps serving after a timeout.
                result = await service.submit(parse_xpath("a/b[c][c]"))
                return result

        result = run(scenario())
        assert to_sexpr(result.pattern) == to_sexpr(
            minimize(parse_xpath("a/b[c][c]"), CONSTRAINTS).pattern
        )

    def test_default_timeout_applies(self):
        async def scenario():
            async with SlowService(
                constraints=CONSTRAINTS, delay=0.3, default_timeout=0.02, max_wait=0.0
            ) as service:
                with pytest.raises(asyncio.TimeoutError):
                    await service.submit(parse_xpath("a/b"))

        run(scenario())

    def test_cancellation_drops_request(self):
        async def scenario():
            async with SlowService(
                constraints=CONSTRAINTS, delay=0.2, max_wait=0.0
            ) as service:
                # Occupy the batcher so the next request stays queued.
                first = asyncio.ensure_future(service.submit(parse_xpath("a/b")))
                await asyncio.sleep(0.05)
                victim = asyncio.ensure_future(service.submit(parse_xpath("a/c")))
                await asyncio.sleep(0)
                victim.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await victim
                assert service.stats.cancelled == 1
                await first  # the batch that contained the victim completes
                result = await service.submit(parse_xpath("a/b[c][c]"))
                stats = service.stats
                return result, stats

        result, stats = run(scenario())
        assert to_sexpr(result.pattern) == to_sexpr(
            minimize(parse_xpath("a/b[c][c]"), CONSTRAINTS).pattern
        )
        # The cancelled request never produced a completion.
        assert stats.completed == stats.submitted - stats.cancelled

    def test_backend_failure_propagates_to_all_waiters(self):
        async def scenario():
            async with ExplodingService(constraints=CONSTRAINTS) as service:
                tasks = [
                    asyncio.ensure_future(service.submit(parse_xpath("a/b")))
                    for _ in range(3)
                ]
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                return outcomes, service.stats.failed

        outcomes, failed = run(scenario())
        assert all(isinstance(o, ReproError) for o in outcomes)
        assert failed == 3


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self):
        async def scenario():
            async with SlowService(
                constraints=CONSTRAINTS,
                delay=0.25,
                max_batch_size=1,
                max_wait=0.0,
                max_queue=1,
            ) as service:
                # First request: picked up by the batcher (slow). Second:
                # fills the queue. Third: rejected.
                first = asyncio.ensure_future(service.submit(parse_xpath("a/b")))
                await asyncio.sleep(0.05)
                second = asyncio.ensure_future(service.submit(parse_xpath("a/c")))
                await asyncio.sleep(0)
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    await service.submit(parse_xpath("a/d"))
                assert excinfo.value.retry_after > 0
                assert isinstance(excinfo.value, ServiceError)
                assert service.stats.rejected == 1
                await asyncio.gather(first, second)

        run(scenario())


class TestCrashRecovery:
    def test_killed_pool_workers_through_service(self):
        """SIGKILLing every warm worker mid-service must not lose or
        corrupt results: the broken batch falls back to serial, the next
        one gets a fresh pool."""
        queries, constraints = batch_workload(
            8, kind="fig7", distinct=4, size=12, seed=5
        )
        more, _ = batch_workload(8, kind="fig7", distinct=4, size=12, seed=9)
        expected = [to_sexpr(minimize(q, constraints).pattern) for q in queries]
        expected_more = [to_sexpr(minimize(q, constraints).pattern) for q in more]

        async def scenario():
            async with MinimizationService(
                MinimizeOptions(jobs=2), constraints=constraints, max_wait=0.005
            ) as service:
                warm = await service.submit_many(queries)
                minimizer = next(iter(service._session._minimizers.values()))
                pool = minimizer._pool
                assert pool is not None, "persistent pool not wired through"
                executor = pool._executor
                assert executor is not None, "pool never warmed"
                for pid in list(executor._processes):
                    os.kill(pid, signal.SIGKILL)
                await asyncio.sleep(0.1)  # let the pool notice
                after = await service.submit_many(more)
                return warm, after, pool.recreations

        warm, after, recreations = run(scenario())
        assert [to_sexpr(r.pattern) for r in warm] == expected
        assert [to_sexpr(r.pattern) for r in after] == expected_more
        assert recreations >= 1


class TestStats:
    def test_latency_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.mean_seconds == 0.0 and histogram.quantile(0.5) == 0.0
        for value in (0.001, 0.002, 0.004, 0.2, 30.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.mean_seconds == pytest.approx(sum((0.001, 0.002, 0.004, 0.2, 30.0)) / 5)
        assert histogram.max_seconds == 30.0
        assert histogram.quantile(1.0) == 30.0  # +inf bucket → observed max
        assert 0.0 < histogram.quantile(0.5) <= 0.01
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        counters = histogram.counters("lat")
        assert counters["lat_count"] == 5
        assert counters["lat_le_inf"] == 5
        assert counters["lat_le_0.005"] == 3  # cumulative buckets

    def test_service_stats_counters_shape(self):
        stats = ServiceStats()
        stats.submitted = 4
        stats.batches = 2
        stats.batched_requests = 4
        counters = stats.counters()
        assert counters["submitted"] == 4
        assert counters["mean_batch_size"] == 2.0
        assert "latency_count" in counters and "queue_wait_count" in counters

    def test_flush_reasons_accounted(self):
        async def scenario():
            async with MinimizationService(
                constraints=CONSTRAINTS, max_batch_size=2, max_wait=0.01
            ) as service:
                await service.submit_many([parse_xpath("a/b")] * 4)
                await service.submit(parse_xpath("a/c"))
                stats = service.stats
                assert stats.flushes_full >= 1
                assert stats.flushes_deadline + stats.flushes_drain >= 1
                assert (
                    stats.flushes_full + stats.flushes_deadline + stats.flushes_drain
                    == stats.batches
                )

        run(scenario())


class TestProtocol:
    def test_minimize_roundtrip_and_unified_shape(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                response = await handle_line(
                    service, json.dumps({"op": "minimize", "query": "a/b[c][c]", "id": 7})
                )
                return response

        response = run(scenario())
        assert response["ok"] is True and response["id"] == 7
        result = response["result"]
        assert result["minimized"] == "a/b[c]"
        # Exactly QueryResult.to_json — the CLIs' --json shape.
        assert set(result) == set(
            QueryResult(
                pattern=parse_xpath("a"), input_pattern=parse_xpath("a")
            ).to_json()
        )

    def test_sexpr_format(self):
        async def scenario():
            async with MinimizationService() as service:  # no constraints
                return await handle_line(
                    service,
                    json.dumps(
                        {"op": "minimize", "query": "(a (/ b) (/ b))", "format": "sexpr"}
                    ),
                )

        response = run(scenario())
        assert response["ok"] and response["result"]["minimized"] == "(a* (/ b))"

    def test_ping_stats_blank_and_errors(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                ping = await handle_line(service, '{"op": "ping", "id": 1}')
                stats = await handle_line(service, '{"op": "stats"}')
                blank = await handle_line(service, "   ")
                comment = await handle_line(service, "# a comment")
                bad_json = await handle_line(service, "{nope")
                bad_type = await handle_line(service, '["not", "an", "object"]')
                bad_op = await handle_line(service, '{"op": "explode"}')
                bad_query = await handle_line(service, '{"op": "minimize"}')
                parse_fail = await handle_line(
                    service, '{"op": "minimize", "query": "///"}'
                )
                return ping, stats, blank, comment, bad_json, bad_type, bad_op, bad_query, parse_fail

        ping, stats, blank, comment, bad_json, bad_type, bad_op, bad_query, parse_fail = run(
            scenario()
        )
        assert ping == {"id": 1, "ok": True, "result": {"pong": True}}
        assert stats["ok"] and "submitted" in stats["result"]
        assert blank is None and comment is None
        for failure in (bad_json, bad_type, bad_op, bad_query, parse_fail):
            assert failure["ok"] is False and failure["error"]["message"]
        assert bad_op["error"]["type"] == "ValueError"

    def test_overload_error_carries_retry_after(self):
        async def scenario():
            async with SlowService(
                constraints=CONSTRAINTS,
                delay=0.25,
                max_batch_size=1,
                max_wait=0.0,
                max_queue=1,
            ) as service:
                first = asyncio.ensure_future(
                    handle_line(service, '{"op": "minimize", "query": "a/b"}')
                )
                await asyncio.sleep(0.05)
                second = asyncio.ensure_future(
                    handle_line(service, '{"op": "minimize", "query": "a/c"}')
                )
                await asyncio.sleep(0)
                rejected = await handle_line(
                    service, '{"op": "minimize", "query": "a/d", "id": 9}'
                )
                await asyncio.gather(first, second)
                return rejected

        rejected = run(scenario())
        assert rejected["ok"] is False and rejected["id"] == 9
        assert rejected["error"]["type"] == "ServiceOverloadedError"
        assert rejected["error"]["retry_after"] > 0

    def test_tcp_connection_roundtrip(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                server = await asyncio.start_server(
                    lambda r, w: handle_connection(service, r, w), "127.0.0.1", 0
                )
                port = server.sockets[0].getsockname()[1]
                async with server:
                    reader, writer = await asyncio.open_connection("127.0.0.1", port)
                    requests = [
                        {"op": "minimize", "query": "a/b[c][c]", "id": i}
                        for i in range(5)
                    ] + [{"op": "ping", "id": 99}]
                    for request in requests:
                        writer.write(json.dumps(request).encode() + b"\n")
                    await writer.drain()
                    writer.write_eof()
                    responses = []
                    while len(responses) < len(requests):
                        line = await asyncio.wait_for(reader.readline(), 10)
                        assert line, "connection closed early"
                        responses.append(json.loads(line))
                    writer.close()
                    return responses

        responses = run(scenario())
        by_id = {r["id"]: r for r in responses}
        assert by_id[99]["result"] == {"pong": True}
        for i in range(5):
            assert by_id[i]["ok"] and by_id[i]["result"]["minimized"] == "a/b[c]"


class TestServeCli:
    def test_parse_endpoint(self):
        from repro.service.cli import _parse_endpoint

        assert _parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert _parse_endpoint(":9000") == ("127.0.0.1", 9000)
        with pytest.raises(ValueError):
            _parse_endpoint("nope:nope")
        with pytest.raises(ValueError):
            _parse_endpoint("9000")

    def test_parser_defaults(self):
        from repro.service.cli import build_parser

        args = build_parser().parse_args([])
        assert args.tcp is None and args.jobs == 1
        assert args.max_batch_size == 16 and args.max_queue == 256


class TestProtocolHardening:
    """Malformed input must get a structured error on the same
    connection — never tear the connection (or the server) down."""

    @staticmethod
    async def _serve(service):
        """serve_tcp on an ephemeral port; returns (stop, server_task, port)."""
        stop = asyncio.Event()
        bound: dict = {}
        task = asyncio.ensure_future(
            serve_tcp(
                service, "127.0.0.1", 0, stop=stop,
                on_bound=lambda p: bound.update(port=p),
            )
        )
        while "port" not in bound:
            await asyncio.sleep(0.005)
        return stop, task, bound["port"]

    def test_oversized_line_gets_structured_error_and_connection_survives(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                stop, task, port = await self._serve(service)
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                # A single line well over the cap, never a valid request.
                writer.write(b'{"op": "minimize", "query": "' + b"a" * (MAX_LINE_BYTES + 64) + b'"}\n')
                writer.write(json.dumps({"op": "minimize", "query": "a/b[c][c]", "id": 1}).encode() + b"\n")
                await writer.drain()
                writer.write_eof()
                responses = []
                while len(responses) < 2:
                    line = await asyncio.wait_for(reader.readline(), 10)
                    assert line, "connection closed early"
                    responses.append(json.loads(line))
                writer.close()
                stop.set()
                await task
                return responses

        responses = run(scenario())
        by_ok = {bool(r["ok"]): r for r in responses}
        assert by_ok[False]["error"]["type"] == "ProtocolError"
        assert "MAX_LINE_BYTES" in by_ok[False]["error"]["message"]
        assert by_ok[True]["id"] == 1
        assert by_ok[True]["result"]["minimized"] == "a/b[c]"

    def test_garbage_bytes_roundtrip(self):
        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                stop, task, port = await self._serve(service)
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"\x00\xfe{not json)\x80\n")
                writer.write(json.dumps({"op": "minimize", "query": "a/b[c][c]", "id": 2}).encode() + b"\n")
                await writer.drain()
                writer.write_eof()
                responses = []
                while len(responses) < 2:
                    line = await asyncio.wait_for(reader.readline(), 10)
                    assert line, "connection closed early"
                    responses.append(json.loads(line))
                writer.close()
                stop.set()
                await task
                return responses

        responses = run(scenario())
        by_ok = {bool(r["ok"]): r for r in responses}
        assert by_ok[False]["error"]["type"] == "JSONDecodeError"
        assert by_ok[True]["id"] == 2
        assert by_ok[True]["result"]["minimized"] == "a/b[c]"


class TestDrainRaces:
    """Graceful drain racing per-request timeouts and cancellations:
    every future resolves exactly once, nothing hangs, counters add up."""

    def test_drain_races_timeouts_and_cancellations_under_load(self):
        async def scenario():
            service = SlowService(
                constraints=CONSTRAINTS, delay=0.08, max_batch_size=4, max_wait=0.0
            )
            await service.start()
            pattern = parse_xpath("a/b[c][c]")
            # Three populations racing the drain: requests that will time
            # out while their batch is in flight, requests we cancel, and
            # requests that should complete normally.
            doomed = [
                asyncio.ensure_future(service.submit(pattern, timeout=0.02))
                for _ in range(4)
            ]
            victims = [
                asyncio.ensure_future(service.submit(pattern)) for _ in range(4)
            ]
            survivors = [
                asyncio.ensure_future(service.submit(pattern)) for _ in range(4)
            ]
            await asyncio.sleep(0)  # let everything enqueue
            for victim in victims:
                victim.cancel()
            # Drain while the first batch is mid-flight and the timeouts
            # are about to fire.
            await service.aclose()
            outcomes = await asyncio.gather(
                *doomed, *victims, *survivors, return_exceptions=True
            )
            return outcomes, service.stats

        outcomes, stats = run(scenario())
        doomed, victims, survivors = outcomes[:4], outcomes[4:8], outcomes[8:]
        # A double resolution of any future would have raised
        # InvalidStateError inside the service; reaching here with clean
        # per-population outcomes proves exactly-once resolution.
        assert all(isinstance(o, asyncio.TimeoutError) for o in doomed)
        assert all(isinstance(o, asyncio.CancelledError) for o in victims)
        assert all(isinstance(o, QueryResult) for o in survivors)
        expected = to_sexpr(minimize(parse_xpath("a/b[c][c]"), CONSTRAINTS).pattern)
        assert all(to_sexpr(o.pattern) == expected for o in survivors)
        assert stats.submitted == 12
        assert stats.timed_out == 4 and stats.cancelled == 4
        assert stats.completed >= 4  # survivors always complete


class TestMultiClientTCP:
    """Several concurrent TCP clients against one server: every client
    gets exactly its own responses (no cross-client bleed), and a
    protocol error on one connection never disturbs the others."""

    @staticmethod
    async def _serve(service):
        stop = asyncio.Event()
        bound: dict = {}
        task = asyncio.ensure_future(
            serve_tcp(
                service, "127.0.0.1", 0, stop=stop,
                on_bound=lambda p: bound.update(port=p),
            )
        )
        while "port" not in bound:
            await asyncio.sleep(0.005)
        return stop, task, bound["port"]

    # Two shapes with distinct minimized forms, so any response routed
    # to the wrong client would also carry a visibly wrong answer.
    SHAPES = [("a/b[c][c]", "a/b[c]"), ("a/b[c]/c", "a/b/c")]

    async def _client(self, port: int, client_id: int, n_requests: int):
        """One client connection: n interleaved requests with
        client-scoped ids; returns {id: (response, expected_minimized)}."""
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        expected = {}
        for j in range(n_requests):
            query, minimized = self.SHAPES[(client_id + j) % len(self.SHAPES)]
            request_id = f"client{client_id}-req{j}"
            expected[request_id] = minimized
            writer.write(
                json.dumps(
                    {"op": "minimize", "query": query, "id": request_id}
                ).encode() + b"\n"
            )
        await writer.drain()
        writer.write_eof()
        responses = {}
        while len(responses) < n_requests:
            line = await asyncio.wait_for(reader.readline(), 30)
            assert line, f"client {client_id}: connection closed early"
            response = json.loads(line)
            responses[response["id"]] = response
        writer.close()
        return expected, responses

    def test_concurrent_clients_get_their_own_responses(self):
        n_clients, n_requests = 5, 24

        async def scenario():
            async with MinimizationService(
                constraints=CONSTRAINTS, max_queue=512, max_wait=0.002
            ) as service:
                stop, task, port = await self._serve(service)
                pairs = await asyncio.gather(
                    *(self._client(port, c, n_requests) for c in range(n_clients))
                )
                stop.set()
                await task
                return pairs, service.stats

        pairs, stats = run(scenario())
        for client_id, (expected, responses) in enumerate(pairs):
            # Exactly this client's ids came back on this connection —
            # nothing missing, nothing leaked in from another client.
            assert set(responses) == set(expected), f"client {client_id} id bleed"
            for request_id, response in responses.items():
                assert response["ok"], response
                assert response["result"]["minimized"] == expected[request_id]
        assert stats.completed == n_clients * n_requests
        # Requests from different connections shared micro-batches.
        assert stats.mean_batch_size > 1.0

    def test_protocol_error_is_isolated_to_its_connection(self):
        async def scenario():
            async with MinimizationService(
                constraints=CONSTRAINTS, max_queue=512
            ) as service:
                stop, task, port = await self._serve(service)

                async def broken_client():
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    writer.write(b"\x00\xfe{not json)\x80\n")
                    writer.write(
                        json.dumps(
                            {"op": "minimize", "query": "a/b[c][c]", "id": "ok-after"}
                        ).encode() + b"\n"
                    )
                    await writer.drain()
                    writer.write_eof()
                    responses = []
                    while len(responses) < 2:
                        line = await asyncio.wait_for(reader.readline(), 30)
                        assert line, "broken client's connection died"
                        responses.append(json.loads(line))
                    writer.close()
                    return responses

                healthy, broken = await asyncio.gather(
                    self._client(port, 9, 16), broken_client()
                )
                stop.set()
                await task
                return healthy, broken

        (expected, responses), broken = run(scenario())
        assert set(responses) == set(expected)
        assert all(
            r["ok"] and r["result"]["minimized"] == expected[i]
            for i, r in responses.items()
        )
        by_ok = {bool(r["ok"]): r for r in broken}
        assert by_ok[False]["error"]["type"] == "JSONDecodeError"
        assert by_ok[True]["id"] == "ok-after"
        assert by_ok[True]["result"]["minimized"] == "a/b[c]"
