"""Tests for information arguments and contents (Section 5.4 notation)."""

from __future__ import annotations

from repro.core.infocontent import ArgKind, InfoArg, InfoContent


def arg(kind: ArgKind, t: str, constrained: bool = False) -> InfoArg:
    return InfoArg(kind, t, constrained)


class TestInfoArg:
    def test_notation_matches_paper(self):
        assert arg(ArgKind.SELF, "t1").notation() == "t1"
        assert arg(ArgKind.SELF, "t1", True).notation() == "~t1"
        assert arg(ArgKind.ANCESTOR, "t2").notation() == "a t2"
        assert arg(ArgKind.ANCESTOR, "t2", True).notation() == "a ~t2"
        assert arg(ArgKind.PARENT, "t3").notation() == "p t3"
        assert arg(ArgKind.PARENT, "t3", True).notation() == "p ~t3"

    def test_removable_forms(self):
        assert arg(ArgKind.ANCESTOR, "t").is_removable_form
        assert arg(ArgKind.PARENT, "t").is_removable_form
        assert not arg(ArgKind.ANCESTOR, "t", True).is_removable_form
        assert not arg(ArgKind.SELF, "t").is_removable_form

    def test_ordering_self_first(self):
        args = sorted(
            [arg(ArgKind.PARENT, "a"), arg(ArgKind.SELF, "z"), arg(ArgKind.ANCESTOR, "m")]
        )
        assert [a.kind for a in args] == [ArgKind.SELF, ArgKind.ANCESTOR, ArgKind.PARENT]

    def test_hashable(self):
        assert len({arg(ArgKind.SELF, "t"), arg(ArgKind.SELF, "t")}) == 1


class TestInfoContent:
    def test_set_self_replaces(self):
        content = InfoContent()
        content.set_self("t", True)
        content.set_self("t", False)
        assert content.self_arg() == arg(ArgKind.SELF, "t")
        assert len(content) == 1

    def test_sources_only_for_removable_forms(self):
        content = InfoContent()
        content.add(arg(ArgKind.ANCESTOR, "x"), source=7)
        content.add(arg(ArgKind.ANCESTOR, "y", True), source=8)
        assert content.sources_of(arg(ArgKind.ANCESTOR, "x")) == {7}
        assert content.sources_of(arg(ArgKind.ANCESTOR, "y", True)) == set()

    def test_merge_same_argument_from_two_children(self):
        content = InfoContent()
        content.add(arg(ArgKind.PARENT, "x"), source=1)
        content.add(arg(ArgKind.PARENT, "x"), source=2)
        assert content.sources_of(arg(ArgKind.PARENT, "x")) == {1, 2}
        assert len(content) == 1

    def test_drop_source_kills_exhausted_argument(self):
        content = InfoContent()
        target = arg(ArgKind.PARENT, "x")
        content.add(target, source=1)
        content.drop_source(target, 1)
        assert not content.has(target)

    def test_is_live(self):
        content = InfoContent()
        content.set_self("t", True)
        target = arg(ArgKind.ANCESTOR, "x")
        content.add(target, source=3)
        constrained = arg(ArgKind.ANCESTOR, "y", True)
        content.add(constrained)
        assert content.is_live(content.self_arg())
        assert content.is_live(target)
        assert content.is_live(constrained)
        content.drop_source(target, 3)
        assert not content.is_live(target)

    def test_removable_args_sorted(self):
        content = InfoContent()
        content.add(arg(ArgKind.PARENT, "b"), source=1)
        content.add(arg(ArgKind.ANCESTOR, "a"), source=2)
        removable = content.removable_args()
        assert removable == [arg(ArgKind.ANCESTOR, "a"), arg(ArgKind.PARENT, "b")]

    def test_notation_orders_self_first(self):
        content = InfoContent()
        content.add(arg(ArgKind.ANCESTOR, "t5", True))
        content.set_self("t1", True)
        content.add(arg(ArgKind.PARENT, "t2", True))
        assert content.notation() == "~t1, a ~t5, p ~t2"

    def test_drop(self):
        content = InfoContent()
        constrained = arg(ArgKind.ANCESTOR, "y", True)
        content.add(constrained)
        content.drop(constrained)
        assert not content.has(constrained)
        content.drop(constrained)  # idempotent
