"""Tests for canonical databases of patterns."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import TreePattern, is_contained_in
from repro.core.canonical import (
    DUMMY_TYPE,
    canonical_answer,
    canonical_instance,
    canonical_instances,
)
from repro.core.edges import EdgeKind
from repro.matching import EmbeddingEngine, evaluate


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestConstruction:
    def test_zero_expansion_mirrors_pattern(self):
        pattern = q(("a", [("/", "b*"), ("//", "c")]))
        instance = canonical_instance(pattern, 0)
        assert instance.size == pattern.size
        assert DUMMY_TYPE not in instance.types_present()

    def test_expansion_inserts_dummies_per_d_edge(self):
        pattern = q(("a", [("/", "b*"), ("//", "c"), ("//", "d")]))
        instance = canonical_instance(pattern, 2)
        assert instance.size == pattern.size + 2 * 2
        assert len(instance.find(DUMMY_TYPE)) == 4

    def test_source_attributes(self):
        pattern = q(("a", [("//", "b*")]))
        instance = canonical_instance(pattern, 1)
        sources = {n.attributes.get("source") for n in instance.nodes()}
        assert {str(pattern.root.id), str(pattern.output_node.id), None} == sources

    def test_negative_expansion_rejected(self):
        with pytest.raises(ValueError):
            canonical_instance(q("a"), -1)

    def test_instances_batch(self):
        pattern = q(("a", [("//", "b*")]))
        assert [t.size for t in canonical_instances(pattern, (0, 1, 2))] == [2, 3, 4]

    def test_multi_types_carried(self):
        pattern = q(("a", [("/", "b*")]))
        pattern.add_extra_type(pattern.find("b")[0], "x")
        instance = canonical_instance(pattern)
        assert instance.root.children[0].types == {"b", "x"}


class TestSelfEmbedding:
    def test_pattern_matches_own_instances(self):
        pattern = q(("a", [("/", ("b*", [("//", "c")])), ("//", "d")]))
        for instance in canonical_instances(pattern, (0, 1, 3)):
            answers = EmbeddingEngine(pattern, instance).answer_set()
            assert canonical_answer(pattern, instance) <= answers


TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 6) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@settings(max_examples=80, deadline=None)
@given(patterns())
def test_identity_embedding_always_exists(pattern):
    for instance in canonical_instances(pattern, (0, 2)):
        assert canonical_answer(pattern, instance) <= EmbeddingEngine(
            pattern, instance
        ).answer_set()


@settings(max_examples=60, deadline=None)
@given(patterns(), patterns())
def test_containment_holds_on_canonical_instances(q1, q2):
    """Q1 ⊆ Q2 must hold in particular on Q1's own canonical models —
    the semantic half of the homomorphism theorem's proof."""
    if not is_contained_in(q1, q2):
        return
    for instance in canonical_instances(q1, (0, 1, 2)):
        assert evaluate(q1, instance) <= evaluate(q2, instance)
