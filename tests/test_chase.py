"""Tests for the chase and the paper's bounded augmentation (Section 5.2)."""

from __future__ import annotations

from repro import TreePattern, augment
from repro.constraints import closure, co_occurrence, required_child, required_descendant
from repro.core.chase import augmentation_targets, chase
from repro.core.edges import EdgeKind
from repro.core.ic_containment import equivalent_under


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestAugmentationTargets:
    def test_child_ic_adds_c_virtual(self):
        pattern = q(("a*", [("/", "b")]))
        virtual, extra = augmentation_targets(pattern, [required_child("a", "b")])
        assert len(virtual) == 1
        (vt,) = virtual
        assert vt.node_type == "b" and vt.edge is EdgeKind.CHILD
        assert vt.parent_id == pattern.root.id
        assert not extra

    def test_descendant_ic_adds_d_virtual(self):
        pattern = q(("a*", [("//", "b")]))
        virtual, _ = augmentation_targets(pattern, [required_descendant("a", "b")])
        assert [vt.edge for vt in virtual] == [EdgeKind.DESCENDANT]

    def test_absent_type_not_introduced(self):
        # Section 5.2: ICs whose required type does not occur in the
        # original query are not applied.
        pattern = q(("a*", [("/", "b")]))
        virtual, _ = augmentation_targets(pattern, [required_child("a", "zzz")])
        assert virtual == []

    def test_child_virtual_subsumes_descendant_virtual(self):
        # Closure adds a ->> b from a -> b; only the (stronger) c-virtual
        # should materialize per anchor/type.
        pattern = q(("a*", [("/", "b")]))
        virtual, _ = augmentation_targets(pattern, closure([required_child("a", "b")]))
        per_anchor = [(vt.parent_id, vt.node_type) for vt in virtual]
        assert len(per_anchor) == len(set(per_anchor))

    def test_co_occurrence_becomes_extra_type(self):
        pattern = q(("a*", [("/", "b"), ("/", "c")]))
        b = pattern.find("b")[0]
        virtual, extra = augmentation_targets(pattern, [co_occurrence("b", "c")])
        assert virtual == []
        assert extra == {b.id: frozenset({"c"})}

    def test_co_occurrence_absent_type_skipped(self):
        pattern = q(("a*", [("/", "b")]))
        _, extra = augmentation_targets(pattern, [co_occurrence("b", "zzz")])
        assert extra == {}

    def test_ids_unique_and_negative(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        virtual, _ = augmentation_targets(pattern, [required_child("a", "b"), required_child("b", "b")])
        ids = [vt.id for vt in virtual]
        assert len(set(ids)) == len(ids)
        assert all(i < 0 for i in ids)


class TestMaterializedAugment:
    def test_adds_temporary_nodes(self):
        pattern = q(("a*", [("/", "b")]))
        augmented = augment(pattern, [required_child("a", "b")])
        assert augmented.size == 3
        temps = [n for n in augmented.nodes() if n.temporary]
        assert len(temps) == 1 and temps[0].type == "b"

    def test_equivalent_under_the_ics(self):
        pattern = q(("Articles", [("/", ("Article*", [("//", "Section")]))]))
        ics = [required_descendant("Section", "Paragraph")]
        # Paragraph not in the query: nothing happens.
        assert augment(pattern, ics).size == pattern.size
        with_par = q(("Articles", [
            ("/", ("Article", [("//", "Paragraph")])),
            ("/", ("Article*", [("//", "Section")])),
        ]))
        augmented = augment(with_par, ics)
        assert augmented.size == with_par.size + 1
        assert equivalent_under(augmented, with_par, ics)

    def test_depth_grows_by_at_most_one(self):
        pattern = q(("a*", [("/", ("b", [("/", "c")]))]))
        ics = closure([required_child("a", "b"), required_child("b", "c"), required_child("c", "a")])
        augmented = augment(pattern, ics)
        assert augmented.depth <= pattern.depth + 1

    def test_input_not_mutated(self):
        pattern = q(("a*", [("/", "b")]))
        augment(pattern, [required_child("a", "b")])
        assert pattern.size == 2
        assert all(not n.extra_types for n in pattern.nodes())


class TestClassicalChase:
    def test_single_round_fires_each_pair_once(self):
        pattern = q(("a*", [("/", "b")]))
        chased = chase(pattern, [required_child("a", "b")], rounds=1)
        assert chased.size == 3

    def test_rounds_grow_unboundedly_on_cycles(self):
        # a -> b, b -> a: every round deepens the query — the blowup that
        # motivates augmentation.
        pattern = q("a")
        ics = [required_child("a", "b"), required_child("b", "a")]
        sizes = [chase(pattern, ics, rounds=r).size for r in (1, 2, 3)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_applies_to_added_nodes_unlike_augmentation(self):
        pattern = q("a")
        ics = [required_child("a", "b"), required_child("b", "c")]
        chased = chase(pattern, ics, rounds=2)
        assert "c" in chased.node_types()  # child of the *added* b
        virtual, _ = augmentation_targets(pattern, ics)
        assert virtual == []  # b, c absent from the original query

    def test_co_occurrence_annotates(self):
        pattern = q(("a*", [("/", "b")]))
        chased = chase(pattern, [co_occurrence("b", "x")], rounds=1)
        assert chased.find("b")[0].all_types == {"b", "x"}

    def test_terminates_without_change(self):
        pattern = q("a")
        chased = chase(pattern, [], rounds=10)
        assert chased.size == 1


class TestWitnessSubtreeExpansion:
    ICS = closure([required_child("a", "b"), required_child("b", "c"), co_occurrence("b", "c")])

    def test_virtual_targets_form_subtrees(self):
        pattern = q(("a*", [("/", ("c", [("/", "c")])), ("/", "d")]))
        virtual, _ = augmentation_targets(pattern, self.ICS)
        by_id = {vt.id: vt for vt in virtual}
        # Some target is parented on another virtual target...
        nested = [vt for vt in virtual if vt.parent_id < 0]
        assert nested
        # ...and parents always precede children in the list.
        order = {vt.id: i for i, vt in enumerate(virtual)}
        assert all(order[vt.parent_id] < order[vt.id] for vt in nested)
        # The b-witness carries its co-occurrence type c.
        b_witnesses = [vt for vt in virtual if vt.node_type == "b"]
        assert b_witnesses and all("c" in vt.extra_types for vt in b_witnesses)
        assert all(by_id[vt.parent_id].node_type == "b" or vt.parent_id >= 0 for vt in nested)

    def test_depth_capped_at_pattern_height(self):
        deep_ics = closure(
            [required_child("a", "b"), required_child("b", "c"),
             required_child("c", "d"), co_occurrence("a", "d")]
        )
        pattern = q(("a*", [("/", "b")]))  # height 1
        virtual, _ = augmentation_targets(pattern, deep_ics)
        depth = {}
        for vt in virtual:
            depth[vt.id] = 1 if vt.parent_id >= 0 else depth[vt.parent_id] + 1
        assert max(depth.values()) == 1

    def test_degenerate_closure_stays_flat(self):
        ics = closure([required_child("a", "b"), co_occurrence("b", "a")])
        pattern = q(("a*", [("/", ("b", [("/", "a")]))]))
        virtual, _ = augmentation_targets(pattern, ics)
        assert all(vt.parent_id >= 0 for vt in virtual)

    def test_materialized_augment_matches_targets(self):
        pattern = q(("a*", [("/", ("c", [("/", "c")])), ("/", "d")]))
        augmented = augment(pattern, self.ICS)
        temps = [n for n in augmented.nodes() if n.temporary]
        virtual, _ = augmentation_targets(pattern, self.ICS)
        assert len(temps) == len(virtual)
        assert any(n.temporary and n.parent is not None and n.parent.temporary for n in temps)
