"""Tests for the batch backend (``repro.batch``).

The load-bearing guarantee is *drop-in equivalence*: for every workload
and every ``jobs``/``memoize`` setting, ``BatchMinimizer`` must return
byte-for-byte the same minimal patterns, in the same order, as the naive
serial loop ``[minimize(q, ics) for q in workload]``. The differential
sweeps here pin that over hundreds of seeded workloads, with and without
constraints.
"""

from __future__ import annotations

import random

import pytest

from repro.api import MinimizeOptions
from repro.batch import (
    BatchMinimizer,
    evaluate_batch,
    minimize_batch,
    process_map,
    resolve_jobs,
)
from repro.batch.executor import default_chunksize
from repro.constraints.model import parse_constraints
from repro.core.pipeline import minimize
from repro.data.generate import random_tree
from repro.matching.evaluator import ENGINES, evaluate
from repro.parsing.sexpr import to_sexpr
from repro.workloads import batch_workload, isomorphic_shuffle, random_query
from repro.workloads.icgen import relevant_constraints

CONSTRAINTS = parse_constraints("a -> b; b ->> c; a ~ c")


def serial_loop(queries, constraints):
    return [to_sexpr(minimize(q, constraints).pattern) for q in queries]


def random_workload(seed: int, *, n_queries: int = 6, max_size: int = 8):
    """A small random workload with duplicate structures mixed in."""
    rng = random.Random(seed)
    queries = []
    while len(queries) < n_queries:
        base = random_query(
            rng.randint(1, max_size), types=["a", "b", "c"], rng=rng
        )
        queries.append(base)
        if rng.random() < 0.5 and len(queries) < n_queries:
            queries.append(isomorphic_shuffle(base, rng=rng))
    rng.shuffle(queries)
    return queries


class TestDifferential:
    """BatchMinimizer == serial loop, byte for byte."""

    @pytest.mark.parametrize("offset", range(0, 200, 25))
    def test_random_workloads_without_constraints(self, offset):
        for seed in range(offset, offset + 25):
            queries = random_workload(seed)
            assert (
                [to_sexpr(i.pattern) for i in minimize_batch(queries, [])]
                == serial_loop(queries, [])
            ), f"diverged without constraints at seed {seed}"

    @pytest.mark.parametrize("offset", range(0, 200, 25))
    def test_random_workloads_with_constraints(self, offset):
        for seed in range(offset, offset + 25):
            queries = random_workload(seed)
            constraints = list(CONSTRAINTS) + relevant_constraints(
                queries[0], 3, seed=seed
            )
            assert (
                [to_sexpr(i.pattern) for i in minimize_batch(queries, constraints)]
                == serial_loop(queries, constraints)
            ), f"diverged under constraints at seed {seed}"

    @pytest.mark.parametrize("kind", ("fig7", "fig8", "mixed"))
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_paper_workloads_all_jobs(self, kind, jobs):
        queries, constraints = batch_workload(
            20, kind=kind, distinct=4, size=16, seed=11
        )
        batch = minimize_batch(queries, constraints, MinimizeOptions(jobs=jobs))
        assert [to_sexpr(i.pattern) for i in batch] == serial_loop(
            queries, constraints
        )

    @pytest.mark.parametrize("memoize", (True, False))
    def test_memoize_toggle_is_invisible(self, memoize):
        queries, constraints = batch_workload(
            15, kind="fig8", distinct=3, size=12, seed=5
        )
        minimizer = BatchMinimizer(constraints, MinimizeOptions(memoize=memoize))
        batch = minimizer.minimize_all(queries)
        assert [to_sexpr(i.pattern) for i in batch] == serial_loop(
            queries, constraints
        )
        assert batch.stats.cache_hits == (12 if memoize else 0)

    def test_eliminated_nodes_match_serial(self):
        queries, constraints = batch_workload(
            10, kind="fig7", distinct=2, size=16, seed=3
        )
        batch = minimize_batch(queries, constraints)
        for item, query in zip(batch, queries):
            run = minimize(query, constraints)
            expected = []
            if run.cdm is not None:
                expected += [(i, t) for i, t, _rule in run.cdm.eliminated]
            if run.acim is not None:
                expected += list(run.acim.eliminated)
            assert item.eliminated == expected


class TestBatchMinimizer:
    def test_items_in_input_order_with_metadata(self):
        queries, constraints = batch_workload(
            8, kind="fig8", distinct=2, size=10, seed=1
        )
        batch = BatchMinimizer(constraints).minimize_all(queries)
        assert len(batch) == 8
        assert [item.index for item in batch] == list(range(8))
        for item, query in zip(batch, queries):
            assert item.input_size == query.size
            assert item.removed_count == query.size - item.pattern.size
        assert len(batch.patterns()) == 8

    def test_cache_persists_across_calls(self):
        queries, constraints = batch_workload(
            6, kind="fig8", distinct=2, size=10, seed=2
        )
        minimizer = BatchMinimizer(constraints)
        first = minimizer.minimize_all(queries)
        assert first.stats.cache_hits == 4
        assert minimizer.cache_size == 2
        second = minimizer.minimize_all(queries)
        assert second.stats.cache_hits == 6  # everything replays now
        assert [to_sexpr(i.pattern) for i in second] == [
            to_sexpr(i.pattern) for i in first
        ]

    def test_single_query_wrapper(self):
        query = random_workload(9)[0]
        minimizer = BatchMinimizer(CONSTRAINTS)
        assert to_sexpr(minimizer.minimize(query).pattern) == to_sexpr(
            minimize(query, CONSTRAINTS).pattern
        )

    def test_stats_accounting(self):
        queries, constraints = batch_workload(
            12, kind="mixed", distinct=3, size=12, seed=4
        )
        batch = minimize_batch(queries, constraints)
        stats = batch.stats
        assert stats.queries == 12
        assert stats.distinct == 3
        assert stats.cache_hits == 9
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.total_seconds >= 0
        counters = stats.counters()
        assert counters["queries"] == 12 and counters["hit_rate"] == 0.75
        # Engine counters aggregate over the 3 representatives only —
        # cache hits do no images-engine work.
        assert stats.engine_counters["engine_builds"] == 3

    def test_empty_workload(self):
        batch = minimize_batch([], CONSTRAINTS)
        assert len(batch) == 0 and batch.stats.queries == 0


class TestExecutor:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_default_chunksize(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(100, 4) == 100 // 16

    def test_serial_map_preserves_order(self):
        assert process_map(str, [3, 1, 2], jobs=1) == ["3", "1", "2"]

    def test_parallel_map_preserves_order(self):
        assert process_map(_square, list(range(20)), jobs=2) == [
            i * i for i in range(20)
        ]

    def test_unpicklable_payloads_fall_back_to_serial(self):
        payloads = [1, lambda: 2, 3]  # the lambda cannot cross a process
        assert process_map(_typename, payloads, jobs=2) == [
            "int",
            "function",
            "int",
        ]

    def test_crashed_worker_falls_back_to_serial(self):
        """A worker hard-crashing (BrokenProcessPool) must not lose the
        batch: process_map reruns everything serially in-process."""
        assert process_map(_crash_in_worker, list(range(8)), jobs=2) == [
            i * 10 for i in range(8)
        ]

    def test_unstartable_pool_falls_back_to_serial(self, monkeypatch):
        import concurrent.futures

        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("cannot start process pool")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _BrokenPool
        )
        assert process_map(_square, list(range(6)), jobs=2) == [
            i * i for i in range(6)
        ]

    def test_payloads_pickled_exactly_once(self):
        """The picklability probe's bytes are what the pool ships — the
        payload object graph is never serialized a second time."""
        _CountingPayload.pickles = 0
        payloads = [_CountingPayload(i) for i in range(10)]
        assert process_map(_payload_value, payloads, jobs=2) == list(range(10))
        assert _CountingPayload.pickles == len(payloads)

    def test_serial_path_never_pickles(self):
        _CountingPayload.pickles = 0
        payloads = [_CountingPayload(i) for i in range(4)]
        assert process_map(_payload_value, payloads, jobs=1) == list(range(4))
        assert _CountingPayload.pickles == 0


def _square(x):
    return x * x


def _typename(x):
    return type(x).__name__


def _crash_in_worker(x):
    import multiprocessing
    import os

    if multiprocessing.parent_process() is not None:
        os._exit(1)  # hard-kill the worker: the pool breaks, no exception
    return x * 10


class _CountingPayload:
    """Counts parent-side pickling passes via ``__reduce__``."""

    pickles = 0

    def __init__(self, value):
        self.value = value

    def __reduce__(self):
        type(self).pickles += 1
        return (_CountingPayload, (self.value,))


def _payload_value(p):
    return p.value


class TestEvaluateBatch:
    @pytest.fixture(scope="class")
    def forest(self):
        return [random_tree(["a", "b", "c"], size=25, seed=s) for s in range(4)]

    @pytest.fixture(scope="class")
    def queries(self):
        rng = random.Random(13)
        return [
            random_query(rng.randint(1, 5), types=["a", "b", "c"], rng=rng)
            for _ in range(6)
        ]

    @pytest.mark.parametrize("jobs", (1, 3))
    def test_matches_evaluate_per_query(self, forest, queries, jobs):
        answers = evaluate_batch(queries, forest, jobs=jobs)
        assert answers == [evaluate(q, forest) for q in queries]

    @pytest.mark.parametrize("engine", [e for e in ENGINES if e != "pathstack"])
    def test_all_engines_agree(self, forest, queries, engine):
        assert evaluate_batch(queries, forest, engine=engine) == evaluate_batch(
            queries, forest
        )

    def test_pathstack_rejects_branching_queries(self, forest):
        branching = random_query(6, types=["a", "b"], max_fanout=3, seed=0)
        while all(len(n.children) <= 1 for n in branching.nodes()):
            branching = random_query(8, types=["a", "b"], max_fanout=4, seed=1)
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError, match="linear"):
            evaluate_batch([branching], forest, engine="pathstack")

    def test_unknown_engine_fails_fast(self, forest, queries):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            evaluate_batch(queries, forest, engine="nope")


class TestBatchWorkload:
    def test_deterministic(self):
        a = batch_workload(10, seed=42)
        b = batch_workload(10, seed=42)
        assert [to_sexpr(q) for q in a[0]] == [to_sexpr(q) for q in b[0]]
        assert a[1] == b[1]

    @pytest.mark.parametrize("kind", ("fig7", "fig8", "mixed"))
    def test_counts_and_duplication(self, kind):
        queries, constraints = batch_workload(
            12, kind=kind, distinct=4, size=16, seed=0
        )
        assert len(queries) == 12
        assert constraints
        from repro.core.fingerprint import fingerprint

        assert 1 <= len({fingerprint(q) for q in queries}) <= 4

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            batch_workload(0)
        with pytest.raises(ValueError):
            batch_workload(5, kind="fig99")
        with pytest.raises(ValueError):
            batch_workload(5, distinct=0)
