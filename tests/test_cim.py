"""Tests for Algorithm CIM (constraint-independent minimization)."""

from __future__ import annotations

import pytest
from conftest import assert_equivalent

from repro import TreePattern, cim_minimize, equivalent, is_minimal
from repro.core.images import VirtualTarget
from repro.core.edges import EdgeKind
from repro.workloads.paper_queries import figure2_b, figure2_c, figure2_h, figure2_i


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestBasics:
    def test_already_minimal_untouched(self):
        pattern = q(("a", [("/", ("b*", [("//", "c")]))]))
        result = cim_minimize(pattern)
        assert result.removed_count == 0
        assert result.pattern.isomorphic(pattern)

    def test_input_not_mutated(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        cim_minimize(pattern)
        assert pattern.size == 3

    def test_in_place_mutates(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        result = cim_minimize(pattern, in_place=True)
        assert result.pattern is pattern
        assert pattern.size == 2

    def test_duplicate_leaf_collapsed(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        result = cim_minimize(pattern)
        assert result.removed_count == 1
        assert result.pattern.size == 2

    def test_duplicate_subtrees_collapsed(self):
        pattern = q(("a*", [
            ("/", ("s", [("//", "t")])),
            ("/", ("s", [("//", "t")])),
        ]))
        result = cim_minimize(pattern)
        assert result.pattern.size == 3
        assert_equivalent(result.pattern, pattern)

    def test_triplicate_collapses_to_one(self):
        pattern = q(("a*", [("//", "b")] * 3))
        result = cim_minimize(pattern)
        assert result.pattern.size == 2

    def test_elimination_order_recorded(self):
        pattern = q(("a*", [("/", "b"), ("/", "b"), ("//", "c"), ("//", "c")]))
        result = cim_minimize(pattern)
        assert result.removed_count == 2
        types = sorted(t for _, t in result.eliminated)
        assert types == ["b", "c"]


class TestPaperExamples:
    def test_figure2_h_to_i(self):
        result = cim_minimize(figure2_h())
        assert result.pattern.isomorphic(figure2_i())
        assert_equivalent(result.pattern, figure2_h())

    def test_figure2_b_to_c(self):
        result = cim_minimize(figure2_b())
        assert result.pattern.isomorphic(figure2_c())

    def test_moved_star_blocks_h_fold(self):
        moved = q(("OrgUnit", [
            ("/", ("Dept", [("/", ("Researcher", [("//", "DBProject")]))])),
            ("//", ("Dept*", [("//", "DBProject")])),
        ]))
        assert cim_minimize(moved).removed_count == 0


class TestWitnesses:
    def test_every_deletion_certified(self):
        pattern = figure2_h()
        result = cim_minimize(pattern, collect_witnesses=True)
        assert set(result.witnesses) == {node_id for node_id, _ in result.eliminated}
        for witness in result.witnesses.values():
            assert witness  # non-empty mapping

    def test_witness_not_identity_on_deleted(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        result = cim_minimize(pattern, collect_witnesses=True)
        ((node_id, _),) = result.eliminated
        assert result.witnesses[node_id][node_id] != node_id


class TestOrderIndependence:
    def test_seeded_orders_agree_up_to_isomorphism(self):
        pattern = q(("a*", [
            ("/", ("s", [("//", "t"), ("//", "t")])),
            ("/", ("s", [("//", "t")])),
            ("//", "s"),
        ]))
        reference = cim_minimize(pattern)
        for seed in range(8):
            shuffled = cim_minimize(pattern, seed=seed)
            assert shuffled.pattern.isomorphic(reference.pattern), f"seed {seed}"

    def test_result_size_unique(self):
        # Theorem 4.1: the minimal size is an invariant.
        pattern = q(("x*", [("//", ("a", [("/", "b")])), ("//", ("a", [("/", "b")])), ("//", "a")]))
        sizes = {cim_minimize(pattern, seed=s).pattern.size for s in range(10)}
        assert len(sizes) == 1


class TestProtectAndTemporaries:
    def test_protected_leaf_survives(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        leaf = pattern.find("b")[0]
        result = cim_minimize(pattern, protect=frozenset({leaf.id}))
        # The other b is still removable.
        assert result.pattern.size == 2
        assert result.pattern.has_node(leaf.id)

    def test_temporaries_skipped_by_default(self):
        pattern = q(("a*", [("/", "b")]))
        pattern.add_child(pattern.root, "b", EdgeKind.CHILD, temporary=True)
        result = cim_minimize(pattern)
        # The real b folds onto the temp (or stays); the temp is never deleted.
        assert any(n.temporary for n in result.pattern.nodes())

    def test_include_temporaries_deletes_them(self):
        pattern = q(("a*", [("/", "b")]))
        pattern.add_child(pattern.root, "b", EdgeKind.CHILD, temporary=True)
        result = cim_minimize(pattern, include_temporaries=True)
        assert result.pattern.size == 2


class TestVirtualIntegration:
    def test_leaf_removed_via_virtual(self):
        pattern = q(("a*", [("/", "b")]))
        vt = VirtualTarget(-1, "b", pattern.root.id, EdgeKind.CHILD)
        result = cim_minimize(pattern, virtual=[vt])
        assert result.pattern.size == 1

    def test_virtual_dies_with_anchor(self):
        # Chain a*/b/c with virtuals: c-child c under b, c-child b under a.
        pattern = q(("a*", [("/", ("b", [("/", "c")]))]))
        b = pattern.find("b")[0]
        virtual = [
            VirtualTarget(-1, "c", b.id, EdgeKind.CHILD),
            VirtualTarget(-2, "b", pattern.root.id, EdgeKind.CHILD),
        ]
        result = cim_minimize(pattern, virtual=virtual)
        # c folds onto -1, then b becomes a leaf and folds onto -2; -1 died
        # with b, which must not break anything.
        assert result.pattern.size == 1


class TestIsMinimal:
    def test_true_on_minimal(self):
        assert is_minimal(figure2_i())

    def test_false_on_redundant(self):
        assert not is_minimal(figure2_h())

    def test_consistent_with_cim(self, random_queries):
        for pattern in random_queries:
            minimized = cim_minimize(pattern).pattern
            assert is_minimal(minimized), minimized.to_ascii()


class TestRandomizedAgainstOracle:
    def test_equivalence_preserved(self, random_queries):
        for pattern in random_queries:
            result = cim_minimize(pattern)
            assert equivalent(result.pattern, pattern), pattern.to_ascii()

    def test_idempotent(self, random_queries):
        for pattern in random_queries:
            once = cim_minimize(pattern).pattern
            twice = cim_minimize(once).pattern
            assert once.isomorphic(twice)
