"""Tests for the unified front-door API (``repro.api``).

The Session facade must be a *pure* re-packaging of the existing stack:
``Session.minimize`` / ``minimize_many`` byte-identical to the pipeline,
``Session.evaluate`` identical to the evaluators, options validated in
one place, and the scoped oracle-cache switch never leaking into global
state.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.api import STRATEGIES, MinimizeOptions, QueryResult, Session
from repro.batch import BatchMinimizer
from repro.constraints.model import parse_constraints
from repro.core import oracle_cache
from repro.core.pipeline import minimize
from repro.data.generate import random_tree
from repro.errors import ReproError
from repro.matching.evaluator import evaluate
from repro.parsing.sexpr import to_sexpr
from repro.parsing.xpath import parse_xpath
from repro.workloads import batch_workload, isomorphic_shuffle, random_query

CONSTRAINTS = parse_constraints("a -> b; b ->> c; a ~ c")


def random_workload(seed: int, *, n_queries: int = 6, max_size: int = 8):
    rng = random.Random(seed)
    queries = []
    while len(queries) < n_queries:
        base = random_query(rng.randint(1, max_size), types=["a", "b", "c"], rng=rng)
        queries.append(base)
        if rng.random() < 0.5 and len(queries) < n_queries:
            queries.append(isomorphic_shuffle(base, rng=rng))
    rng.shuffle(queries)
    return queries


class TestMinimizeOptions:
    def test_defaults(self):
        options = MinimizeOptions()
        assert options.engine == "dp"
        assert options.strategy == "pipeline"
        assert options.jobs == 1
        assert options.oracle_cache is None
        assert options.verify is False
        assert options.use_cdm_prefilter is True

    def test_validation(self):
        with pytest.raises(ValueError, match="engine"):
            MinimizeOptions(engine="nope")
        with pytest.raises(ValueError, match="strategy"):
            MinimizeOptions(strategy="nope")
        with pytest.raises(ValueError, match="jobs"):
            MinimizeOptions(jobs=-1)

    def test_with_overrides(self):
        options = MinimizeOptions()
        warmed = options.with_overrides(persistent_pool=True, jobs=2)
        assert warmed.persistent_pool and warmed.jobs == 2
        assert options.persistent_pool is False  # frozen original untouched

    def test_strategies_pinned(self):
        assert STRATEGIES == ("pipeline", "acim")
        assert MinimizeOptions(strategy="acim").use_cdm_prefilter is False


class TestSessionDifferential:
    """Session output == the bare pipeline, byte for byte."""

    @pytest.mark.parametrize("offset", (0, 50))
    def test_random_workloads(self, offset):
        for seed in range(offset, offset + 25):
            queries = random_workload(seed)
            with Session(constraints=CONSTRAINTS) as session:
                results = session.minimize_many(queries)
            assert [to_sexpr(r.pattern) for r in results] == [
                to_sexpr(minimize(q, CONSTRAINTS).pattern) for q in queries
            ], f"diverged at seed {seed}"

    @pytest.mark.parametrize("kind", ("fig7", "fig8"))
    def test_paper_workloads(self, kind):
        queries, constraints = batch_workload(12, kind=kind, distinct=3, size=14, seed=7)
        with Session(MinimizeOptions(jobs=2), constraints=constraints) as session:
            results = session.minimize_many(queries)
        assert [to_sexpr(r.pattern) for r in results] == [
            to_sexpr(minimize(q, constraints).pattern) for q in queries
        ]

    def test_verify_mode_is_invisible_when_correct(self):
        queries, constraints = batch_workload(8, kind="fig7", distinct=2, size=12, seed=3)
        with Session(MinimizeOptions(verify=True), constraints=constraints) as session:
            results = session.minimize_many(queries)
            assert session.counters()["verified"] == 8
        assert [to_sexpr(r.pattern) for r in results] == [
            to_sexpr(minimize(q, constraints).pattern) for q in queries
        ]

    def test_verify_mode_catches_wrong_output(self, monkeypatch):
        import repro.api as api_module

        monkeypatch.setattr(api_module, "_equivalent_under", lambda *a: False)
        with Session(MinimizeOptions(verify=True), constraints=CONSTRAINTS) as session:
            with pytest.raises(ReproError, match="verification failed"):
                session.minimize_many([parse_xpath("a/b[c][c]")])


class TestSession:
    def test_memo_replays_across_calls(self):
        query = parse_xpath("a/b[c][c]")
        with Session(constraints=CONSTRAINTS) as session:
            first = session.minimize(query)
            second = session.minimize(query)
        assert not first.cache_hit and second.cache_hit
        assert to_sexpr(first.pattern) == to_sexpr(second.pattern)
        assert second.fingerprint == first.fingerprint

    def test_counters_aggregate_across_calls(self):
        with Session(constraints=CONSTRAINTS) as session:
            session.minimize(parse_xpath("a/b[c][c]"))
            session.minimize(parse_xpath("a/b[c][c]"))
            counters = session.counters()
        assert counters["queries"] == 2
        assert counters["cache_hits"] == 1
        assert counters["hit_rate"] == pytest.approx(0.5)
        assert "jobs" not in counters  # not summable, not aggregated

    def test_per_call_repo_overrides_default(self):
        query = parse_xpath("a[b][.//c]")
        with Session(constraints=CONSTRAINTS) as session:
            constrained = session.minimize(query)
            unconstrained = session.minimize(query, [])
        assert to_sexpr(constrained.pattern) == to_sexpr(
            minimize(query, CONSTRAINTS).pattern
        )
        assert to_sexpr(unconstrained.pattern) == to_sexpr(minimize(query, []).pattern)

    def test_closed_session_rejects_work(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.minimize(parse_xpath("a/b"))

    def test_scoped_oracle_cache_never_touches_global_switch(self):
        enabled_before = oracle_cache.global_enabled()
        with Session(MinimizeOptions(oracle_cache=False), constraints=CONSTRAINTS) as session:
            session.minimize(parse_xpath("a/b[c][c]"))
            # Inside minimize the scope applies; between calls it must not.
            assert oracle_cache.global_enabled() == enabled_before
        assert oracle_cache.global_enabled() == enabled_before

    def test_evaluate_single_and_batch(self):
        forest = [random_tree(["a", "b", "c"], size=25, seed=s) for s in range(3)]
        rng = random.Random(5)
        queries = [
            random_query(rng.randint(1, 5), types=["a", "b", "c"], rng=rng)
            for _ in range(4)
        ]
        with Session() as session:
            single = session.evaluate(queries[0], forest)
            many = session.evaluate(queries, forest)
        assert single == evaluate(queries[0], forest)
        assert many == [evaluate(q, forest) for q in queries]

    def test_equivalent(self):
        with Session(constraints=CONSTRAINTS) as session:
            assert session.equivalent(
                parse_xpath("a/b[c][c]"), parse_xpath("a/b[c]")
            )
            assert not session.equivalent(parse_xpath("a/b"), parse_xpath("a/c"))
            # Explicit empty repo: absolute equivalence only.
            assert session.equivalent(parse_xpath("a/b[c][c]"), parse_xpath("a/b[c]"), [])

    def test_rejects_non_options(self):
        with pytest.raises(TypeError, match="MinimizeOptions"):
            Session({"jobs": 2})


class TestQueryResult:
    def test_to_json_shape(self):
        with Session(constraints=CONSTRAINTS) as session:
            result = session.minimize(parse_xpath("a/b[c][c]"))
        payload = result.to_json()
        assert payload["input"] == "a/b[c][c]"
        assert payload["minimized"] == "a/b[c]"
        assert payload["input_size"] == 4 and payload["output_size"] == 3
        assert payload["removed"] == 1 and payload["cache_hit"] is False
        assert payload["eliminated"] and payload["fingerprint"]
        assert payload["timings"]["total_seconds"] >= 0
        # Round-trippable through the sexpr renderer too.
        sexpr_payload = result.to_json(fmt="sexpr")
        assert sexpr_payload["minimized"].startswith("(")
        with pytest.raises(ValueError, match="format"):
            result.to_json(fmt="ascii")

    def test_summary_marks_replays(self):
        with Session(constraints=CONSTRAINTS) as session:
            session.minimize(parse_xpath("a/b[c][c]"))
            replay = session.minimize(parse_xpath("a/b[c][c]"))
        assert "memo replay" in replay.summary()
        assert replay.detail is None  # a hit does no engine work


class TestLegacyKwargsRemoved:
    """The deprecated per-knob kwargs finished their cycle: TypeError now."""

    def test_batch_minimizer_legacy_kwargs_raise_with_hint(self):
        with pytest.raises(TypeError, match="MinimizeOptions"):
            BatchMinimizer(CONSTRAINTS, jobs=1, memoize=False)
        with pytest.raises(TypeError, match="jobs -> MinimizeOptions"):
            BatchMinimizer(CONSTRAINTS, jobs=4)

    def test_minimize_batch_legacy_kwargs_raise_with_hint(self):
        from repro.batch import minimize_batch

        with pytest.raises(TypeError, match="MinimizeOptions"):
            minimize_batch([parse_xpath("a/b[c][c]")], CONSTRAINTS, jobs=2)

    def test_unknown_kwargs_still_rejected(self):
        with pytest.raises(TypeError, match="unknown"):
            BatchMinimizer(CONSTRAINTS, frobnicate=True)

    def test_options_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            BatchMinimizer(CONSTRAINTS, options=MinimizeOptions(memoize=False))

    def test_options_path_matches_serial_loop(self):
        minimizer = BatchMinimizer(
            CONSTRAINTS, options=MinimizeOptions(memoize=False)
        )
        batch = minimizer.minimize_all([parse_xpath("a/b[c][c]")])
        assert to_sexpr(batch.items[0].pattern) == to_sexpr(
            minimize(parse_xpath("a/b[c][c]"), CONSTRAINTS).pattern
        )
