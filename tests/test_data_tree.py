"""Tests for the data-tree substrate (trees, forests, builder)."""

from __future__ import annotations

import pytest

from repro.data import DataTree, Forest, build_forest, build_tree
from repro.errors import DataModelError


def library() -> DataTree:
    return build_tree(
        ("Library", [
            ("Book", [("Title", [], "TPQ"), ("Author", [("LastName", [], "Cho")])]),
            ("Book", [("Title", [], "Chase")]),
        ])
    )


class TestDataTree:
    def test_build_counts(self):
        tree = library()
        assert tree.size == 7
        assert len(tree) == 7

    def test_values(self):
        tree = library()
        titles = [n.value for n in tree.find("Title")]
        assert titles == ["TPQ", "Chase"]

    def test_multi_types(self):
        tree = build_tree(("Org", [("Employee+Person", [])]))
        node = tree.root.children[0]
        assert node.types == {"Employee", "Person"}
        assert node.has_type("Person")
        assert node.primary_type == "Employee"

    def test_types_iterable_spec(self):
        tree = build_tree((("A", "B"), []))
        assert tree.root.types == {"A", "B"}

    def test_empty_types_rejected(self):
        with pytest.raises(DataModelError):
            DataTree([])

    def test_bad_spec_rejected(self):
        with pytest.raises(DataModelError):
            build_tree(("A", [], "v", "extra"))

    def test_traversals(self):
        tree = library()
        assert [n.primary_type for n in tree.nodes()][0] == "Library"
        last_names = list(tree.root.descendants())
        assert len(last_names) == 6
        ln = tree.find("LastName")[0]
        assert [n.primary_type for n in ln.ancestors()] == ["Author", "Book", "Library"]
        assert [n.primary_type for n in ln.path()] == ["Library", "Book", "Author", "LastName"]

    def test_depth(self):
        tree = library()
        assert tree.depth == 3
        assert tree.find("LastName")[0].depth == 3

    def test_is_ancestor(self):
        tree = library()
        book = tree.find("Book")[0]
        ln = tree.find("LastName")[0]
        assert tree.is_ancestor(book, ln)
        assert not tree.is_ancestor(ln, book)

    def test_node_registry(self):
        tree = library()
        for node in tree.nodes():
            assert tree.node(node.id) is node

    def test_types_present(self):
        assert "LastName" in library().types_present()

    def test_cross_tree_attach_rejected(self):
        t1, t2 = DataTree("a"), DataTree("b")
        with pytest.raises(DataModelError):
            t1.add_child(t2.root, "x")

    def test_to_ascii(self):
        art = library().to_ascii()
        assert "Library" in art and "'TPQ'" in art


class TestForest:
    def test_union_size(self):
        forest = build_forest([("a", []), ("b", [("c", [])])])
        assert forest.size == 3
        assert len(forest) == 2

    def test_add_and_iterate(self):
        forest = Forest()
        tree = forest.add(DataTree("x"))
        assert list(forest) == [tree]
        assert [n.primary_type for n in forest.nodes()] == ["x"]
