"""Tests for the ``tpq-eval`` command-line tool."""

from __future__ import annotations

import pytest

from repro.tools.eval_cli import main

XML = """<Catalog>
  <Product><Name>Widget</Name><Vendor><Name>Acme</Name></Vendor></Product>
  <Product><Name>Orphan</Name></Product>
</Catalog>
"""

LDIF = """dn: o=Corp
objectClass: Organization

dn: cn=Ada,o=Corp
objectClass: Employee
objectClass: Person
"""


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "cat.xml"
    path.write_text(XML)
    return path


@pytest.fixture
def ldif_file(tmp_path):
    path = tmp_path / "dir.ldif"
    path.write_text(LDIF)
    return path


class TestEvalCli:
    def test_basic_match(self, xml_file, capsys):
        assert main(["Catalog/Product*[Vendor]", str(xml_file)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 and lines[0].startswith("Product")

    def test_count(self, xml_file, capsys):
        assert main(["Catalog//Name*", str(xml_file), "--count"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_engines_agree(self, xml_file, capsys):
        for engine in ("dp", "twig", "pathstack"):
            assert main(
                ["Catalog//Name*", str(xml_file), "--engine", engine, "--count"]
            ) == 0
        counts = {line for line in capsys.readouterr().out.split()}
        assert counts == {"3"}

    def test_pathstack_rejects_twigs(self, xml_file, capsys):
        code = main(
            ["Catalog/Product*[Name][Vendor]", str(xml_file), "--engine", "pathstack"]
        )
        assert code == 2
        assert "linear" in capsys.readouterr().err

    def test_minimize_flag(self, xml_file, capsys):
        code = main(
            [
                "Catalog/Product*[Name][Vendor]",
                str(xml_file),
                "--minimize",
                "-c",
                "Product -> Name",
                "--count",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "minimized to: Catalog/Product[Vendor]" in captured.err
        assert captured.out.strip() == "1"

    def test_ldif_by_extension(self, ldif_file, capsys):
        assert main(["Organization//Person*", str(ldif_file)]) == 0
        out = capsys.readouterr().out
        assert "cn=Ada,o=Corp" in out

    def test_missing_file(self, capsys):
        assert main(["a", "/nonexistent/file.xml"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_query(self, xml_file, capsys):
        assert main(["a[[", str(xml_file)]) == 1

    def test_twigmerge_engine(self, xml_file, capsys):
        assert main(
            ["Catalog//Name*", str(xml_file), "--engine", "twigmerge", "--count"]
        ) == 0
        assert capsys.readouterr().out.strip() == "3"


class TestEvalBatchMode:
    @pytest.fixture
    def second_xml(self, tmp_path):
        path = tmp_path / "cat2.xml"
        path.write_text("<Catalog><Product><Name>Gizmo</Name></Product></Catalog>")
        return path

    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("Catalog/Product*  # one per product\nCatalog//Name*\n")
        return path

    def test_batch_counts_per_query(self, xml_file, query_file, capsys):
        assert main(["--batch", str(query_file), str(xml_file), "--count"]) == 0
        assert capsys.readouterr().out.split() == ["2", "3"]

    def test_batch_headers_and_forest(self, xml_file, second_xml, query_file, capsys):
        code = main(
            ["--batch", str(query_file), str(xml_file), str(second_xml), "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "## Catalog/Product" in out and "## Catalog//Name" in out
        assert str(second_xml) in out  # multi-document output is prefixed

    def test_forest_positional_single_query(self, xml_file, second_xml, capsys):
        assert main(
            ["Catalog//Name*", str(xml_file), str(second_xml), "--count"]
        ) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_jobs_do_not_change_answers(self, xml_file, second_xml, capsys):
        serial = main(["Catalog//Name*", str(xml_file), str(second_xml)])
        serial_out = capsys.readouterr().out
        parallel = main(
            ["Catalog//Name*", str(xml_file), str(second_xml), "--jobs", "2"]
        )
        assert (serial, parallel) == (0, 0)
        assert capsys.readouterr().out == serial_out

    def test_batch_minimize_uses_backend(self, xml_file, query_file, capsys):
        code = main(
            [
                "--batch",
                str(query_file),
                str(xml_file),
                "--minimize",
                "-c",
                "Product -> Name",
                "--count",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.split() == ["2", "3"]
        assert captured.err.count("# minimized to:") == 2

    def test_query_required_without_batch(self, xml_file):
        with pytest.raises(SystemExit):
            main([str(xml_file)])
