"""Tests for Algorithm CDM: propagation rules, minimization rules, cascades."""

from __future__ import annotations

from repro import TreePattern, cdm_minimize
from repro.constraints import (
    closure,
    co_occurrence,
    parse_constraints,
    required_child,
    required_descendant,
)
from repro.core.cdm import propagate_child_content
from repro.core.infocontent import ArgKind, InfoArg, InfoContent
from repro.workloads.paper_queries import FIGURE5_CONSTRAINTS, figure5_query


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestPropagationRules:
    """Figure 4, rule by rule."""

    def _propagate(self, spec, child_args):
        pattern = q(spec)
        child = pattern.root.children[0]
        content = InfoContent()
        for a in child_args:
            content._sources.setdefault(a, set())
        return pattern, child, propagate_child_content(child, content)

    def test_rule1_d_edge_unconstrained_self(self):
        _, child, out = self._propagate(("t1*", [("//", "t2")]),
                                        [InfoArg(ArgKind.SELF, "t2", False)])
        assert (InfoArg(ArgKind.ANCESTOR, "t2", False), child.id) in out

    def test_rule1_d_edge_constrained_self(self):
        _, child, out = self._propagate(("t1*", [("//", "t2")]),
                                        [InfoArg(ArgKind.SELF, "t2", True)])
        assert (InfoArg(ArgKind.ANCESTOR, "t2", True), child.id) in out

    def test_rule2_d_edge_ancestor_obligation(self):
        _, _, out = self._propagate(
            ("t1*", [("//", "t2")]),
            [InfoArg(ArgKind.SELF, "t2", True), InfoArg(ArgKind.ANCESTOR, "t3", False)],
        )
        assert (InfoArg(ArgKind.ANCESTOR, "t3", True), None) in out

    def test_rule3_d_edge_parent_obligation(self):
        _, _, out = self._propagate(
            ("t1*", [("//", "t2")]),
            [InfoArg(ArgKind.SELF, "t2", True), InfoArg(ArgKind.PARENT, "t3", False)],
        )
        assert (InfoArg(ArgKind.ANCESTOR, "t3", True), None) in out

    def test_rule4_c_edge_self(self):
        _, child, out = self._propagate(("t1*", [("/", "t2")]),
                                        [InfoArg(ArgKind.SELF, "t2", False)])
        assert (InfoArg(ArgKind.PARENT, "t2", False), child.id) in out

    def test_rules56_c_edge_obligations_constrain(self):
        _, _, out = self._propagate(
            ("t1*", [("/", "t2")]),
            [InfoArg(ArgKind.SELF, "t2", True),
             InfoArg(ArgKind.ANCESTOR, "t3", False),
             InfoArg(ArgKind.PARENT, "t4", True)],
        )
        assert (InfoArg(ArgKind.ANCESTOR, "t3", True), None) in out
        assert (InfoArg(ArgKind.ANCESTOR, "t4", True), None) in out


class TestMinimizationRules:
    """The four local-redundancy conditions (i)-(iv) of Section 5.4."""

    def test_way_i_required_child(self):
        result = cdm_minimize(q(("Book*", [("/", "Title")])),
                              [required_child("Book", "Title")])
        assert result.pattern.size == 1
        assert result.eliminated[0][2] == "self-child"

    def test_way_i_needs_c_edge(self):
        # Required child does NOT discharge a c-child obligation... but a
        # d-child one it does (a child is a descendant, via closure).
        result = cdm_minimize(q(("Book*", [("/", "Title")])),
                              [required_descendant("Book", "Title")])
        assert result.pattern.size == 2

    def test_way_ii_required_descendant(self):
        result = cdm_minimize(q(("Book*", [("//", "LastName")])),
                              [required_descendant("Book", "LastName")])
        assert result.pattern.size == 1
        assert result.eliminated[0][2] == "self-descendant"

    def test_way_ii_child_ic_discharges_d_leaf(self):
        # Book -> Title implies Book ->> Title under closure.
        result = cdm_minimize(q(("Book*", [("//", "Title")])),
                              [required_child("Book", "Title")])
        assert result.pattern.size == 1

    def test_way_iii_sibling_co_occurrence(self):
        result = cdm_minimize(
            q(("Org*", [("/", "Manager"), ("/", "Employee")])),
            [co_occurrence("Manager", "Employee")],
        )
        assert result.pattern.size == 2
        assert result.pattern.find("Manager")
        assert not result.pattern.find("Employee")
        assert result.eliminated[0][2] == "sibling-co-occurrence"

    def test_way_iii_directional(self):
        result = cdm_minimize(
            q(("Org*", [("/", "Manager"), ("/", "Employee")])),
            [co_occurrence("Employee", "Manager")],
        )
        assert not result.pattern.find("Manager")
        assert result.pattern.find("Employee")

    def test_way_iv_descendant_witness(self):
        # n has a deep descendant of type t (through an internal child)
        # and a d-child leaf of type t'; t ->> t' discharges the leaf.
        pattern = q(("n*", [("/", ("mid", [("//", "t")])), ("//", "t2")]))
        result = cdm_minimize(pattern, [required_descendant("t", "t2")])
        assert result.pattern.size == 3
        assert not result.pattern.find("t2")
        assert result.eliminated[0][2] == "obligation-descendant"

    def test_way_iv_co_occurrence_witness(self):
        pattern = q(("n*", [("/", ("mid", [("//", "Proj")])), ("//", "Thing")]))
        result = cdm_minimize(pattern, [co_occurrence("Proj", "Thing")])
        assert not result.pattern.find("Thing")
        assert result.eliminated[0][2] == "obligation-co-occurrence"

    def test_way_iv_does_not_discharge_c_leaf(self):
        # A descendant witness cannot satisfy a *c-child* obligation.
        pattern = q(("n*", [("/", ("mid", [("//", "Proj")])), ("/", "Thing")]))
        result = cdm_minimize(pattern, [co_occurrence("Proj", "Thing")])
        assert result.pattern.find("Thing")


class TestCascade:
    def test_chain_collapses_bottom_up(self):
        pattern = q(("t0*", [("/", ("t1", [("/", ("t2", [("/", "t3")]))]))]))
        ics = [required_child(f"t{i}", f"t{i+1}") for i in range(3)]
        result = cdm_minimize(pattern, ics)
        assert result.pattern.size == 1
        # Deepest first: the ~t -> t relaxation drives the cascade.
        assert [t for _, t, _ in result.eliminated] == ["t3", "t2", "t1"]

    def test_figure5_reduces_to_root(self):
        result = cdm_minimize(figure5_query(), FIGURE5_CONSTRAINTS, keep_contents=True)
        assert result.pattern.size == 1
        assert result.pattern.root.type == "t1"

    def test_figure5_contents_at_root(self):
        result = cdm_minimize(figure5_query(), FIGURE5_CONSTRAINTS, keep_contents=True)
        root_content = result.contents[result.pattern.root.id]
        # All children discharged: the root's own argument relaxed to t1.
        assert root_content.self_arg().notation() == "t1"

    def test_no_contents_kept_by_default(self):
        result = cdm_minimize(figure5_query(), FIGURE5_CONSTRAINTS)
        assert result.contents == {}


class TestGuards:
    def test_output_leaf_never_removed(self):
        pattern = q(("Book", [("/", "Title*")]))
        result = cdm_minimize(pattern, [required_child("Book", "Title")])
        assert result.pattern.size == 2

    def test_no_constraints_no_changes(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))  # CIM-redundant, not CDM's business
        result = cdm_minimize(pattern, [])
        assert result.removed_count == 0

    def test_input_not_mutated(self):
        pattern = q(("Book*", [("/", "Title")]))
        cdm_minimize(pattern, [required_child("Book", "Title")])
        assert pattern.size == 2

    def test_in_place(self):
        pattern = q(("Book*", [("/", "Title")]))
        result = cdm_minimize(pattern, [required_child("Book", "Title")], in_place=True)
        assert result.pattern is pattern and pattern.size == 1

    def test_rule_counts_tally(self):
        result = cdm_minimize(figure5_query(), FIGURE5_CONSTRAINTS)
        assert sum(result.rule_counts.values()) == result.removed_count

    def test_closed_repo_accepted(self):
        repo = closure([required_child("Book", "Title")])
        result = cdm_minimize(q(("Book*", [("/", "Title")])), repo)
        assert result.pattern.size == 1

    def test_seconds_recorded(self):
        result = cdm_minimize(figure5_query(), FIGURE5_CONSTRAINTS)
        assert result.seconds > 0


class TestMutualJustification:
    def test_two_way_co_occurrence_keeps_one(self):
        ics = parse_constraints("x ~ y; y ~ x")
        pattern = q(("r*", [("/", "x"), ("/", "y")]))
        result = cdm_minimize(pattern, ics)
        assert result.pattern.size == 2  # exactly one of x/y survives

    def test_self_pair_required_descendant(self):
        # t ->> t (degenerate but syntactically allowed): two t d-leaves,
        # one justifies trimming the other, never itself.
        ics = [required_descendant("t", "t")]
        pattern = q(("r*", [("//", "t"), ("//", "t")]))
        result = cdm_minimize(pattern, ics)
        assert result.pattern.size >= 2


class TestJustifierPreference:
    def test_full_discharge_beats_self_pair(self):
        # Both //a duplicates are justified by the /a sibling through
        # a ->> a; the self-pair reading (keep one duplicate) must not
        # shadow it (regression: CDM left a locally redundant leaf).
        repo = closure([co_occurrence("b", "a"), required_child("a", "b")])
        pattern = q(("c*", [("/", "a"), ("//", "a"), ("//", "a")]))
        result = cdm_minimize(pattern, repo)
        assert result.pattern.size == 2
        assert [n.type for n in result.pattern.leaves()] == ["a"]

    def test_sibling_justifier_discharges_both_duplicates(self):
        repo = closure([co_occurrence("b", "a"), required_child("a", "b")])
        pattern = q(("c*", [("//", "a"), ("//", "a"), ("/", "b")]))
        result = cdm_minimize(pattern, repo)
        assert result.pattern.size == 2
        assert [n.type for n in result.pattern.leaves()] == ["b"]
