"""Tests for the exception hierarchy and error ergonomics."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.PatternError,
            errors.InvalidPatternError,
            errors.OutputNodeError,
            errors.ConstraintError,
            errors.ParseError,
            errors.SchemaError,
            errors.DataModelError,
            errors.EvaluationError,
            errors.StrategyError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_pattern_errors_grouped(self):
        assert issubclass(errors.InvalidPatternError, errors.PatternError)
        assert issubclass(errors.OutputNodeError, errors.PatternError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchemaError("boom")


class TestParseError:
    def test_position_rendering(self):
        exc = errors.ParseError("bad token", text="hello world", position=6)
        rendered = str(exc)
        assert "offset 6" in rendered
        assert "world" in rendered

    def test_without_position(self):
        assert str(errors.ParseError("plain")) == "plain"

    def test_attributes(self):
        exc = errors.ParseError("m", text="t", position=0)
        assert exc.text == "t" and exc.position == 0
