"""Figure 5 walk-through: information-content labels, step by step.

Running CDM with an empty constraint set performs pure propagation (no
rule can fire), so the final contents are exactly the boxed labels of
Figure 5, STEP 1. With the full constraint set the cascade of STEP 2/3
runs and only the marked root survives.
"""

from __future__ import annotations

from repro import cdm_minimize
from repro.workloads.paper_queries import FIGURE5_CONSTRAINTS, figure5_query


def content_by_type(result):
    pattern = result.pattern
    return {
        pattern.node(node_id).type: content
        for node_id, content in result.contents.items()
        if pattern.has_node(node_id)
    }


class TestStep1Propagation:
    """No constraints: pure Figure 4 propagation."""

    def setup_method(self):
        self.result = cdm_minimize(figure5_query(), [], keep_contents=True)
        assert self.result.removed_count == 0
        self.contents = content_by_type(self.result)

    def test_unconstrained_leaves(self):
        assert self.contents["t6"].notation() == "t6"
        assert self.contents["t7"].notation() == "t7"
        assert self.contents["t8"].notation() == "t8"

    def test_c_parent_of_leaf(self):
        # Figure 5: the c-parent of t6 gets ~t5, p t6 (rule 4).
        assert self.contents["t5"].notation() == "~t5, p t6"
        assert self.contents["t3"].notation() == "~t3, p t7"

    def test_d_parent_of_leaf(self):
        # The d-parent of t8 gets ~t4, a t8 (rule 1).
        assert self.contents["t4"].notation() == "~t4, a t8"

    def test_d_parent_of_constrained_subtree(self):
        # t2's d-child t5 is constrained: ~t2, a ~t5, a ~t6 (rules 1, 3).
        assert self.contents["t2"].notation() == "~t2, a ~t5, a ~t6"

    def test_root_merges_all_branches(self):
        # Obligations inherited through a child are constrained forms
        # (the obliged node is at least two steps away) — including t8's,
        # which was unconstrained at t4 itself.
        assert self.contents["t1"].notation() == (
            "~t1, a ~t3, a ~t5, a ~t6, a ~t7, a ~t8, p ~t2, p ~t4"
        )


class TestStep2And3Minimization:
    """Full constraint set: the cascade of Figure 5 STEP 2/3."""

    def setup_method(self):
        self.result = cdm_minimize(
            figure5_query(), FIGURE5_CONSTRAINTS, keep_contents=True
        )

    def test_only_root_survives(self):
        assert self.result.pattern.size == 1
        assert self.result.pattern.root.type == "t1"

    def test_root_relaxed_to_unconstrained(self):
        # "whenever all children of a node are marked redundant, ~t at the
        # node is changed to t".
        root_content = self.result.contents[self.result.pattern.root.id]
        assert root_content.self_arg().notation() == "t1"

    def test_deepest_leaves_removed_first(self):
        order = [t for _, t, _ in self.result.eliminated]
        assert order.index("t6") < order.index("t5")
        assert order.index("t7") < order.index("t3")
        assert order.index("t8") < order.index("t4")

    def test_each_removal_names_its_rule(self):
        rules = {t: rule for _, t, rule in self.result.eliminated}
        assert rules["t6"] == "self-child"        # t5 -> t6
        assert rules["t8"] == "self-descendant"   # t4 ->> t8
        assert rules["t5"] == "self-descendant"   # t2 ->> t5 after relaxation
