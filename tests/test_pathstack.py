"""Tests for the PathStack engine (linear patterns)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import TreePattern
from repro.core.edges import EdgeKind
from repro.data import build_tree
from repro.data.generate import random_tree
from repro.errors import EvaluationError
from repro.matching import EmbeddingEngine
from repro.matching.pathstack import PathStackEngine, is_path_pattern


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


def nested_tree():
    return build_tree(
        ("a", [
            ("b", [("a", [("b", [("c", [])])]), ("c", [])]),
            ("a", [("c", [])]),
        ])
    )


class TestIsPathPattern:
    def test_paths_qualify(self):
        assert is_path_pattern(q(("a", [("/", ("b", [("//", "c*")]))])))
        assert is_path_pattern(q("a"))

    def test_twigs_do_not(self):
        assert not is_path_pattern(q(("a*", [("/", "b"), ("/", "c")])))

    def test_engine_rejects_twigs(self):
        with pytest.raises(EvaluationError):
            PathStackEngine(q(("a*", [("/", "b"), ("/", "c")])), nested_tree())


class TestSolutions:
    def test_simple_child_path(self):
        tree = nested_tree()
        engine = PathStackEngine(q(("a", [("/", "b*")])), tree)
        assert engine.count_solutions() == 2  # a/b at root and nested a/b

    def test_descendant_path_counts_all_nestings(self):
        tree = nested_tree()
        engine = PathStackEngine(q(("a", [("//", "c*")])), tree)
        # Every (a, c-descendant) pair.
        reference = EmbeddingEngine(q(("a", [("//", "c*")])), tree)
        assert engine.count_solutions() == reference.count_embeddings()

    def test_self_type_recursion(self):
        tree = nested_tree()
        pattern = q(("a", [("//", "a*")]))
        engine = PathStackEngine(pattern, tree)
        reference = EmbeddingEngine(pattern, tree)
        assert engine.answer_set() == reference.answer_set()
        assert engine.count_solutions() == reference.count_embeddings()

    def test_solutions_are_valid_embeddings(self):
        tree = nested_tree()
        pattern = q(("a", [("//", ("b", [("/", "c*")]))]))
        engine = PathStackEngine(pattern, tree)
        for solution in engine.solutions():
            for v in pattern.nodes():
                data_node = solution[v.id]
                assert v.type in data_node.types
                if v.parent is not None:
                    parent_node = solution[v.parent.id]
                    if v.edge.is_child:
                        assert data_node.parent is parent_node
                    else:
                        assert tree.is_ancestor(parent_node, data_node)

    def test_single_node_pattern(self):
        tree = nested_tree()
        engine = PathStackEngine(q("c"), tree)
        assert len(engine.answer_set()) == 3


TYPES = ["a", "b", "c"]


@st.composite
def path_patterns(draw, max_len: int = 4) -> TreePattern:
    length = draw(st.integers(min_value=1, max_value=max_len))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    node = pattern.root
    for _ in range(length - 1):
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        node = pattern.add_child(node, draw(st.sampled_from(TYPES)), edge)
    chain = list(pattern.nodes())
    chain[draw(st.integers(min_value=0, max_value=len(chain) - 1))].is_output = True
    return pattern


@settings(max_examples=120, deadline=None)
@given(path_patterns(), st.integers(min_value=0, max_value=60))
def test_pathstack_agrees_with_dp_engine(pattern, seed):
    db = random_tree(TYPES, size=25, seed=seed)
    pathstack = PathStackEngine(pattern, db)
    reference = EmbeddingEngine(pattern, db)
    assert pathstack.answer_set() == reference.answer_set()
    assert pathstack.count_solutions() == reference.count_embeddings()
