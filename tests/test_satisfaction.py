"""Tests for checking integrity constraints against databases."""

from __future__ import annotations

from repro.constraints import parse_constraints
from repro.data import Forest, build_tree
from repro.matching import satisfies, violations


ICS = parse_constraints("Book -> Title; Book ->> LastName; Employee ~ Person")


class TestViolations:
    def test_clean_tree(self):
        tree = build_tree(
            ("Library", [("Book", [("Title", [], "t"), ("Author", [("LastName", [], "l")])])])
        )
        assert satisfies(tree, ICS)
        assert violations(tree, ICS) == []

    def test_missing_required_child(self):
        tree = build_tree(("Book", [("Author", [("LastName", [], "l")])]))
        found = violations(tree, ICS)
        assert len(found) == 1
        assert found[0].constraint.notation() == "Book -> Title"
        assert "Book -> Title" in found[0].describe()

    def test_missing_required_descendant(self):
        tree = build_tree(("Book", [("Title", [], "t")]))
        found = violations(tree, ICS)
        assert [v.constraint.target for v in found] == ["LastName"]

    def test_descendant_satisfied_at_any_depth(self):
        tree = build_tree(
            ("Book", [("Title", [], "t"), ("Part", [("Sub", [("LastName", [], "x")])])])
        )
        assert satisfies(tree, ICS)

    def test_co_occurrence_checked_on_type_sets(self):
        good = build_tree(("Org", [("Employee+Person", [])]))
        bad = build_tree(("Org", [("Employee", [])]))
        assert satisfies(good, ICS)
        assert not satisfies(bad, ICS)

    def test_every_carried_type_checked(self):
        # A node that is both Thing and Book must satisfy Book's ICs.
        tree = build_tree(("Thing+Book", []))
        assert not satisfies(tree, ICS)

    def test_limit_stops_early(self):
        tree = build_tree(("Library", [("Book", []), ("Book", []), ("Book", [])]))
        assert len(violations(tree, ICS, limit=2)) == 2

    def test_forest_indexes_trees(self):
        forest = Forest([build_tree("Library"), build_tree(("Book", []))])
        found = violations(forest, ICS)
        assert {v.tree_index for v in found} == {1}

    def test_empty_constraints_always_satisfied(self):
        assert satisfies(build_tree("Anything"), [])
