"""Tests for syntactic sibling deduplication."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro import TreePattern, cim_minimize, equivalent
from repro.core.edges import EdgeKind
from repro.core.normalize import dedup_siblings
from repro.workloads.querygen import duplicate_random_branch, random_query


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestDedup:
    def test_identical_leaves_collapse(self):
        result = dedup_siblings(q(("a*", [("/", "b"), ("/", "b"), ("/", "b")])))
        assert result.pattern.size == 2
        assert result.removed == 2
        assert result.groups == 1

    def test_identical_subtrees_collapse(self):
        pattern = q(("a*", [
            ("/", ("s", [("//", "t"), ("/", "u")])),
            ("/", ("s", [("/", "u"), ("//", "t")])),  # same subtree, reordered
        ]))
        result = dedup_siblings(pattern)
        assert result.pattern.size == 4
        assert result.removed == 3

    def test_edge_kind_distinguishes(self):
        result = dedup_siblings(q(("a*", [("/", "b"), ("//", "b")])))
        assert result.removed == 0

    def test_different_subtrees_kept(self):
        pattern = q(("a*", [("/", ("s", [("/", "t")])), ("/", ("s", [("/", "u")]))]))
        assert dedup_siblings(pattern).removed == 0

    def test_output_branch_never_merged(self):
        # The starred branch differs canonically from its unstarred twin;
        # dedup must leave both (CIM may still fold the unstarred one).
        pattern = q(("a", [("/", "b*"), ("/", "b")]))
        result = dedup_siblings(pattern)
        assert result.removed == 0
        assert cim_minimize(pattern).pattern.size == 2

    def test_cascade_to_parent_level(self):
        # After collapsing the inner duplicates, the two s-branches become
        # identical and collapse too — in the same sweep.
        pattern = q(("a*", [
            ("/", ("s", [("/", "t"), ("/", "t")])),
            ("/", ("s", [("/", "t")])),
        ]))
        result = dedup_siblings(pattern)
        assert result.pattern.size == 3
        assert result.removed == 3

    def test_not_in_place_by_default(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        dedup_siblings(pattern)
        assert pattern.size == 3

    def test_in_place(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        result = dedup_siblings(pattern, in_place=True)
        assert result.pattern is pattern and pattern.size == 2


TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 8) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    pattern = TreePattern(draw(st.sampled_from(TYPES)))
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        nodes.append(pattern.add_child(parent, draw(st.sampled_from(TYPES)), edge))
    nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))].is_output = True
    return pattern


@settings(max_examples=100, deadline=None)
@given(patterns())
def test_dedup_preserves_equivalence(pattern):
    result = dedup_siblings(pattern)
    assert equivalent(result.pattern, pattern)


@settings(max_examples=80, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=100))
def test_dedup_prefilter_does_not_change_cim_result(pattern, seed):
    assume(pattern.size >= 2)
    bloated = duplicate_random_branch(pattern, seed=seed)
    direct = cim_minimize(bloated).pattern
    deduped = dedup_siblings(bloated).pattern
    piped = cim_minimize(deduped).pattern
    assert piped.isomorphic(direct)


@settings(max_examples=60, deadline=None)
@given(patterns(max_size=6), st.integers(min_value=0, max_value=100))
def test_dedup_catches_exact_duplicates(pattern, seed):
    # Root-starred patterns only: a duplicate of the output-bearing
    # branch is not syntactically identical (the twin lacks the star),
    # which dedup intentionally leaves to CIM.
    assume(pattern.size >= 2)
    pattern = pattern.copy()
    pattern.output_node.is_output = False
    pattern.root.is_output = True
    bloated = duplicate_random_branch(pattern, seed=seed)
    result = dedup_siblings(bloated)
    assert result.removed >= 1  # the duplicated branch is syntactic


@settings(max_examples=60, deadline=None)
@given(patterns())
def test_dedup_idempotent(pattern):
    once = dedup_siblings(pattern).pattern
    twice = dedup_siblings(once).pattern
    assert once.isomorphic(twice)
