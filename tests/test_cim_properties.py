"""Property-based tests (hypothesis) for CIM and the containment oracle.

These check the paper's Section 4 theorems on arbitrary patterns:
equivalence preservation, idempotence, uniqueness of the minimal query up
to isomorphism (order-independence of MEOs), and agreement between the
images-based redundancy test and the direct homomorphism oracle.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro import TreePattern, cim_minimize, equivalent, is_contained_in, is_minimal
from repro.core.containment import find_containment_mapping
from repro.core.edges import EdgeKind
from repro.workloads.querygen import duplicate_random_branch

from conftest import assert_valid_mapping

# ---------------------------------------------------------------------------
# Pattern strategy: a list of (parent_slot, edge, type) draws builds a tree.
# Small type pools force repeated types — the interesting regime.
# ---------------------------------------------------------------------------

TYPES = ["a", "b", "c"]


@st.composite
def patterns(draw, max_size: int = 9) -> TreePattern:
    size = draw(st.integers(min_value=1, max_value=max_size))
    root_type = draw(st.sampled_from(TYPES))
    pattern = TreePattern(root_type)
    nodes = [pattern.root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        edge = EdgeKind.DESCENDANT if draw(st.booleans()) else EdgeKind.CHILD
        node_type = draw(st.sampled_from(TYPES))
        nodes.append(pattern.add_child(parent, node_type, edge))
    starred = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
    starred.is_output = True
    pattern.validate()
    return pattern


@settings(max_examples=120, deadline=None)
@given(patterns())
def test_cim_preserves_equivalence(pattern: TreePattern):
    result = cim_minimize(pattern)
    assert equivalent(result.pattern, pattern)


@settings(max_examples=120, deadline=None)
@given(patterns())
def test_cim_result_is_minimal(pattern: TreePattern):
    result = cim_minimize(pattern)
    assert is_minimal(result.pattern)


@settings(max_examples=80, deadline=None)
@given(patterns())
def test_cim_idempotent(pattern: TreePattern):
    once = cim_minimize(pattern).pattern
    twice = cim_minimize(once).pattern
    assert once.isomorphic(twice)


@settings(max_examples=60, deadline=None)
@given(patterns(), st.integers(min_value=0, max_value=1000))
def test_unique_minimum_across_elimination_orders(pattern: TreePattern, seed: int):
    """Theorem 4.1: every MEO reaches the same query up to isomorphism."""
    reference = cim_minimize(pattern).pattern
    shuffled = cim_minimize(pattern, seed=seed).pattern
    assert reference.isomorphic(shuffled)


@settings(max_examples=60, deadline=None)
@given(patterns(max_size=6), st.integers(min_value=0, max_value=1000))
def test_duplicated_branch_always_removable(pattern: TreePattern, seed: int):
    """Duplicating any subtree must leave the minimal size unchanged."""
    assume(pattern.size >= 2)
    reference = cim_minimize(pattern).pattern
    bloated = duplicate_random_branch(pattern, seed=seed)
    minimized = cim_minimize(bloated).pattern
    assert minimized.size == reference.size
    assert equivalent(minimized, pattern)


@settings(max_examples=80, deadline=None)
@given(patterns(max_size=7))
def test_deletion_certificates_are_homomorphisms(pattern: TreePattern):
    """Each deletion implies an oracle-verifiable hom Q -> Q', so every
    intermediate query stays equivalent (the soundness core of CIM)."""
    result = cim_minimize(pattern)
    mapping = find_containment_mapping(pattern, result.pattern)
    assert mapping is not None
    assert_valid_mapping(pattern, result.pattern, mapping)


@settings(max_examples=80, deadline=None)
@given(patterns(max_size=7), patterns(max_size=7))
def test_containment_is_a_preorder(q1: TreePattern, q2: TreePattern):
    assert is_contained_in(q1, q1)
    if is_contained_in(q1, q2) and is_contained_in(q2, q1):
        # Mutual containment means equal minimal forms.
        m1 = cim_minimize(q1).pattern
        m2 = cim_minimize(q2).pattern
        assert m1.isomorphic(m2)


@settings(max_examples=60, deadline=None)
@given(patterns(max_size=6), patterns(max_size=6), patterns(max_size=6))
def test_containment_transitive(q1, q2, q3):
    if is_contained_in(q1, q2) and is_contained_in(q2, q3):
        assert is_contained_in(q1, q3)


@settings(max_examples=100, deadline=None)
@given(patterns(max_size=8))
def test_minimized_never_larger(pattern: TreePattern):
    assert cim_minimize(pattern).pattern.size <= pattern.size
