"""Tests for the sharded serving tier (:mod:`repro.shard`).

Covers the consistent-hash ring (determinism, balance, minimal
redistribution), histogram/stats aggregation, shard-count resolution,
the 2-shard differential against the serial ``minimize`` loop (the
paper's uniqueness theorem makes byte-identical the only acceptable
answer), rolling restarts mid-stream, backpressure and deadline
semantics through the fleet, the JSON-lines protocol over a sharded
backend, and — under ``-m chaos`` — seeded shard-kill recovery.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import MinimizeOptions, QueryResult
from repro.constraints.model import parse_constraints
from repro.core.pipeline import minimize
from repro.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.parsing.sexpr import to_sexpr
from repro.parsing.xpath import parse_xpath
from repro.resilience.faults import FaultPlan
from repro.service.protocol import serve_tcp
from repro.service.service import LatencyHistogram, ServiceStats
from repro.shard import (
    SHARD_POLICIES,
    HashRing,
    ShardManager,
    resolve_shards,
)
from repro.workloads import batch_workload

CONSTRAINTS = parse_constraints("a -> b; b ->> c; a ~ c")


def run(coro):
    """Drive one async test body to completion."""
    return asyncio.run(coro)


def sexprs(results) -> "list[str]":
    return [to_sexpr(r.pattern) for r in results]


def workload(count: int, *, distinct: int = 12, seed: int = 17):
    """A duplicated fig7 stream plus its serial-loop expected outputs."""
    queries, constraints = batch_workload(
        count, kind="fig7", distinct=distinct, size=20, seed=seed
    )
    expected = [to_sexpr(minimize(q, constraints).pattern) for q in queries]
    return queries, constraints, expected


class TestHashRing:
    """Deterministic, balanced, minimally-redistributing routing."""

    KEYS = [f"fingerprint-{i:04d}" for i in range(600)]

    def test_lookup_is_deterministic_across_instances(self):
        a, b = HashRing([0, 1, 2, 3]), HashRing([3, 1, 0, 2])
        assert [a.lookup(k) for k in self.KEYS] == [b.lookup(k) for k in self.KEYS]

    def test_balance_within_reason(self):
        ring = HashRing([0, 1, 2, 3])
        shares = {m: 0 for m in range(4)}
        for key in self.KEYS:
            shares[ring.lookup(key)] += 1
        for member, count in shares.items():
            share = count / len(self.KEYS)
            assert 0.10 <= share <= 0.45, f"member {member} owns {share:.0%}"

    def test_removal_only_moves_the_removed_members_keys(self):
        ring = HashRing([0, 1, 2, 3])
        before = {k: ring.lookup(k) for k in self.KEYS}
        ring.remove(2)
        for key, owner in before.items():
            if owner == 2:
                assert ring.lookup(key) != 2
            else:
                assert ring.lookup(key) == owner, "a surviving member's key moved"

    def test_rejoin_restores_the_original_mapping(self):
        ring = HashRing([0, 1, 2, 3])
        before = {k: ring.lookup(k) for k in self.KEYS}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.lookup(k) for k in self.KEYS} == before

    def test_membership_operations(self):
        ring = HashRing()
        assert ring.lookup("anything") is None and len(ring) == 0
        ring.add(7)
        ring.add(7)  # idempotent
        assert 7 in ring and len(ring) == 1 and ring.members == {7}
        assert ring.lookup("anything") == 7
        ring.remove(3)  # idempotent on non-members
        ring.remove(7)
        assert len(ring) == 0 and ring.lookup("anything") is None

    def test_replicas_validation(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestResolveShards:
    def test_auto_reserves_a_core_for_the_front_end(self):
        assert resolve_shards("auto", cpu_count=8) == 7
        assert resolve_shards("auto", cpu_count=3) == 2

    def test_auto_degrades_to_single_process_below_two_shards(self):
        assert resolve_shards("auto", cpu_count=1) == 0
        assert resolve_shards("auto", cpu_count=2) == 0

    def test_explicit_counts(self):
        assert resolve_shards(None) == 0
        assert resolve_shards(0) == 0
        assert resolve_shards(1) == 0  # a 1-shard wrapper is never built
        assert resolve_shards(4) == 4
        with pytest.raises(ValueError):
            resolve_shards(-1)


class TestLatencyHistogramMerge:
    """Satellite: fleet-wide percentiles need bucket-wise merging."""

    @staticmethod
    def _filled(samples) -> LatencyHistogram:
        hist = LatencyHistogram()
        for value in samples:
            hist.observe(value)
        return hist

    def test_merge_identity(self):
        hist = self._filled([0.001, 0.01, 0.1])
        before = (hist.count, hist.sum_seconds, hist.quantile(0.5))
        hist.merge(LatencyHistogram())
        assert (hist.count, hist.sum_seconds, hist.quantile(0.5)) == before

    def test_merge_is_commutative(self):
        left_samples = [0.0005, 0.002, 0.02, 0.4]
        right_samples = [0.001, 0.05, 1.5]
        a = self._filled(left_samples).merge(self._filled(right_samples))
        b = self._filled(right_samples).merge(self._filled(left_samples))
        assert a.count == b.count == len(left_samples) + len(right_samples)
        assert a.sum_seconds == pytest.approx(b.sum_seconds)
        assert a.max_seconds == pytest.approx(b.max_seconds)
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == pytest.approx(b.quantile(q))

    def test_merge_sums_like_one_big_histogram(self):
        left, right = [0.001] * 10, [0.2] * 10
        merged = self._filled(left).merge(self._filled(right))
        combined = self._filled(left + right)
        assert merged.count == combined.count
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == pytest.approx(combined.quantile(q))

    def test_mismatched_bounds_raise(self):
        class CoarseHistogram(LatencyHistogram):
            BOUNDS = (0.1, 1.0, float("inf"))

        with pytest.raises(ValueError, match="bucket bounds"):
            LatencyHistogram().merge(CoarseHistogram())
        with pytest.raises(ValueError, match="bucket bounds"):
            CoarseHistogram().merge(LatencyHistogram())


class TestServiceStatsAggregate:
    def test_aggregate_sums_and_merges(self):
        a, b = ServiceStats(), ServiceStats()
        a.submitted, a.completed, a.queue_high_watermark = 10, 9, 5
        b.submitted, b.completed, b.queue_high_watermark = 4, 4, 8
        a.latency.observe(0.01)
        b.latency.observe(0.5)
        a.backend_counters = {"cache_hits": 3, "queries": 9, "hit_rate": 0.33}
        b.backend_counters = {"cache_hits": 1, "queries": 4}
        out = ServiceStats.aggregate([a, b])
        assert out.submitted == 14 and out.completed == 13
        assert out.queue_high_watermark == 8  # max, not sum
        assert out.latency.count == 2
        assert out.latency.max_seconds == pytest.approx(0.5)
        assert out.backend_counters["cache_hits"] == 4
        assert out.backend_counters["queries"] == 13

    def test_aggregate_of_nothing_is_empty(self):
        out = ServiceStats.aggregate([])
        assert out.submitted == 0 and out.latency.count == 0


class TestShardManagerValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardManager(shards=0)
        with pytest.raises(ValueError):
            ShardManager(shards=2, policy="nope")
        with pytest.raises(ValueError):
            ShardManager(shards=2, max_batch_size=0)
        with pytest.raises(ValueError):
            ShardManager(shards=4, max_queue=2)
        assert set(SHARD_POLICIES) == {"affinity", "overflow", "round-robin"}

    def test_submit_before_start_is_closed(self):
        async def scenario():
            manager = ShardManager(constraints=CONSTRAINTS, shards=2)
            with pytest.raises(ServiceClosedError):
                await manager.submit(parse_xpath("a/b[c][c]"))

        run(scenario())


class TestShardDifferential:
    """Fleet == serial minimize loop, byte for byte, under concurrency."""

    def test_240_query_concurrent_stream_matches_serial(self):
        queries, constraints, expected = workload(240)

        async def scenario():
            async with ShardManager(
                MinimizeOptions(),
                constraints=constraints,
                shards=2,
                max_queue=512,
            ) as manager:
                results = await asyncio.gather(
                    *(manager.submit(q) for q in queries)
                )
                counters = await manager.counters_async()
                return results, counters

        results, counters = run(scenario())
        assert sexprs(results) == expected
        assert all(isinstance(r, QueryResult) for r in results)
        assert counters["completed"] == 240
        assert counters["shards"] == 2
        # Both shards actually served work (the ring split the space).
        assert counters["shard0_queries"] > 0
        assert counters["shard1_queries"] > 0
        # Affinity kept the duplicated structures hitting the memo.
        assert counters["cache_hits"] > 0

    def test_every_policy_serves_identically(self):
        queries, constraints, expected = workload(60, distinct=8, seed=23)

        async def scenario(policy):
            async with ShardManager(
                MinimizeOptions(),
                constraints=constraints,
                shards=2,
                policy=policy,
                max_queue=256,
            ) as manager:
                return await manager.submit_many(queries)

        for policy in SHARD_POLICIES:
            assert sexprs(run(scenario(policy))) == expected, policy

    def test_rolling_restart_mid_stream_stays_identical(self):
        queries, constraints, expected = workload(240, seed=29)

        async def scenario():
            async with ShardManager(
                MinimizeOptions(),
                constraints=constraints,
                shards=2,
                max_queue=512,
            ) as manager:
                first = asyncio.ensure_future(
                    manager.submit_many(queries[:120])
                )
                await asyncio.sleep(0.01)  # let the stream get going
                restarted = await manager.rolling_restart()
                second = await manager.submit_many(queries[120:])
                return await first, second, restarted, manager.shard_restarts

        first, second, restarted, restarts = run(scenario())
        assert sexprs(first) + sexprs(second) == expected
        assert restarted == 2 and restarts == 2

    def test_warm_replay_preserves_hit_rate_after_restart(self):
        queries, constraints, _ = workload(60, distinct=6, seed=31)

        async def scenario():
            async with ShardManager(
                MinimizeOptions(),
                constraints=constraints,
                shards=2,
                max_queue=256,
            ) as manager:
                await manager.submit_many(queries)
                await manager.rolling_restart()
                before = await manager.counters_async()
                await manager.submit_many(queries)
                after = await manager.counters_async()
                return before, after

        before, after = run(scenario())
        served = after["queries"] - before["queries"]
        hits = after["cache_hits"] - before["cache_hits"]
        # The warm replay repopulated the fingerprint memos, so the
        # replayed stream is served overwhelmingly from cache.
        assert served > 0
        assert hits / served >= 0.8, f"post-restart hit rate {hits}/{served}"


class TestShardSemantics:
    """Service-contract semantics (deadlines, backpressure, shutdown)
    through the sharded front-end."""

    def test_expired_deadline_is_shed_at_submission(self):
        async def scenario():
            async with ShardManager(
                constraints=CONSTRAINTS, shards=2
            ) as manager:
                with pytest.raises(DeadlineExceededError):
                    await manager.submit(parse_xpath("a/b[c][c]"), deadline=0)
                assert manager.stats.sheds == 1

        run(scenario())

    def test_full_fleet_rejects_with_coherent_retry_after(self):
        queries, constraints, _ = workload(64, seed=37)

        async def scenario():
            async with ShardManager(
                MinimizeOptions(),
                constraints=constraints,
                shards=2,
                max_queue=4,  # 2 pending per shard
            ) as manager:
                outcomes = await asyncio.gather(
                    *(manager.submit(q) for q in queries),
                    return_exceptions=True,
                )
                return outcomes, manager.stats.rejected

        outcomes, rejected = run(scenario())
        overloads = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        served = [o for o in outcomes if isinstance(o, QueryResult)]
        assert overloads, "nothing was rejected at max_queue=4 under a 64-burst"
        assert served, "backpressure must not reject everything"
        assert rejected == len(overloads)
        assert all(o.retry_after > 0 for o in overloads)

    def test_aclose_rejects_further_submissions(self):
        async def scenario():
            manager = ShardManager(constraints=CONSTRAINTS, shards=2)
            await manager.start()
            await manager.aclose()
            with pytest.raises(ServiceClosedError):
                await manager.submit(parse_xpath("a/b[c][c]"))

        run(scenario())


class TestShardProtocol:
    """The JSON-lines protocol multiplexes over the sharded backend."""

    @staticmethod
    async def _serve(service):
        stop = asyncio.Event()
        bound: dict = {}
        task = asyncio.ensure_future(
            serve_tcp(
                service, "127.0.0.1", 0, stop=stop,
                on_bound=lambda p: bound.update(port=p),
            )
        )
        while "port" not in bound:
            await asyncio.sleep(0.005)
        return stop, task, bound["port"]

    def test_minimize_stats_restart_over_tcp(self):
        async def scenario():
            async with ShardManager(constraints=CONSTRAINTS, shards=2) as manager:
                stop, task, port = await self._serve(manager)
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                requests = [
                    {"op": "minimize", "query": "a/b[c][c]", "id": 1},
                    {"op": "minimize", "query": "a[b][b]", "id": 2},
                    {"op": "stats", "id": 3},
                    {"op": "restart", "id": 4},
                    {"op": "ping", "id": 5},
                ]
                for request in requests:
                    writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                responses = {}
                for _ in requests:
                    line = await asyncio.wait_for(reader.readline(), 30)
                    response = json.loads(line)
                    responses[response["id"]] = response
                writer.close()
                stop.set()
                await task
                return responses

        responses = run(scenario())
        assert responses[1]["result"]["minimized"] == "a/b[c]"
        # a -> b makes the b-child predicates redundant: a[b][b] == a.
        assert responses[2]["result"]["minimized"] == "a"
        assert responses[3]["result"]["shards"] == 2
        assert "shard0_queries" in responses[3]["result"]
        assert responses[4]["result"]["restarted"] == 2
        assert responses[5]["result"]["pong"] is True

    def test_restart_op_rejected_on_single_process_backend(self):
        from repro.service import MinimizationService
        from repro.service.protocol import handle_line

        async def scenario():
            async with MinimizationService(constraints=CONSTRAINTS) as service:
                return await handle_line(
                    service, json.dumps({"op": "restart", "id": 9})
                )

        response = run(scenario())
        assert response["ok"] is False
        assert "sharded" in response["error"]["message"]


@pytest.mark.chaos
class TestShardChaos:
    """Seeded shard-kill chaos: the fleet loses processes mid-stream and
    the served answers must not change by one byte."""

    def test_seeded_shard_kill_is_byte_identical(self):
        queries, constraints, expected = workload(120, seed=41)
        plan = FaultPlan.seeded(
            1234, kinds=[("shard.kill", "kill")], window=40, faults_per_kind=2
        )

        async def scenario():
            options = MinimizeOptions(fault_plan=plan)
            async with ShardManager(
                options, constraints=constraints, shards=2, max_queue=512
            ) as manager:
                results = await asyncio.gather(
                    *(manager.submit(q) for q in queries)
                )
                return results, manager

        results, manager = run(scenario())
        assert sexprs(results) == expected
        assert manager.shard_restarts > 0, "no shard was ever killed"
        assert manager.chunks_retried > 0, "no lost request was requeued"
        fired = manager.fault_events()
        assert fired and all(point == "shard.kill" for point, _, _ in fired)

    def test_shard_kill_plus_rolling_restart_mid_stream(self):
        queries, constraints, expected = workload(120, seed=43)
        plan = FaultPlan.seeded(
            77, kinds=[("shard.kill", "kill")], window=30, faults_per_kind=1
        )

        async def scenario():
            options = MinimizeOptions(fault_plan=plan)
            async with ShardManager(
                options, constraints=constraints, shards=2, max_queue=512
            ) as manager:
                first = asyncio.ensure_future(
                    manager.submit_many(queries[:60])
                )
                await asyncio.sleep(0.01)
                await manager.rolling_restart()
                second = await manager.submit_many(queries[60:])
                return await first, second, manager

        first, second, manager = run(scenario())
        assert sexprs(first) + sexprs(second) == expected
        # Kills (unplanned) and the rolling restart (planned) both count.
        assert manager.shard_restarts >= 3


class TestSeenFpsBound:
    """The per-shard routing memory must stay bounded on unbounded
    fingerprint streams."""

    def test_lru_set_unit(self):
        from repro.shard.manager import _LruSet

        lru = _LruSet(3)
        for fp in ("a", "b", "c"):
            lru.add(fp)
        assert len(lru) == 3 and "a" in lru
        lru.add("a")  # touch: now the LRU order is b, c, a
        lru.add("d")  # evicts b
        assert "b" not in lru
        assert all(fp in lru for fp in ("c", "a", "d"))
        assert len(lru) == 3
        lru.clear()
        assert len(lru) == 0 and "a" not in lru

    def test_handles_never_exceed_the_cap(self):
        cap = 8
        queries, constraints, expected = workload(60, distinct=30, seed=37)

        async def scenario():
            async with ShardManager(
                MinimizeOptions(),
                constraints=constraints,
                shards=2,
                policy="overflow",  # the policy that consults seen_fps
                max_queue=256,
                seen_fps_cap=cap,
            ) as manager:
                results = await manager.submit_many(queries)
                sizes = [len(h.seen_fps) for h in manager._handles]
                return results, sizes

        results, sizes = run(scenario())
        # 30 distinct structures flowed through 2 shards: without the
        # bound each handle would hold ~15+; with it, never above cap.
        assert all(size <= cap for size in sizes)
        assert sum(sizes) > 0
        # Bounding routing memory must not change served answers.
        assert sexprs(results) == expected


class TestShardStore:
    """The persistent store through the sharded tier: workers spool
    read-only, the manager is the single writer."""

    def test_spooled_rows_reach_the_managers_store(self, tmp_path):
        path = str(tmp_path / "fleet.db")
        queries, constraints, expected = workload(40, distinct=6, seed=41)

        async def scenario():
            async with ShardManager(
                MinimizeOptions(store_path=path),
                constraints=constraints,
                shards=2,
                max_queue=256,
            ) as manager:
                results = await manager.submit_many(queries)
                counters = await manager.counters_async()
                return results, counters

        results, counters = run(scenario())
        assert sexprs(results) == expected
        # Workers spooled their memo entries; the manager applied them.
        assert counters["manager_store_applied"] > 0

        # The written store warm-starts a fresh (non-sharded) session to
        # the exact same bytes.
        from repro.api import Session
        from repro.core.oracle_cache import reset_global_cache

        reset_global_cache()
        with Session(
            MinimizeOptions(store_path=path), constraints=constraints
        ) as session:
            warm = sexprs(session.minimize_many(queries))
            warm_counters = session.counters()
        assert warm == expected
        assert warm_counters["store_warm_loaded"] > 0
