"""Tests for the public minimize() pipeline."""

from __future__ import annotations

from repro import TreePattern, acim_minimize, minimize
from repro.constraints import closure, parse_constraints
from repro.workloads.paper_queries import (
    ARTICLE_TITLE,
    SECTION_PARAGRAPH,
    figure2_a,
    figure2_e,
)


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestPipeline:
    def test_no_constraints_runs_plain_cim(self):
        pattern = q(("a*", [("/", "b"), ("/", "b")]))
        result = minimize(pattern)
        assert result.cdm is None
        assert result.pattern.size == 2
        assert result.removed_count == 1

    def test_with_constraints_runs_both_stages(self):
        result = minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH])
        assert result.cdm is not None and result.acim is not None
        assert result.pattern.isomorphic(figure2_e())

    def test_prefilter_toggle_same_result(self):
        ics = [ARTICLE_TITLE, SECTION_PARAGRAPH]
        with_filter = minimize(figure2_a(), ics, use_cdm_prefilter=True)
        without = minimize(figure2_a(), ics, use_cdm_prefilter=False)
        assert with_filter.pattern.isomorphic(without.pattern)
        assert without.cdm is None

    def test_matches_direct_acim(self):
        ics = [ARTICLE_TITLE, SECTION_PARAGRAPH]
        assert minimize(figure2_a(), ics).pattern.isomorphic(
            acim_minimize(figure2_a(), ics).pattern
        )

    def test_counts_add_up(self):
        result = minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH])
        assert result.removed_count == figure2_a().size - result.pattern.size
        assert result.input_size == figure2_a().size

    def test_total_seconds_positive(self):
        result = minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH])
        assert result.total_seconds > 0

    def test_summary_mentions_sizes(self):
        result = minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH])
        text = result.summary()
        assert "7 -> 3" in text

    def test_closed_repo_shortcut(self):
        repo = closure([ARTICLE_TITLE, SECTION_PARAGRAPH])
        result = minimize(figure2_a(), repo)
        assert result.closure_seconds == 0.0 or result.pattern.size == 3

    def test_input_untouched(self):
        pattern = figure2_a()
        minimize(pattern, [ARTICLE_TITLE])
        assert pattern.size == 7

    def test_constraint_strings_via_parse(self):
        result = minimize(
            q(("Book*", [("/", "Title")])), parse_constraints("Book -> Title")
        )
        assert result.pattern.size == 1
