"""Differential tests for live constraint churn.

The contract under test: after *any* sequence of live
``update_constraints`` calls, every answer a long-lived session (or
sharded fleet) serves is byte-identical to a cold session built
directly on the post-churn constraint repository. Precise invalidation
may keep whatever it can prove safe (the closure-free oracle tier, the
persistent store's oracle rows) and must drop the rest (closure-keyed
replay memos) — and none of that is allowed to show up in served
bytes.

Covers 200+ seeded add/drop sequences on a warm session (with and
without the persistent store attached), churn racing in-flight
requests on the sharded tier, the idempotence of re-applied updates,
and the store-counter snapshot across ``close()``.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.api import MinimizeOptions, Session
from repro.core.oracle_cache import global_cache, reset_global_cache
from repro.parsing.sexpr import to_sexpr
from repro.workloads.batchgen import isomorphic_shuffle
from repro.workloads.icgen import relevant_constraints
from repro.workloads.querygen import random_query


def norm(result) -> "tuple[str, tuple]":
    return to_sexpr(result.pattern), tuple(map(tuple, result.eliminated))


def make_pool(base, *, seed: int, count: int = 4):
    """Distinct triggering constraints over the query's own types."""
    types = sorted(base.node_types())
    target_pool = types if len(types) > 1 else None
    pool = []
    seen = set()
    attempt = 0
    while len(pool) < count and attempt < count * 10:
        for c in relevant_constraints(
            base, 2, target_pool=target_pool, seed=seed + attempt
        ):
            if c not in seen:
                seen.add(c)
                pool.append(c)
        attempt += 1
    return pool[:count]


def churn_sequence(session, base, pool, rng, *, toggles: int, probes: int):
    """Random add/drop toggles; after each, served answers must match a
    cold session on the post-churn base. Returns total invalidations."""
    active = set()
    invalidated = 0
    for _ in range(toggles):
        constraint = rng.choice(pool)
        if constraint in active:
            update = session.update_constraints(drop=[constraint])
        else:
            update = session.update_constraints(add=[constraint])
        # Maintain the mirror from what the update *reports*: adding a
        # constraint the closure already derives is a no-op that never
        # joins the base, so it must not join the mirror either.
        active.update(update.added)
        active.difference_update(update.dropped)
        invalidated += update.invalidated_replays
        assert update.new_digest == session.constraints_digest()
        with Session(MinimizeOptions(), constraints=sorted(active)) as cold:
            assert update.new_digest == cold.constraints_digest()
            for probe_index in range(probes):
                query = isomorphic_shuffle(base, seed=rng.randrange(1 << 30))
                assert norm(session.minimize(query)) == norm(cold.minimize(query)), (
                    f"served bytes diverged from cold session after churn "
                    f"(active={sorted(c.notation() for c in active)})"
                )
    return invalidated


class TestDifferentialChurn:
    def test_200_seeded_sequences(self):
        """Warm sessions under 200 random add/drop sequences never serve
        a byte different from the cold post-churn reference."""
        total_invalidated = 0
        for seed in range(200):
            rng = random.Random(seed)
            base = random_query(12, seed=seed)
            pool = make_pool(base, seed=seed * 7 + 1)
            if not pool:
                continue
            with Session(MinimizeOptions()) as session:
                # Warm the replay memo pre-churn so invalidation has
                # something to be precise about.
                session.minimize(isomorphic_shuffle(base, seed=seed))
                total_invalidated += churn_sequence(
                    session, base, pool, rng, toggles=3, probes=1
                )
        assert total_invalidated > 0, (
            "no sequence ever invalidated a replay — the differential "
            "suite is not exercising precise invalidation"
        )

    def test_sequences_with_persistent_store(self, tmp_path):
        """Same contract with the content-addressed store attached: the
        store's closure-keyed replays must never leak across churn."""
        for seed in range(8):
            rng = random.Random(1000 + seed)
            base = random_query(12, seed=400 + seed)
            pool = make_pool(base, seed=seed * 13 + 5)
            if not pool:
                continue
            options = MinimizeOptions(store_path=str(tmp_path / f"s{seed}.db"))
            with Session(options) as session:
                session.minimize(isomorphic_shuffle(base, seed=seed))
                churn_sequence(session, base, pool, rng, toggles=4, probes=2)

    def test_oracle_tier_survives_drop(self):
        """The closure-free containment-oracle tier is not invalidated
        by churn — and keeping it never changes served bytes."""
        reset_global_cache()
        try:
            base = random_query(14, seed=77)
            pool = make_pool(base, seed=99)
            assert pool
            from repro.core.containment import is_contained_in

            variant = isomorphic_shuffle(base, seed=1)
            is_contained_in(base, variant)
            is_contained_in(variant, base)
            before = len(global_cache())
            assert before > 0
            with Session(MinimizeOptions()) as session:
                update = session.update_constraints(add=[pool[0]])
                assert update.surviving_oracle_entries == len(global_cache())
                assert len(global_cache()) == before
                with Session(MinimizeOptions(), constraints=[pool[0]]) as cold:
                    assert norm(session.minimize(variant)) == norm(
                        cold.minimize(variant)
                    )
        finally:
            reset_global_cache()

    def test_idempotent_reapply(self):
        base = random_query(12, seed=5)
        pool = make_pool(base, seed=21)
        assert pool
        with Session(MinimizeOptions()) as session:
            first = session.update_constraints(add=[pool[0]])
            assert first.changed
            again = session.update_constraints(add=[pool[0]])
            assert not again.changed
            assert again.mode == "noop"
            assert again.new_digest == first.new_digest
            absent = session.update_constraints(drop=[pool[1]])
            assert not absent.changed

    def test_update_after_close_rejected(self):
        session = Session(MinimizeOptions())
        session.close()
        with pytest.raises(Exception):
            session.update_constraints(add=["a -> b"])


class TestShardedChurn:
    def test_churn_races_inflight_requests(self):
        """Fire a constraint update while a burst of requests is in
        flight on a 2-shard fleet; every answer served afterwards must
        match the cold post-churn reference, and the epoch must bump."""
        from repro.shard import ShardManager

        base = random_query(14, seed=31)
        pool = make_pool(base, seed=63)
        assert pool

        async def scenario():
            manager = ShardManager(MinimizeOptions(), constraints=[], shards=2)
            await manager.start()
            try:
                inflight = [
                    asyncio.ensure_future(
                        manager.submit(isomorphic_shuffle(base, seed=s))
                    )
                    for s in range(8)
                ]
                update = await manager.update_constraints(add=[pool[0]])
                await asyncio.gather(*inflight)
                assert update["changed"] is True
                assert update["shards_updated"] == 2
                assert update["constraint_epoch"] == 1
                post = [
                    await manager.submit(isomorphic_shuffle(base, seed=100 + s))
                    for s in range(4)
                ]
                counters = manager.counters()
                assert counters["constraint_epoch"] == 1
                return update, post
            finally:
                await manager.aclose()

        update, post = asyncio.run(scenario())
        with Session(MinimizeOptions(), constraints=[pool[0]]) as cold:
            assert update["new_digest"] == cold.constraints_digest()
            for s, served in enumerate(post):
                query = isomorphic_shuffle(base, seed=100 + s)
                assert norm(served) == norm(cold.minimize(query))

    def test_shard_digests_agree(self):
        """Every shard acks with the manager's digest or the update
        raises; a successful update leaves the fleet consistent."""
        from repro.shard import ShardManager

        base = random_query(12, seed=41)
        pool = make_pool(base, seed=83, count=2)
        assert len(pool) == 2

        async def scenario():
            manager = ShardManager(
                MinimizeOptions(), constraints=[pool[0]], shards=2
            )
            await manager.start()
            try:
                update = await manager.update_constraints(
                    add=[pool[1]], drop=[pool[0]]
                )
                info = manager.constraints_info()
                assert info["digest"] == update["new_digest"]
                assert info["constraint_epoch"] == 1
                return update
            finally:
                await manager.aclose()

        update = asyncio.run(scenario())
        with Session(MinimizeOptions(), constraints=[pool[1]]) as cold:
            assert update["new_digest"] == cold.constraints_digest()


class TestCounterSnapshots:
    def test_store_counters_survive_close(self, tmp_path):
        """Regression: ``counters()`` after ``close()`` must keep the
        final store tallies instead of dropping them to zero."""
        options = MinimizeOptions(store_path=str(tmp_path / "snap.db"))
        session = Session(options)
        try:
            session.minimize(random_query(12, seed=3))
        finally:
            session.close()
        # The write-behind queue flushes during close(); the snapshot
        # must be taken after that flush and then stay frozen.
        after = session.counters()
        assert after.get("store_writes", 0) > 0
        assert session.counters() == after

    def test_ic_update_counters_reported(self):
        base = random_query(12, seed=9)
        pool = make_pool(base, seed=17)
        assert pool
        with Session(MinimizeOptions()) as session:
            session.minimize(base)
            update = session.update_constraints(add=[pool[0]])
            assert update.invalidated_replays >= 1  # the warmed memo entry
            assert update.closure_size >= 1
            payload = update.to_json()
            assert payload["added"] == [pool[0].notation()]
            assert payload["mode"] in ("incremental", "full")
