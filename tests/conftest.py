"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import TreePattern
from repro.constraints.closure import closure
from repro.constraints.repository import coerce_repository
from repro.core.containment import equivalent, find_containment_mapping
from repro.core.edges import EdgeKind
from repro.data.generate import random_satisfying_tree
from repro.matching.evaluator import agree_on
from repro.workloads.querygen import random_query


def assert_valid_mapping(source: TreePattern, target: TreePattern, mapping: dict[int, int]):
    """Assert that ``mapping`` is a genuine containment mapping."""
    for v in source.nodes():
        assert v.id in mapping, f"node #{v.id} unmapped"
        u = target.node(mapping[v.id])
        assert u.has_type(v.type), f"type mismatch at #{v.id}"
        if v.is_output:
            assert u.is_output, "output node must map to the output node"
        if v.parent is not None:
            pu = target.node(mapping[v.parent.id])
            if v.edge is EdgeKind.CHILD:
                assert u.parent is pu and u.edge is EdgeKind.CHILD, (
                    f"c-edge broken at #{v.id}"
                )
            else:
                assert target.is_ancestor(pu, u), f"d-edge broken at #{v.id}"


def assert_equivalent(q1: TreePattern, q2: TreePattern, context: str = ""):
    """Assert absolute equivalence via the containment oracle, with a
    readable failure message."""
    assert equivalent(q1, q2), (
        f"queries not equivalent {context}\n--- q1 ---\n{q1.to_ascii()}"
        f"\n--- q2 ---\n{q2.to_ascii()}"
    )


def assert_semantically_equal_under(q1, q2, constraints, *, seeds=range(4), size=40):
    """Assert both queries answer identically on several random databases
    satisfying the constraints."""
    repo = closure(coerce_repository(constraints))
    types = sorted(q1.node_types() | q2.node_types() | repo.types())
    for seed in seeds:
        db = random_satisfying_tree(types, repo, size=size, seed=seed)
        assert agree_on(q1, q2, db), (
            f"answer sets differ on satisfying database (seed {seed})\n"
            f"--- q1 ---\n{q1.to_ascii()}\n--- q2 ---\n{q2.to_ascii()}\n"
            f"--- db ---\n{db.to_ascii()}"
        )


def hom_exists(source: TreePattern, target: TreePattern) -> bool:
    """Convenience wrapper returning containment-mapping existence."""
    return find_containment_mapping(source, target) is not None


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20010521)  # SIGMOD 2001 conference date


@pytest.fixture
def random_queries() -> list[TreePattern]:
    """A deterministic corpus of small random patterns."""
    return [random_query(size, seed=seed) for seed in range(6) for size in (3, 5, 8, 12)]
