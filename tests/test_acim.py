"""Tests for Algorithm ACIM (minimization under constraints)."""

from __future__ import annotations

from repro import TreePattern, acim_minimize, amr, cim_minimize
from repro.constraints import (
    closure,
    co_occurrence,
    parse_constraints,
    required_child,
    required_descendant,
)
from repro.core.ic_containment import equivalent_under
from repro.workloads.paper_queries import (
    ARTICLE_TITLE,
    FIGURE2_FG_CONSTRAINTS,
    SECTION_PARAGRAPH,
    figure2_a,
    figure2_d,
    figure2_e,
    figure2_f,
    figure2_g,
)


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


class TestBasics:
    def test_no_constraints_equals_cim(self, random_queries):
        for pattern in random_queries:
            via_acim = acim_minimize(pattern).pattern
            via_cim = cim_minimize(pattern).pattern
            assert via_acim.isomorphic(via_cim)

    def test_direct_child_ic_removal(self):
        pattern = q(("Book*", [("/", "Title")]))
        result = acim_minimize(pattern, [required_child("Book", "Title")])
        assert result.pattern.size == 1
        assert result.eliminated[0][1] == "Title"

    def test_direct_descendant_ic_removal(self):
        pattern = q(("Book*", [("//", "LastName")]))
        result = acim_minimize(pattern, [required_descendant("Book", "LastName")])
        assert result.pattern.size == 1

    def test_child_ic_does_not_remove_c_child_of_wrong_kind(self):
        # a ->> b guarantees a descendant, not a child: /b must stay.
        pattern = q(("a*", [("/", "b")]))
        result = acim_minimize(pattern, [required_descendant("a", "b")])
        assert result.pattern.size == 2

    def test_input_never_mutated(self):
        pattern = q(("Book*", [("/", "Title")]))
        acim_minimize(pattern, [required_child("Book", "Title")])
        assert pattern.size == 2

    def test_no_extra_types_leak_into_result(self):
        result = acim_minimize(figure2_f(), FIGURE2_FG_CONSTRAINTS)
        assert all(not n.extra_types for n in result.pattern.nodes())
        assert all(not n.temporary for n in result.pattern.nodes())


class TestPaperChains:
    def test_figure2_a_to_e(self):
        result = acim_minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH])
        assert result.pattern.isomorphic(figure2_e())

    def test_figure2_d_needs_augmentation(self):
        ics = [SECTION_PARAGRAPH]
        assert cim_minimize(figure2_d()).removed_count == 0
        result = acim_minimize(figure2_d(), ics)
        assert result.pattern.isomorphic(figure2_e())
        assert result.virtual_count >= 1

    def test_figure2_f_to_g_co_occurrence(self):
        result = acim_minimize(figure2_f(), FIGURE2_FG_CONSTRAINTS)
        assert result.pattern.isomorphic(figure2_g())

    def test_results_equivalent_under_ics(self):
        for pattern, ics in [
            (figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH]),
            (figure2_d(), [SECTION_PARAGRAPH]),
            (figure2_f(), FIGURE2_FG_CONSTRAINTS),
        ]:
            result = acim_minimize(pattern, ics)
            assert equivalent_under(result.pattern, pattern, ics)


class TestAgainstStrategyAlgebra:
    def test_matches_amr_on_paper_queries(self):
        cases = [
            (figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH]),
            (figure2_d(), [SECTION_PARAGRAPH]),
            (figure2_f(), FIGURE2_FG_CONSTRAINTS),
        ]
        for pattern, ics in cases:
            assert acim_minimize(pattern, ics).pattern.isomorphic(amr(pattern, ics))

    def test_matches_amr_on_random_queries(self, random_queries, rng):
        for pattern in random_queries[:12]:
            types = sorted(pattern.node_types())
            ics = []
            for _ in range(3):
                s, t = rng.choice(types), rng.choice(types)
                if s != t:
                    ics.append(required_descendant(s, t))
            via_acim = acim_minimize(pattern, ics).pattern
            via_amr = amr(pattern, ics)
            assert via_acim.isomorphic(via_amr), (
                f"{pattern.to_ascii()}\nICs: {[c.notation() for c in ics]}\n"
                f"acim:\n{via_acim.to_ascii()}\namr:\n{via_amr.to_ascii()}"
            )


class TestStats:
    def test_phase_timings_populated(self):
        result = acim_minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH])
        assert result.total_seconds > 0
        assert result.tables_seconds >= 0
        assert result.images_stats.redundancy_checks > 0

    def test_closed_repo_skips_closure(self):
        repo = closure([ARTICLE_TITLE, SECTION_PARAGRAPH])
        result = acim_minimize(figure2_a(), repo)
        assert result.pattern.isomorphic(figure2_e())

    def test_seed_does_not_change_result(self):
        for seed in range(5):
            result = acim_minimize(figure2_a(), [ARTICLE_TITLE, SECTION_PARAGRAPH], seed=seed)
            assert result.pattern.isomorphic(figure2_e())


class TestCoOccurrenceSubtleties:
    def test_directionality_respected(self):
        # Employee ~ Person does NOT let a PermEmp branch absorb an
        # Employee branch without the PermEmp ~ Employee fact.
        pattern = figure2_f()
        only_projects = [co_occurrence("DBproject", "Project")]
        result = acim_minimize(pattern, only_projects)
        assert result.pattern.size == pattern.size

    def test_multi_hop_co_occurrence(self):
        ics = parse_constraints("Manager ~ Employee; Employee ~ Person")
        pattern = q(("Org*", [("//", "Person"), ("//", "Manager")]))
        result = acim_minimize(pattern, ics)
        # The Person branch folds onto the Manager (who is a Person).
        assert result.pattern.size == 2
        assert "Manager" in result.pattern.node_types()


class TestWitnessCompleteAugmentation:
    """Co-occurrence + required-child chains need multi-level witnesses:
    a guaranteed child can be multi-typed and carry guarantees of its own,
    so it may serve as the image of a *non-leaf* real node (regression for
    a minimality gap found by the brute-force property test)."""

    ICS = parse_constraints("a -> b; b -> c; b ~ c")

    def test_deep_witness_absorbs_child_chain(self):
        # a's guaranteed b-child is also a c (b ~ c) and has its own
        # c-child (b -> c), so c[/c] folds onto the witness subtree.
        pattern = q(("a*", [("/", ("c", [("/", "c")])), ("/", "d")]))
        result = acim_minimize(pattern, self.ICS)
        assert result.pattern.size == 2
        assert sorted(result.pattern.node_types()) == ["a", "d"]

    def test_deep_witness_with_descendant_edges(self):
        pattern = q(("a*", [
            ("//", ("c", [("//", "c")])),
            ("//", ("b", [("/", "c")])),
        ]))
        result = acim_minimize(pattern, self.ICS)
        assert result.pattern.size == 1

    def test_chain_without_co_occurrence_unchanged(self):
        # Without co-occurrence, bottom-up elimination over flat one-level
        # targets already reaches the minimum (Section 5.2 augmentation).
        ics = parse_constraints("a -> b; b -> c")
        pattern = q(("a*", [("/", ("b", [("/", "c")]))]))
        result = acim_minimize(pattern, ics)
        assert result.pattern.size == 1

    def test_matches_exhaustive_on_witness_case(self):
        from repro.core.bruteforce import exhaustive_minimize

        pattern = q(("a*", [("/", ("c", [("/", "c")])), ("/", "d")]))
        assert (
            acim_minimize(pattern, self.ICS).pattern.size
            == exhaustive_minimize(pattern, self.ICS).size
        )
