"""Tests for the embedding engine and answer-set evaluation."""

from __future__ import annotations

from repro import TreePattern
from repro.data import Forest, build_tree
from repro.matching import (
    DataIndex,
    EmbeddingEngine,
    agree_on,
    count_embeddings,
    evaluate,
    evaluate_nodes,
    matches,
)


def q(spec) -> TreePattern:
    return TreePattern.build(spec)


def sample_tree():
    return build_tree(
        ("Library", [
            ("Book", [("Title", [], "T1"), ("Author", [("LastName", [], "L1")])]),
            ("Book", [("Title", [], "T2")]),
            ("Shelf", [("Book", [("Title", [], "T3")])]),
        ])
    )


class TestDataIndex:
    def test_descendant_intervals(self):
        tree = sample_tree()
        index = DataIndex(tree)
        shelf = tree.find("Shelf")[0]
        deep_book = shelf.children[0]
        assert index.is_descendant(deep_book, shelf)
        assert index.is_descendant(deep_book, tree.root)
        assert not index.is_descendant(shelf, deep_book)
        assert not index.is_descendant(shelf, shelf)  # proper

    def test_type_index(self):
        index = DataIndex(sample_tree())
        assert len(index.nodes_of_type("Book")) == 3
        assert index.nodes_of_type("Nope") == []

    def test_descendants_of_type(self):
        tree = sample_tree()
        index = DataIndex(tree)
        assert len(list(index.descendants_of_type(tree.root, "Title"))) == 3
        assert index.has_descendant_of_type(tree.root, "LastName")
        assert not index.has_descendant_of_type(tree.find("Shelf")[0], "LastName")


class TestEmbeddings:
    def test_c_edge_matches_children_only(self):
        tree = sample_tree()
        direct = q(("Library", [("/", "Book*")]))
        assert len(evaluate_nodes(direct, tree)) == 2  # not the shelf book

    def test_d_edge_matches_all_depths(self):
        tree = sample_tree()
        assert len(evaluate_nodes(q(("Library", [("//", "Book*")])), tree)) == 3

    def test_unanchored_root(self):
        tree = sample_tree()
        # Root type Book: pattern matches anywhere in the tree.
        floating = q(("Book", [("/", "Title*")]))
        assert len(evaluate_nodes(floating, tree)) == 3

    def test_branches_must_coexist(self):
        tree = sample_tree()
        both = q(("Book*", [("/", "Title"), ("//", "LastName")]))
        assert len(evaluate_nodes(both, tree)) == 1

    def test_count_embeddings(self):
        tree = sample_tree()
        assert count_embeddings(q(("Library", [("//", "Title*")])), tree) == 3
        # Two independent d-children multiply.
        two = q(("Library", [("//", "Title"), ("//", "Book*")]))
        assert count_embeddings(two, tree) == 9

    def test_count_zero_when_no_match(self):
        assert count_embeddings(q(("Library", [("/", "Nope*")])), sample_tree()) == 0

    def test_enumerated_embeddings_are_valid(self):
        tree = sample_tree()
        pattern = q(("Book*", [("/", "Title")]))
        engine = EmbeddingEngine(pattern, tree)
        embeddings = list(engine.embeddings())
        assert len(embeddings) == engine.count_embeddings() == 3
        index = DataIndex(tree)
        for emb in embeddings:
            for v in pattern.nodes():
                data_node = emb[v.id]
                assert v.type in data_node.types
                if v.parent is not None:
                    parent_node = emb[v.parent.id]
                    if v.edge.is_child:
                        assert data_node.parent is parent_node
                    else:
                        assert index.is_descendant(data_node, parent_node)

    def test_embeddings_limit(self):
        tree = sample_tree()
        engine = EmbeddingEngine(q(("Library", [("//", "Title*")])), tree)
        assert len(list(engine.embeddings(limit=2))) == 2

    def test_feasible_subset_of_candidates(self):
        tree = sample_tree()
        engine = EmbeddingEngine(q(("Book*", [("/", "Title"), ("//", "LastName")])), tree)
        feasible = engine.feasible()
        candidates = engine.candidates()
        for node_id, ids in feasible.items():
            assert ids <= candidates[node_id]

    def test_exists(self):
        tree = sample_tree()
        assert EmbeddingEngine(q(("Library", [("//", "LastName*")])), tree).exists()
        assert not EmbeddingEngine(q(("Library", [("/", "LastName*")])), tree).exists()


class TestEvaluator:
    def test_forest_tags_tree_index(self):
        forest = Forest([sample_tree(), sample_tree()])
        answers = evaluate(q(("Library", [("/", "Book*")])), forest)
        assert {i for i, _ in answers} == {0, 1}
        assert len(answers) == 4

    def test_matches(self):
        assert matches(q(("Book", [("/", "Title*")])), sample_tree())
        assert not matches(q(("Book", [("/", "Publisher*")])), sample_tree())

    def test_agree_on(self):
        tree = sample_tree()
        q1 = q(("Library", [("//", "Book*")]))
        q2 = q(("Library", [("//", ("Book*", [("/", "Title")]))]))
        # All books here have titles, so the queries agree on THIS tree...
        assert agree_on(q1, q2, tree)
        # ...but not on one with an untitled book.
        other = build_tree(("Library", [("Book", [])]))
        assert not agree_on(q1, q2, other)

    def test_answer_is_output_node_not_root(self):
        tree = sample_tree()
        answers = evaluate_nodes(q(("Library", [("//", ("Author", [("/", "LastName*")]))])), tree)
        assert len(answers) == 1 and "LastName" in answers[0].types
