"""``repro`` — Minimization of Tree Pattern Queries.

A complete reproduction of *Amer-Yahia, Cho, Lakshmanan, Srivastava:
Minimization of Tree Pattern Queries* (ACM SIGMOD 2001): tree pattern
queries over XML/LDAP-style tree databases, the CIM / ACIM / CDM
minimization algorithms, the integrity-constraint machinery they rely on,
a pattern-matching engine, and the workload generators + benchmark
harness that regenerate every figure of the paper's evaluation.

Quickstart::

    from repro import TreePattern, minimize, parse_constraints

    q = TreePattern.build(
        ("Articles", [
            ("/", ("Article", [("//", "Paragraph")])),
            ("/", ("Article*", [("/", "Title"),
                                 ("//", ("Section", [("//", "Paragraph")]))])),
        ])
    )
    ics = parse_constraints("Article -> Title; Section ->> Paragraph")
    result = minimize(q, ics)
    print(result.summary())
    print(result.pattern.to_ascii())

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from .errors import (
    CircuitOpenError,
    ConstraintError,
    DataModelError,
    DeadlineExceededError,
    EvaluationError,
    InvalidPatternError,
    OutputNodeError,
    ParseError,
    PatternError,
    ProtocolError,
    ReproError,
    SchemaError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    StrategyError,
)
from .core import (
    CHILD,
    DESCENDANT,
    AcimResult,
    CdmResult,
    CimResult,
    ContainmentOracleCache,
    EdgeKind,
    MinimizeResult,
    OracleCacheStats,
    PatternNode,
    TreePattern,
    oracle_cache_disabled,
    set_global_enabled,
    acim_minimize,
    are_isomorphic,
    fingerprint,
    isomorphism,
    amr,
    apply_strategy,
    augment,
    cdm_minimize,
    cim_minimize,
    cim_minimize_naive,
    dedup_siblings,
    equivalent,
    equivalent_under,
    is_contained_in,
    is_contained_in_under,
    is_minimal,
    minimize,
)
from .constraints import (
    ConstraintKind,
    ConstraintRepository,
    IntegrityConstraint,
    closure,
    co_occurrence,
    parse_constraint,
    parse_constraints,
    required_child,
    required_descendant,
)
from .batch import (
    BatchItemResult,
    BatchMinimizer,
    BatchResult,
    BatchStats,
    WorkerPool,
    evaluate_batch,
    minimize_batch,
)
from .api import STRATEGIES, MinimizeOptions, QueryResult, Session
from .store import PersistentStore, StoreStats
from .resilience import (
    AsyncServiceClient,
    CircuitBreaker,
    ClientStats,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServiceClient,
)

__version__ = "1.2.0"

__all__ = [
    # errors
    "ReproError",
    "PatternError",
    "InvalidPatternError",
    "OutputNodeError",
    "ConstraintError",
    "ParseError",
    "SchemaError",
    "DataModelError",
    "EvaluationError",
    "StrategyError",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "ProtocolError",
    "CircuitOpenError",
    "ServiceUnavailableError",
    # unified front-door API
    "MinimizeOptions",
    "QueryResult",
    "Session",
    "STRATEGIES",
    # persistent content-addressed cache tier
    "PersistentStore",
    "StoreStats",
    # patterns & algorithms
    "CHILD",
    "DESCENDANT",
    "EdgeKind",
    "PatternNode",
    "TreePattern",
    "are_isomorphic",
    "fingerprint",
    "isomorphism",
    "CimResult",
    "AcimResult",
    "CdmResult",
    "MinimizeResult",
    "cim_minimize",
    "cim_minimize_naive",
    "dedup_siblings",
    "acim_minimize",
    "cdm_minimize",
    "minimize",
    "amr",
    "apply_strategy",
    "augment",
    "equivalent",
    "equivalent_under",
    "is_contained_in",
    "is_contained_in_under",
    "is_minimal",
    # containment-oracle cache
    "ContainmentOracleCache",
    "OracleCacheStats",
    "oracle_cache_disabled",
    "set_global_enabled",
    # constraints
    "ConstraintKind",
    "IntegrityConstraint",
    "ConstraintRepository",
    "closure",
    "co_occurrence",
    "required_child",
    "required_descendant",
    "parse_constraint",
    "parse_constraints",
    # batch backend
    "BatchItemResult",
    "BatchMinimizer",
    "BatchResult",
    "BatchStats",
    "WorkerPool",
    "evaluate_batch",
    "minimize_batch",
    # resilience layer
    "AsyncServiceClient",
    "CircuitBreaker",
    "ClientStats",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "ServiceClient",
    "__version__",
]
