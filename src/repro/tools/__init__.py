"""Command-line tools (``tpq-minimize``, ``tpq-eval``)."""

from .minimize_cli import main as minimize_main
from .eval_cli import main as eval_main

__all__ = ["minimize_main", "eval_main"]
