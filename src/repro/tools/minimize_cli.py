"""``tpq-minimize`` — minimize a tree pattern query from the command line.

Examples::

    tpq-minimize 'Articles/Article[Title][.//Paragraph]'
    tpq-minimize 'a/b[c][c]' --algorithm cim --explain
    tpq-minimize 'Book*[Title][Publisher]' -c 'Book -> Title; Book -> Publisher'
    tpq-minimize --sexpr '(a (/ b) (/ b))' --format sexpr
    echo 'Section ->> Paragraph' > ics.txt
    tpq-minimize 'Articles/Article*[.//Paragraph][.//Section]' -C ics.txt

Batch mode minimizes a whole file of queries (one per line, ``#``
comments allowed) through the workload backend — constraint closure
computed once, isomorphic queries memoized, distinct queries optionally
fanned across worker processes::

    tpq-minimize --batch queries.txt -C ics.txt --jobs 4
    tpq-minimize --batch - < queries.txt --explain
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..api import MinimizeOptions, QueryResult, Session
from ..constraints.model import parse_constraints
from ..core.acim import acim_minimize
from ..core.cdm import cdm_minimize
from ..core.cim import cim_minimize
from ..errors import ReproError
from ..parsing.serializer import to_xpath
from ..parsing.sexpr import parse_sexpr, to_sexpr
from ..parsing.xpath import parse_xpath

__all__ = ["main", "build_parser"]


def _jobs_arg(value: str):
    """``--jobs`` values: an integer worker count or the literal
    ``auto`` (one per core, tiny batches serial)."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The ``tpq-minimize`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="tpq-minimize",
        description="Minimize a tree pattern query (CIM / CDM / ACIM / full pipeline).",
        epilog=(
            "Every flag maps onto one repro.api.MinimizeOptions field — "
            "the library's single configuration path. (The legacy "
            "per-knob BatchMinimizer/minimize_batch kwargs such as "
            "jobs=/memoize= were removed and now raise TypeError.)"
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        default=None,
        help="the query (XPath subset, or s-expression with --sexpr)",
    )
    parser.add_argument(
        "--sexpr", action="store_true", help="parse the query as an s-expression"
    )
    parser.add_argument(
        "--batch",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "minimize a file of queries (one per line, '#' comments; '-' for "
            "stdin) through the batch backend; prints one minimized query "
            "per line in input order"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help=(
            "worker processes for --batch (0 = one per core; 'auto' = one "
            "per core but tiny batches run serially; default 1)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=("v1", "v2"),
        default=None,
        help=(
            "core images/containment engine: v1 (object/set) or v2 (flat "
            "bitset; the default). Results are byte-identical; default "
            "follows REPRO_CORE_ENGINE"
        ),
    )
    parser.add_argument(
        "-c",
        "--constraints",
        default=None,
        help="inline constraints, ';'-separated (e.g. 'Book -> Title; A ~ B')",
    )
    parser.add_argument(
        "-C",
        "--constraints-file",
        type=Path,
        default=None,
        help="file of constraints, one per line ('#' comments allowed)",
    )
    parser.add_argument(
        "--algorithm",
        choices=("pipeline", "cim", "cdm", "acim"),
        default="pipeline",
        help="which minimizer to run (default: CDM + ACIM pipeline)",
    )
    parser.add_argument(
        "--format",
        choices=("xpath", "sexpr", "ascii"),
        default="xpath",
        help="output rendering of the minimized query",
    )
    parser.add_argument(
        "--explain", action="store_true", help="print what was removed and why"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the unified QueryResult JSON (one object per query; the "
            "same shape the repro-serve protocol returns)"
        ),
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help=(
            "record a witness certificate for every elimination and "
            "re-verify each answer with the independent checker "
            "(repro.certify) before printing; a failed check exits 2. "
            "With --json the certificate is included in the output"
        ),
    )
    parser.add_argument(
        "--no-oracle-cache",
        action="store_true",
        help=(
            "disable the process-wide containment-oracle cache and the "
            "prune memo (results are identical either way)"
        ),
    )
    return parser


def _render(pattern, fmt: str) -> str:
    if fmt == "xpath":
        return to_xpath(pattern)
    if fmt == "sexpr":
        return to_sexpr(pattern, pretty=True)
    return pattern.to_ascii()


def _read_batch_queries(path: Path, use_sexpr: bool) -> list:
    """Parse a file of queries (one per line; '#' comments, blank lines
    skipped; '-' reads stdin)."""
    text = sys.stdin.read() if str(path) == "-" else path.read_text()
    parse = parse_sexpr if use_sexpr else parse_xpath
    queries = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            queries.append(parse(line))
    return queries


def _session_options(args) -> MinimizeOptions:
    """The one configuration object both CLI paths hand to ``Session``
    (no engine/cache kwargs threaded anywhere below this line)."""
    return MinimizeOptions(
        jobs=args.jobs,
        oracle_cache=False if args.no_oracle_cache else None,
        core_engine=args.engine,
        certify=args.certify,
    )


def _emit_json(results: "list[QueryResult]", fmt: str) -> None:
    """Print the unified JSON shape (a list for batch, one object for a
    single query) — exactly what the service protocol returns."""
    payload = [r.to_json(fmt=fmt) for r in results]
    print(json.dumps(payload[0] if len(payload) == 1 else payload, indent=2, sort_keys=True))


def _json_fmt(args) -> str:
    return "sexpr" if args.format == "sexpr" else "xpath"


def _verify_results(session: Session, results: "list[QueryResult]") -> bool:
    """Re-check every certificate with the independent checker (the
    ``--certify`` post-condition); failures go to stderr."""
    ok = True
    for result in results:
        verdict = session.check_certificate(result)
        if not verdict:
            ok = False
            print(
                "error: certificate check failed for "
                f"{to_xpath(result.input_pattern)}: {verdict.reason}",
                file=sys.stderr,
            )
    return ok


def _run_batch(args, constraints) -> int:
    queries = _read_batch_queries(args.batch, args.sexpr)
    with Session(_session_options(args), constraints=constraints) as session:
        results = session.minimize_many(queries)
        counters = session.counters()
        if args.certify and not _verify_results(session, results):
            return 2
    if args.json:
        _emit_json(results, _json_fmt(args))
    else:
        for result in results:
            fmt = "sexpr" if args.format == "sexpr" else args.format
            rendered = (
                to_sexpr(result.pattern) if fmt == "sexpr" else _render(result.pattern, fmt)
            )
            print(rendered)
    if args.explain:
        removed = sum(r.removed_count for r in results)
        print(
            f"# {counters.get('queries', 0):.0f} queries "
            f"({counters.get('distinct', 0):.0f} distinct structures), "
            f"{removed} nodes removed",
            file=sys.stderr,
        )
        print(
            f"# cache hit rate {counters.get('hit_rate', 0.0):.0%}, "
            f"jobs={args.jobs}, "
            f"minimize {counters.get('minimize_seconds', 0.0) * 1e3:.1f} ms "
            f"(closure {counters.get('closure_seconds', 0.0) * 1e3:.1f} ms)",
            file=sys.stderr,
        )
    return 0


def _run_single(args, constraints) -> int:
    query = parse_sexpr(args.query) if args.sexpr else parse_xpath(args.query)

    if args.algorithm == "pipeline":
        with Session(_session_options(args), constraints=constraints) as session:
            result = session.minimize(query)
            if args.certify and not _verify_results(session, [result]):
                return 2
        explain_lines: list[str] = []
        detail = result.detail
        if detail is not None and detail.cdm is not None:
            explain_lines += [
                f"removed node #{i} ({t}) [CDM rule: {rule}]"
                for i, t, rule in detail.cdm.eliminated
            ]
        if detail is not None and detail.acim is not None:
            explain_lines += [
                f"removed node #{i} ({t}) [ACIM]" for i, t in detail.acim.eliminated
            ]
    else:
        # The research-algorithm drivers (CIM / CDM / ACIM in isolation)
        # run outside the pipeline; the session's cache scope still
        # applies through the re-entrant guard in main().
        if args.algorithm == "cim":
            run = cim_minimize(query, core_engine=args.engine)
            eliminated = list(run.eliminated)
            explain_lines = [f"removed node #{i} ({t}) [CIM]" for i, t in run.eliminated]
        elif args.algorithm == "cdm":
            run = cdm_minimize(query, constraints)
            eliminated = [(i, t) for i, t, _ in run.eliminated]
            explain_lines = [
                f"removed node #{i} ({t}) [CDM rule: {rule}]"
                for i, t, rule in run.eliminated
            ]
        else:  # acim
            run = acim_minimize(query, constraints, core_engine=args.engine)
            eliminated = list(run.eliminated)
            explain_lines = [f"removed node #{i} ({t}) [ACIM]" for i, t in run.eliminated]
        result = QueryResult(
            pattern=run.pattern, input_pattern=query, eliminated=eliminated
        )

    if args.json:
        _emit_json([result], _json_fmt(args))
    else:
        print(_render(result.pattern, args.format))
    if args.explain:
        print(f"# {result.input_size} -> {result.output_size} nodes", file=sys.stderr)
        for line in explain_lines:
            print(f"# {line}", file=sys.stderr)
        if not explain_lines:
            print("# query was already minimal", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the tool; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if (args.query is None) == (args.batch is None):
        parser.error("exactly one of QUERY or --batch FILE is required")
    if args.batch is not None and args.algorithm != "pipeline":
        parser.error("--batch only supports the default pipeline algorithm")
    if args.certify and args.algorithm != "pipeline":
        parser.error(
            "--certify requires the pipeline algorithm (the standalone "
            "CIM/CDM/ACIM drivers do not assemble certificates)"
        )
    if args.json and args.format == "ascii":
        parser.error("--json renders queries as xpath or sexpr, not ascii")
    try:
        constraint_text = args.constraints or ""
        if args.constraints_file is not None:
            constraint_text += "\n" + args.constraints_file.read_text()
        constraints = parse_constraints(constraint_text)

        if args.batch is not None:
            return _run_batch(args, constraints)
        if args.algorithm == "pipeline":
            return _run_single(args, constraints)
        # Standalone-algorithm runs honor --no-oracle-cache through the
        # re-entrant scope (never the process-global switch).
        from ..core.oracle_cache import oracle_cache_disabled
        from contextlib import nullcontext

        guard = oracle_cache_disabled() if args.no_oracle_cache else nullcontext()
        with guard:
            return _run_single(args, constraints)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
