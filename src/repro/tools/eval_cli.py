"""``tpq-eval`` — run tree pattern queries against XML or LDIF files.

Examples::

    tpq-eval 'Library//Book*[Title]' catalog.xml
    tpq-eval 'Organization//Person*' directory.ldif --format ldif
    tpq-eval 'Catalog/Product*[Vendor]' catalog.xml \\
        -c 'Product -> Vendor' --minimize --engine twig --count

Several documents form a forest; ``--jobs`` fans the trees across
worker processes. ``--batch`` evaluates a whole file of queries (one per
line) through the batch backend instead of a single positional query::

    tpq-eval 'Library//Book*' a.xml b.xml c.xml --jobs 4
    tpq-eval --batch queries.txt catalog.xml --count --jobs 0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..api import MinimizeOptions, Session
from ..constraints.model import parse_constraints
from ..data.ldif import parse_ldif
from ..data.ldap import dn_of
from ..data.tree import DataNode, DataTree
from ..data.xml_io import parse_xml
from ..errors import ReproError
from ..matching.pathstack import is_path_pattern
from ..parsing.serializer import to_xpath
from ..parsing.xpath import parse_xpath
from .minimize_cli import _jobs_arg

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``tpq-eval`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="tpq-eval",
        description="Evaluate tree pattern queries against XML or LDIF documents.",
        epilog=(
            "Every flag maps onto one repro.api.MinimizeOptions field — "
            "the library's single configuration path. (The legacy "
            "per-knob BatchMinimizer/minimize_batch kwargs such as "
            "jobs=/memoize= were removed and now raise TypeError.)"
        ),
    )
    parser.add_argument(
        "query", nargs="?", default=None, help="XPath-subset query (omit with --batch)"
    )
    parser.add_argument("document", nargs="+", type=Path, help="XML or LDIF file(s)")
    parser.add_argument(
        "--batch",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "evaluate a file of queries (one per line, '#' comments; '-' for "
            "stdin) instead of a positional QUERY"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help=(
            "worker processes for fanning documents (0 = one per core; "
            "'auto' = one per core, tiny batches serial; default 1)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("auto", "xml", "ldif"),
        default="auto",
        help="document format (auto: by file extension)",
    )
    parser.add_argument(
        "--engine",
        choices=("dp", "twig", "pathstack", "twigmerge"),
        default="dp",
        help="matching engine (pathstack requires linear queries)",
    )
    parser.add_argument(
        "--core-engine",
        choices=("v1", "v2"),
        default=None,
        help=(
            "images/containment core for --minimize: v1 (object/set) or "
            "v2 (flat bitset; the default). Byte-identical results"
        ),
    )
    parser.add_argument(
        "-c", "--constraints", default=None, help="';'-separated integrity constraints"
    )
    parser.add_argument(
        "--minimize",
        action="store_true",
        help="minimize the queries (under the constraints, if given) before matching",
    )
    parser.add_argument("--count", action="store_true", help="print only the match count")
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit one JSON object per query: match count, answers, and "
            "(with --minimize) the unified QueryResult shape the "
            "repro-serve protocol returns"
        ),
    )
    parser.add_argument(
        "--no-oracle-cache",
        action="store_true",
        help=(
            "disable the containment-oracle cache layers during --minimize "
            "(results are identical either way)"
        ),
    )
    return parser


def _load(path: Path, fmt: str) -> tuple[DataTree, bool]:
    """Load the document; returns (tree, is_directory)."""
    text = path.read_text()
    if fmt == "auto":
        fmt = "ldif" if path.suffix.lower() in (".ldif", ".ldi") else "xml"
    if fmt == "ldif":
        return parse_ldif(text).tree, True
    return parse_xml(text), False


def _describe(node: DataNode, is_directory: bool) -> str:
    if is_directory:
        return f"{'+'.join(sorted(node.types))}  {dn_of(node)}"
    detail = f" = {node.value!r}" if node.value is not None else ""
    path = "/".join(p.primary_type for p in node.path())
    return f"{'+'.join(sorted(node.types))}{detail}  ({path})"


def _read_batch_queries(path: Path) -> list:
    text = sys.stdin.read() if str(path) == "-" else path.read_text()
    queries = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            queries.append(parse_xpath(line))
    return queries


def _print_answers(answers, docs, trees) -> None:
    prefix_files = len(docs) > 1
    for tree_index, (path, is_directory) in enumerate(docs):
        prefix = f"{path}: " if prefix_files else ""
        for node in trees[tree_index].nodes():  # document order
            if (tree_index, node.id) in answers:
                print(f"{prefix}{_describe(node, is_directory)}")


def main(argv: list[str] | None = None) -> int:
    """Run the tool; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.batch is not None:
            # All positionals are documents in batch mode.
            documents = ([Path(args.query)] if args.query else []) + list(args.document)
            patterns = _read_batch_queries(args.batch)
        else:
            if args.query is None:
                parser.error("QUERY is required unless --batch FILE is given")
            documents = list(args.document)
            patterns = [parse_xpath(args.query)]
        constraints = parse_constraints(args.constraints or "")

        loaded = [_load(path, args.format) for path in documents]
        trees = [tree for tree, _ in loaded]
        docs = [(path, is_dir) for path, (_, is_dir) in zip(documents, loaded)]

        options = MinimizeOptions(
            engine=args.engine,
            jobs=args.jobs,
            oracle_cache=False if args.no_oracle_cache else None,
            core_engine=args.core_engine,
        )
        with Session(options, constraints=constraints) as session:
            minimized_results = None
            if args.minimize:
                minimized_results = session.minimize_many(patterns)
                patterns = [result.pattern for result in minimized_results]
                if not args.json:
                    for pattern in patterns:
                        print(f"# minimized to: {to_xpath(pattern)}", file=sys.stderr)

            if args.engine == "pathstack":
                for pattern in patterns:
                    if not is_path_pattern(pattern):
                        print(
                            "error: --engine pathstack requires a linear query",
                            file=sys.stderr,
                        )
                        return 2

            answer_sets = session.evaluate(patterns, trees)

        if args.json:
            records = []
            for index, (pattern, answers) in enumerate(zip(patterns, answer_sets)):
                record = {
                    "query": to_xpath(pattern),
                    "matches": len(answers),
                    "answers": sorted([t, n] for t, n in answers),
                }
                if minimized_results is not None:
                    record["minimization"] = minimized_results[index].to_json()
                records.append(record)
            print(json.dumps(records[0] if len(records) == 1 else records,
                             indent=2, sort_keys=True))
            return 0

        header_queries = len(patterns) > 1 and not args.count
        for pattern, answers in zip(patterns, answer_sets):
            if header_queries:
                print(f"## {to_xpath(pattern)}")
            if args.count:
                print(len(answers))
            else:
                _print_answers(answers, docs, trees)
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
