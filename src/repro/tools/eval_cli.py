"""``tpq-eval`` — run a tree pattern query against an XML or LDIF file.

Examples::

    tpq-eval 'Library//Book*[Title]' catalog.xml
    tpq-eval 'Organization//Person*' directory.ldif --format ldif
    tpq-eval 'Catalog/Product*[Vendor]' catalog.xml \\
        -c 'Product -> Vendor' --minimize --engine twig --count
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..constraints.model import parse_constraints
from ..core.pipeline import minimize
from ..data.ldif import parse_ldif
from ..data.ldap import dn_of
from ..data.tree import DataNode, DataTree
from ..data.xml_io import parse_xml
from ..errors import ReproError
from ..matching.embeddings import EmbeddingEngine
from ..matching.pathstack import PathStackEngine, is_path_pattern
from ..matching.structural import TwigJoinEngine
from ..parsing.serializer import to_xpath
from ..parsing.xpath import parse_xpath

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``tpq-eval`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="tpq-eval",
        description="Evaluate a tree pattern query against an XML or LDIF document.",
    )
    parser.add_argument("query", help="XPath-subset query")
    parser.add_argument("document", type=Path, help="XML or LDIF file")
    parser.add_argument(
        "--format",
        choices=("auto", "xml", "ldif"),
        default="auto",
        help="document format (auto: by file extension)",
    )
    parser.add_argument(
        "--engine",
        choices=("dp", "twig", "pathstack"),
        default="dp",
        help="matching engine (pathstack requires a linear query)",
    )
    parser.add_argument(
        "-c", "--constraints", default=None, help="';'-separated integrity constraints"
    )
    parser.add_argument(
        "--minimize",
        action="store_true",
        help="minimize the query (under the constraints, if given) before matching",
    )
    parser.add_argument("--count", action="store_true", help="print only the match count")
    return parser


def _load(path: Path, fmt: str) -> tuple[DataTree, bool]:
    """Load the document; returns (tree, is_directory)."""
    text = path.read_text()
    if fmt == "auto":
        fmt = "ldif" if path.suffix.lower() in (".ldif", ".ldi") else "xml"
    if fmt == "ldif":
        return parse_ldif(text).tree, True
    return parse_xml(text), False


def _describe(node: DataNode, is_directory: bool) -> str:
    if is_directory:
        return f"{'+'.join(sorted(node.types))}  {dn_of(node)}"
    detail = f" = {node.value!r}" if node.value is not None else ""
    path = "/".join(p.primary_type for p in node.path())
    return f"{'+'.join(sorted(node.types))}{detail}  ({path})"


def main(argv: list[str] | None = None) -> int:
    """Run the tool; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        pattern = parse_xpath(args.query)
        constraints = parse_constraints(args.constraints or "")
        tree, is_directory = _load(args.document, args.format)

        if args.minimize:
            result = minimize(pattern, constraints)
            pattern = result.pattern
            print(f"# minimized to: {to_xpath(pattern)}", file=sys.stderr)

        if args.engine == "twig":
            answers = TwigJoinEngine(pattern, tree).answer_set()
        elif args.engine == "pathstack":
            if not is_path_pattern(pattern):
                print("error: --engine pathstack requires a linear query", file=sys.stderr)
                return 2
            answers = PathStackEngine(pattern, tree).answer_set()
        else:
            answers = EmbeddingEngine(pattern, tree).answer_set()

        if args.count:
            print(len(answers))
            return 0
        for node in tree.nodes():  # document order
            if node.id in answers:
                print(_describe(node, is_directory))
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
