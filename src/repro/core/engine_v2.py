"""Engine v2 — the flat, array-native minimization core.

This module reimplements the two hot kernels of the minimizer — the
``redundant-leaf`` images engine (:mod:`repro.core.images`) and the
``mapping_targets`` containment DP (:mod:`repro.core.containment`) — over
a *flat* representation:

* a :class:`FlatPattern` compiles a :class:`~repro.core.pattern.TreePattern`
  into parallel preorder arrays (interned type table, parent/depth/type/
  edge-kind per node, children as CSR index ranges). It round-trips
  losslessly (node ids, child insertion order, flags, extra types), computes
  canonical subtree keys directly over the arrays, and is what
  :class:`TreePattern` pickles as — batch workers ship a handful of tuples
  instead of a cyclic object graph;
* every *target set* (an images set, a DP row, an ancestor/descendant
  relation row) is a **bitset**: one Python int whose bit ``s`` stands for
  the target in *slot* ``s``. Slots are assigned in ascending id order
  (virtual targets have negative ids, so they occupy the low slots), which
  makes the lowest set bit of any row the minimum id — every ``min()``
  tie-break of the v1 engines is one ``bits & -bits`` here.

The flat engines are byte-for-byte equivalent to v1 — same results, same
early exits, same memo keys and eviction rules, same counter values — and
the differential suites in ``tests/test_engine_v2.py`` pin exactly that.
Dispatch between the engines happens in the v1 modules' facades
(:func:`repro.core.images.create_images_engine`,
:func:`repro.core.containment.mapping_targets`) via
:mod:`repro.core.engine_config`.

Deletion maintenance is where the flat design pays most: the v1 engine
updates O(depth) ancestor/descendant rows and subtracts dead ids from
every memoized base set per deletion. Here the relation bitsets and type
index are **never** maintained — they are built once and may contain bits
of deleted targets forever. A single ``live`` mask is cleared instead,
and every row is computed as ``base & live & ~excluded`` at the point of
use, which masks stale bits automatically.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from ..errors import InvalidPatternError
from . import oracle_cache as _oracle_cache
from .edges import EdgeKind
from .images import ImagesStats, VirtualTarget
from .node import PatternNode
from .pattern import TreePattern

__all__ = [
    "FlatPattern",
    "FlatImagesEngine",
    "flat_mapping_targets",
    "pattern_from_flat",
    "flat_pickle_enabled",
    "flat_pickle",
    "bits_to_ids",
    "ids_to_bits",
    "iter_slots",
]


# ---------------------------------------------------------------------------
# Bitset helpers
# ---------------------------------------------------------------------------


def iter_slots(bits: int) -> Iterator[int]:
    """Yield the set bit positions of ``bits`` in ascending order."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def bits_to_ids(bits: int, id_of: Sequence[int]) -> set[int]:
    """Decode a bitset row into the set of target ids it represents."""
    return {id_of[s] for s in iter_slots(bits)}


def ids_to_bits(ids, slot_of: dict) -> int:
    """Encode an iterable of target ids as a bitset row."""
    bits = 0
    for node_id in ids:
        bits |= 1 << slot_of[node_id]
    return bits


# ---------------------------------------------------------------------------
# FlatPattern — the compiled array form of a TreePattern
# ---------------------------------------------------------------------------

#: Edge-kind codes in the flat arrays (the root carries -1).
_EDGE_OF_CODE = (EdgeKind.CHILD, EdgeKind.DESCENDANT)
_EDGE_SYMBOL = ("/", "//")


@dataclass(frozen=True)
class FlatPattern:
    """A :class:`TreePattern` compiled to parallel preorder arrays.

    All per-node arrays are indexed by *preorder position*; ``ids[i]`` is
    the original node id at position ``i`` (position 0 is the root).
    ``types`` is the interned type table; ``type_id``/``extra_type_ids``
    index into it. Children are stored CSR-style: the children of
    position ``i`` are ``child_index[child_start[i]:child_start[i+1]]``,
    in insertion order. ``next_id`` preserves the pattern's id counter so
    the round trip is exact.
    """

    types: tuple[str, ...]
    ids: tuple[int, ...]
    parent: tuple[int, ...]
    depth: tuple[int, ...]
    type_id: tuple[int, ...]
    edge: tuple[int, ...]
    flags: tuple[int, ...]  # bit 0: is_output, bit 1: temporary
    extra_type_ids: tuple[tuple[int, ...], ...]
    child_start: tuple[int, ...]
    child_index: tuple[int, ...]
    next_id: int

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.ids)

    @classmethod
    def from_pattern(cls, pattern: TreePattern) -> "FlatPattern":
        """Compile ``pattern``; the inverse of :meth:`to_pattern`."""
        nodes = list(pattern.nodes())
        pos = {node.id: i for i, node in enumerate(nodes)}
        type_index: dict[str, int] = {}
        types: list[str] = []

        def intern(name: str) -> int:
            ti = type_index.get(name)
            if ti is None:
                ti = len(types)
                type_index[name] = ti
                types.append(name)
            return ti

        ids: list[int] = []
        parent: list[int] = []
        depth: list[int] = []
        type_id: list[int] = []
        edge: list[int] = []
        flags: list[int] = []
        extra: list[tuple[int, ...]] = []
        child_index: list[int] = []
        child_start: list[int] = [0]
        for node in nodes:
            ids.append(node.id)
            p = node.parent
            if p is None:
                parent.append(-1)
                depth.append(0)
            else:
                pi = pos[p.id]
                parent.append(pi)
                depth.append(depth[pi] + 1)
            type_id.append(intern(node.type))
            if node.edge is None:
                edge.append(-1)
            else:
                edge.append(0 if node.edge is EdgeKind.CHILD else 1)
            flags.append((1 if node.is_output else 0) | (2 if node.temporary else 0))
            extra.append(tuple(intern(t) for t in sorted(node.extra_types)))
            child_index.extend(pos[c.id] for c in node.children)
            child_start.append(len(child_index))
        return cls(
            types=tuple(types),
            ids=tuple(ids),
            parent=tuple(parent),
            depth=tuple(depth),
            type_id=tuple(type_id),
            edge=tuple(edge),
            flags=tuple(flags),
            extra_type_ids=tuple(extra),
            child_start=tuple(child_start),
            child_index=tuple(child_index),
            next_id=pattern._next_id,
        )

    def to_pattern(self) -> TreePattern:
        """Reconstruct the exact original pattern (ids, id counter, child
        insertion order, flags, extra types)."""
        pattern = TreePattern.__new__(TreePattern)
        pattern._next_id = self.next_id
        pattern._nodes = {}
        pattern._version = 0
        types = self.types
        created: list[PatternNode] = []
        for i, node_id in enumerate(self.ids):
            code = self.edge[i]
            node = PatternNode(
                pattern,
                node_id,
                types[self.type_id[i]],
                None if code < 0 else _EDGE_OF_CODE[code],
                is_output=bool(self.flags[i] & 1),
                temporary=bool(self.flags[i] & 2),
            )
            if self.extra_type_ids[i]:
                node.extra_types = frozenset(
                    types[t] for t in self.extra_type_ids[i]
                )
            pattern._nodes[node_id] = node
            created.append(node)
            p = self.parent[i]
            if p < 0:
                pattern._root = node
            else:
                created[p]._attach_child(node)
        return pattern

    def subtree_keys(self) -> dict[int, str]:
        """Canonical subtree encodings computed over the flat arrays.

        Byte-identical to :func:`repro.core.fingerprint.subtree_keys` on
        the reconstructed pattern. Reversed preorder puts every node
        after its descendants, so one backward sweep replaces the
        explicit postorder stack.
        """
        n = len(self.ids)
        keys: list[str] = [""] * n
        types = self.types
        cs, ci, edges = self.child_start, self.child_index, self.edge
        for i in range(n - 1, -1, -1):
            child_keys = sorted(
                _EDGE_SYMBOL[edges[j]] + keys[j] for j in ci[cs[i] : cs[i + 1]]
            )
            extras = ",".join(sorted(types[t] for t in self.extra_type_ids[i]))
            flags = ("*" if self.flags[i] & 1 else "") + (
                "?" if self.flags[i] & 2 else ""
            )
            keys[i] = f"{types[self.type_id[i]]}|{extras}|{flags}({';'.join(child_keys)})"
        return {self.ids[i]: keys[i] for i in range(n)}

    def canonical_key(self) -> str:
        """The root's canonical key (equals ``TreePattern.canonical_key``)."""
        n = len(self.ids)
        keys: list[str] = [""] * n
        types = self.types
        cs, ci, edges = self.child_start, self.child_index, self.edge
        for i in range(n - 1, -1, -1):
            child_keys = sorted(
                _EDGE_SYMBOL[edges[j]] + keys[j] for j in ci[cs[i] : cs[i + 1]]
            )
            extras = ",".join(sorted(types[t] for t in self.extra_type_ids[i]))
            flags = ("*" if self.flags[i] & 1 else "") + (
                "?" if self.flags[i] & 2 else ""
            )
            keys[i] = f"{types[self.type_id[i]]}|{extras}|{flags}({';'.join(child_keys)})"
        return keys[0]


def pattern_from_flat(flat: FlatPattern) -> TreePattern:
    """Module-level reconstruction hook — the callable
    :meth:`TreePattern.__reduce_ex__` ships to unpickling processes."""
    return flat.to_pattern()


#: Whether TreePattern pickles through FlatPattern (see
#: :meth:`TreePattern.__reduce_ex__`). On by default; the benchmark uses
#: the context manager below to measure the legacy object-graph pickles.
_flat_pickle = True


def flat_pickle_enabled() -> bool:
    """Whether patterns currently pickle through :class:`FlatPattern`."""
    return _flat_pickle


@contextlib.contextmanager
def flat_pickle(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable flat pickling (benchmark/testing hook)."""
    global _flat_pickle
    previous = _flat_pickle
    _flat_pickle = bool(enabled)
    try:
        yield
    finally:
        _flat_pickle = previous


# ---------------------------------------------------------------------------
# FlatImagesEngine — bitset redundant-leaf tests
# ---------------------------------------------------------------------------


class FlatImagesEngine:
    """Bitset implementation of :class:`repro.core.images.ImagesEngine`.

    Same public surface (``is_redundant_leaf`` / ``delete_leaf`` /
    ``redundancy_witness`` / ``pattern`` / ``virtual`` / ``stats``), same
    results and counters; construct through
    :func:`repro.core.images.create_images_engine`.

    Build compiles the pattern plus its virtual targets into per-slot
    relation bitsets (``cc``: c-children, ``desc``: proper descendants,
    ``anc``: ancestors) over the combined tree, a type→slots index, and a
    static anchored-virtuals map. None of these are maintained across
    deletions — see the module docstring for the ``live``-mask invariant
    that makes :meth:`delete_leaf` O(1) modulo memo eviction.
    """

    #: Whole-memo reset threshold (same policy as the v1 engine).
    PRUNE_MEMO_CAP = 4096

    def __init__(
        self,
        pattern: TreePattern,
        virtual: Sequence[VirtualTarget] = (),
        stats: Optional[ImagesStats] = None,
        pair_filter: Optional[Callable[[int, int], bool]] = None,
        prune_memo: Optional[bool] = None,
    ) -> None:
        self.pattern = pattern
        self.virtual = tuple(virtual)
        self.pair_filter = pair_filter
        self.use_prune_memo = (
            _oracle_cache.global_enabled() if prune_memo is None else bool(prune_memo)
        )
        # (subtree root id, excluded & relevant) -> ({node id -> pruned
        # row}, relevant mask when stored). Rows are ints, hence shared
        # safely on hits.
        self._prune_memo: dict[tuple[int, int], tuple[dict[int, int], int]] = {}
        self._relevant_cache: dict[int, int] = {}
        self.stats = stats if stats is not None else ImagesStats()
        self.stats.engine_builds += 1
        start = time.perf_counter()
        self._build(pattern, self.virtual)
        self.stats.tables_seconds += time.perf_counter() - start

    def _build(self, pattern: TreePattern, virtual: tuple[VirtualTarget, ...]) -> None:
        nodes = list(pattern.nodes())
        seen = {node.id for node in nodes}
        for vt in virtual:
            if vt.parent_id not in seen:
                raise InvalidPatternError(
                    f"virtual target {vt.id} attached to unknown node {vt.parent_id}"
                )
            seen.add(vt.id)
        all_ids = sorted(seen)
        slot_of = {node_id: s for s, node_id in enumerate(all_ids)}
        n = len(all_ids)
        self._slot_of = slot_of
        self._id_of = all_ids
        self._live = (1 << n) - 1

        # Combined-tree adjacency: real children plus attached virtuals.
        children: list[list[int]] = [[] for _ in range(n)]
        cc = [0] * n
        for node in nodes:
            s = slot_of[node.id]
            row = children[s]
            for child in node.children:
                cs = slot_of[child.id]
                row.append(cs)
                if child.edge is EdgeKind.CHILD:
                    cc[s] |= 1 << cs
        anchored: dict[int, list[VirtualTarget]] = {}
        anchored_mask: dict[int, int] = {}
        real_anchor: dict[int, int] = {}
        for vt in virtual:
            vs = slot_of[vt.id]
            ps = slot_of[vt.parent_id]
            children[ps].append(vs)
            if vt.edge is EdgeKind.CHILD:
                cc[ps] |= 1 << vs
            anchor = vt.parent_id if vt.parent_id >= 0 else real_anchor[vt.parent_id]
            real_anchor[vt.id] = anchor
            anchored.setdefault(anchor, []).append(vt)
            anchored_mask[anchor] = anchored_mask.get(anchor, 0) | 1 << vs
        self._cc = cc
        self._anchored = {k: tuple(v) for k, v in anchored.items()}
        self._anchored_mask = anchored_mask

        # Descendant and ancestor bitsets: one pass over the combined tree.
        desc = [0] * n
        anc = [0] * n
        stack: list[tuple[int, bool]] = [(slot_of[pattern.root.id], False)]
        while stack:
            s, expanded = stack.pop()
            if expanded:
                acc = 0
                for c in children[s]:
                    acc |= 1 << c | desc[c]
                desc[s] = acc
            else:
                stack.append((s, True))
                up = anc[s] | 1 << s
                for c in children[s]:
                    anc[c] = up
                    stack.append((c, False))
        self._desc = desc
        self._anc = anc

        # Type index and output markers over all targets.
        type_bits: dict[str, int] = {}
        starred = 0
        for node in nodes:
            b = 1 << slot_of[node.id]
            for t in node.all_types:
                type_bits[t] = type_bits.get(t, 0) | b
            if node.is_output:
                starred |= b
        for vt in virtual:
            b = 1 << slot_of[vt.id]
            for t in vt.all_types:
                type_bits[t] = type_bits.get(t, 0) | b
        self._type_bits = type_bits
        self._starred = starred
        self._base_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Public API (mirrors ImagesEngine)
    # ------------------------------------------------------------------

    def is_redundant_leaf(self, leaf: PatternNode) -> bool:
        """The paper's ``redundant-leaf`` test for ``leaf``."""
        return self._run(leaf) is not None

    def delete_leaf(self, leaf: PatternNode) -> tuple[VirtualTarget, ...]:
        """Incrementally track the deletion of ``leaf``; returns the
        virtual targets that died with it.

        Relation bitsets, type index, and base rows are left untouched:
        clearing the leaf's (and its anchored virtuals') bits from the
        ``live`` mask retires them everywhere at once, because every row
        is masked with ``live`` at the point of use. Only the prune memo
        needs real eviction — same staleness rule as v1.
        """
        start = time.perf_counter()
        leaf_id = leaf.id
        slot = self._slot_of.get(leaf_id)
        if slot is None or not self._live >> slot & 1:
            raise InvalidPatternError(f"node {leaf_id} is not in the table")
        dropped = self._anchored.get(leaf_id, ())
        dead = 1 << slot | self._anchored_mask.get(leaf_id, 0)
        if self._desc[slot] & self._live & ~dead:
            raise InvalidPatternError(
                f"node {leaf_id} still has descendants; delete them first"
            )
        self._live &= ~dead
        if dropped:
            dead_ids = {vt.id for vt in dropped}
            self.virtual = tuple(vt for vt in self.virtual if vt.id not in dead_ids)
        self._base_cache.pop(leaf_id, None)
        if self.use_prune_memo:
            stale = self._anc[slot] | 1 << slot
            slot_of = self._slot_of
            self._prune_memo = {
                (root, key): entry
                for (root, key), entry in self._prune_memo.items()
                if not stale >> slot_of[root] & 1 and not entry[1] & dead
            }
            self._relevant_cache = {
                node_id: relevant & ~dead
                for node_id, relevant in self._relevant_cache.items()
                if not stale >> slot_of[node_id] & 1
            }
        self.stats.incremental_deletes += 1
        self.stats.tables_seconds += time.perf_counter() - start
        return dropped

    def redundancy_witness(self, leaf: PatternNode) -> Optional[dict[int, int]]:
        """A concrete endomorphism witnessing redundancy of ``leaf`` (node
        id → target id, negative = virtual), or ``None``."""
        result = self._run(leaf)
        if result is None:
            return None
        rows, stop_node = result
        return self._extract(rows, stop_node)

    def row_ids(self, row: int) -> set[int]:
        """Decode a bitset row into target ids (testing/introspection)."""
        return bits_to_ids(row, self._id_of)

    # ------------------------------------------------------------------
    # Core algorithm (Figure 3, over bitset rows)
    # ------------------------------------------------------------------

    def _base_row(self, node: PatternNode) -> int:
        """The memoized deletion-invariant part of ``images(node)``.

        Cached rows may keep bits of targets that die later; consumers
        mask with ``live`` at use, so the cache needs no maintenance.
        """
        cached = self._base_cache.get(node.id)
        if cached is not None:
            self.stats.base_cache_hits += 1
            return cached
        self.stats.base_cache_misses += 1
        row = self._type_bits.get(node.type, 0) & self._live
        if node.is_output:
            row &= self._starred
        if self.pair_filter is not None:
            id_of = self._id_of
            kept = 0
            bits = row
            while bits:
                low = bits & -bits
                bits ^= low
                if self.pair_filter(node.id, id_of[low.bit_length() - 1]):
                    kept |= low
            row = kept
        self._base_cache[node.id] = row
        return row

    def _excluded_mask(self, leaf: PatternNode) -> int:
        """Bits barred from every row when testing ``leaf``: the leaf
        itself plus the virtual targets anchored at it."""
        return 1 << self._slot_of[leaf.id] | self._anchored_mask.get(leaf.id, 0)

    def _initial_rows(self, excluded: int) -> dict[int, int]:
        start = time.perf_counter()
        rows: dict[int, int] = {}
        live_not_excluded = self._live & ~excluded
        max_size = self.stats.max_image_size
        for node in self.pattern.nodes():
            row = self._base_row(node) & live_not_excluded
            rows[node.id] = row
            size = row.bit_count()
            if size > max_size:
                max_size = size
        self.stats.max_image_size = max_size
        self.stats.tables_seconds += time.perf_counter() - start
        return rows

    def _run(
        self, leaf: PatternNode
    ) -> Optional[tuple[dict[int, int], PatternNode]]:
        if not leaf.is_leaf:
            raise InvalidPatternError("redundant-leaf requires a leaf node")
        if leaf.is_output:
            return None
        self.stats.redundancy_checks += 1
        excluded = self._excluded_mask(leaf)
        rows = self._initial_rows(excluded)
        if not rows[leaf.id]:
            return None

        start = time.perf_counter()
        try:
            marked: set[int] = {leaf.id}
            node = leaf.parent
            while node is not None:
                self._minimize_rows(node, rows, marked, excluded)
                row = rows[node.id]
                if not row:
                    return None
                if row >> self._slot_of[node.id] & 1:
                    # Early YES: node maps to itself, identity extends to
                    # all ancestors (Figure 3, step 4.3).
                    return rows, node
                node = node.parent
            root = self.pattern.root
            if rows[root.id]:
                return rows, root
            return None
        finally:
            self.stats.prune_seconds += time.perf_counter() - start

    def _relevant(self, node: PatternNode) -> int:
        """Union of base rows over ``node``'s subtree, cached per node."""
        cached = self._relevant_cache.get(node.id)
        if cached is not None:
            return cached
        stack: list[tuple[PatternNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if current.id in self._relevant_cache:
                continue
            if not expanded:
                stack.append((current, True))
                stack.extend((child, False) for child in current.children)
                continue
            relevant = self._base_row(current)
            for child in current.children:
                relevant |= self._relevant_cache[child.id]
            self._relevant_cache[current.id] = relevant
        return self._relevant_cache[node.id]

    def _prune_child_subtree(
        self,
        child: PatternNode,
        rows: dict[int, int],
        marked: set[int],
        excluded: int,
    ) -> None:
        """Prune ``child``'s subtree, reusing a memoized result when an
        earlier check pruned it under an equivalent exclusion (same key
        semantics as v1: excluded ids never include dead targets, so the
        ``excluded & relevant`` key is insensitive to the stale bits a
        cached relevant mask may carry)."""
        if not self.use_prune_memo:
            self._minimize_rows(child, rows, marked, excluded)
            return
        relevant = self._relevant(child)
        key = (child.id, excluded & relevant)
        entry = self._prune_memo.get(key)
        if entry is not None:
            self.stats.prune_memo_hits += 1
            pruned, _ = entry
            for node_id, row in pruned.items():
                rows[node_id] = row
                marked.add(node_id)
            return
        self.stats.prune_memo_misses += 1
        self._minimize_rows(child, rows, marked, excluded)
        if len(self._prune_memo) >= self.PRUNE_MEMO_CAP:
            self._prune_memo.clear()
            self.stats.prune_memo_evictions += 1
        pruned = {}
        stack = [child]
        while stack:
            current = stack.pop()
            pruned[current.id] = rows[current.id]
            stack.extend(current.children)
        self._prune_memo[key] = (pruned, relevant)

    def _minimize_rows(
        self,
        node: PatternNode,
        rows: dict[int, int],
        marked: set[int],
        excluded: int,
    ) -> None:
        """Prune ``rows`` throughout ``node``'s subtree (post-order)."""
        if node.is_leaf:
            marked.add(node.id)
            return
        for child in node.children:
            if child.id not in marked:
                self._prune_child_subtree(child, rows, marked, excluded)
        cc = self._cc
        desc = self._desc
        # One (child row, relation table) pair per child: the support test
        # for candidate s is a single AND per child instead of the v1
        # generator over images(u) with per-member hash probes.
        tests = [
            (rows[u.id], cc if u.edge is EdgeKind.CHILD else desc)
            for u in node.children
        ]
        stats = self.stats
        survivors = 0
        bits = rows[node.id]
        while bits:
            low = bits & -bits
            bits ^= low
            s = low.bit_length() - 1
            for child_row, relation in tests:
                if not child_row & relation[s]:
                    stats.pruned_entries += 1
                    break
            else:
                survivors |= low
        rows[node.id] = survivors
        size = survivors.bit_count()
        if size > stats.max_image_size_post_prune:
            stats.max_image_size_post_prune = size
        marked.add(node.id)

    # ------------------------------------------------------------------
    # Witness extraction
    # ------------------------------------------------------------------

    def _extract(
        self, rows: dict[int, int], stop_node: PatternNode
    ) -> dict[int, int]:
        mapping: dict[int, int] = {}
        for node in self.pattern.nodes():
            mapping[node.id] = node.id
        row = rows[stop_node.id]
        if row >> self._slot_of[stop_node.id] & 1:
            root_target = stop_node.id
        else:
            # Lowest set bit = minimum id (slots ascend by id), matching
            # the v1 min() tie-break.
            root_target = self._id_of[(row & -row).bit_length() - 1]
        self._assign(stop_node, root_target, rows, mapping)
        return mapping

    def _assign(
        self, v: PatternNode, s: int, rows: dict[int, int], mapping: dict[int, int]
    ) -> None:
        mapping[v.id] = s
        slot = self._slot_of[s]
        for u in v.children:
            pool = self._cc[slot] if u.edge is EdgeKind.CHILD else self._desc[slot]
            choices = pool & rows[u.id]
            if not choices:  # pragma: no cover - pruning guarantees a choice
                raise AssertionError("pruned images admitted an unsupported target")
            chosen = self._id_of[(choices & -choices).bit_length() - 1]
            self._assign(u, chosen, rows, mapping)


# ---------------------------------------------------------------------------
# Flat containment DP
# ---------------------------------------------------------------------------


def flat_mapping_targets(source: TreePattern, target: TreePattern, stats) -> dict[int, set[int]]:
    """Bitset implementation of the ``mapping_targets`` DP.

    Called by the :func:`repro.core.containment.mapping_targets` facade
    (which owns the oracle-cache lookup/store around it); ``stats`` is a
    non-optional :class:`~repro.core.containment.ContainmentStats`. Rows
    are bitsets over the target's slots; the reach pass is memoized per
    distinct row value — the same dedup granularity as v1's frozenset
    keys — and base rows per ``(type, is_output)`` source class.
    """
    target_nodes = list(target.nodes())
    id_of = sorted(node.id for node in target_nodes)
    slot_of = {node_id: s for s, node_id in enumerate(id_of)}
    n = len(id_of)
    type_bits: dict[str, int] = {}
    starred = 0
    cc = [0] * n
    child_bits = [0] * n
    for u in target_nodes:
        s = slot_of[u.id]
        b = 1 << s
        for t in u.all_types:
            type_bits[t] = type_bits.get(t, 0) | b
        if u.is_output:
            starred |= b
        for c in u.children:
            cb = 1 << slot_of[c.id]
            child_bits[s] |= cb
            if c.edge.is_child:
                cc[s] |= cb
    post_slots = [slot_of[u.id] for u in target.postorder()]

    rows: dict[int, int] = {}
    base_cache: dict[tuple[str, bool], int] = {}
    reach_cache: dict[int, int] = {}

    def base_for(v: PatternNode) -> int:
        key = (v.type, v.is_output)
        cached = base_cache.get(key)
        if cached is not None:
            stats.base_cache_hits += 1
            return cached
        stats.base_cache_misses += 1
        base = type_bits.get(v.type, 0)
        if v.is_output:
            base &= starred
        base_cache[key] = base
        return base

    def reach_for(row: int) -> int:
        cached = reach_cache.get(row)
        if cached is not None:
            stats.reach_cache_hits += 1
            return cached
        stats.reach_cache_misses += 1
        reach = 0
        for s in post_slots:
            if child_bits[s] & (row | reach):
                reach |= 1 << s
        reach_cache[row] = reach
        return reach

    for v in source.postorder():
        base = base_for(v)
        if v.is_leaf:
            rows[v.id] = base
            continue
        # Per child: (row, relation) for c-edges, (reach, None) for
        # d-edges — admissibility of candidate s is one AND either way.
        c_tests = []
        d_reach = []
        for cv in v.children:
            if cv.edge.is_child:
                c_tests.append(rows[cv.id])
            else:
                d_reach.append(reach_for(rows[cv.id]))
        required_reach = ~0
        for reach in d_reach:
            required_reach &= reach
        admissible = base & required_reach if d_reach else base
        if c_tests:
            bits = admissible
            admissible = 0
            while bits:
                low = bits & -bits
                bits ^= low
                s = low.bit_length() - 1
                for child_row in c_tests:
                    if not child_row & cc[s]:
                        break
                else:
                    admissible |= low
        rows[v.id] = admissible
    return {
        node_id: bits_to_ids(row, id_of) for node_id, row in rows.items()
    }
