"""Core-engine selection (v1 object engine vs v2 flat engine).

The minimization core has two interchangeable implementations:

* **v1** — the original object-walking engine
  (:class:`repro.core.images.ImagesEngine` and the set-based
  ``mapping_targets`` DP in :mod:`repro.core.containment`);
* **v2** — the flat engine (:mod:`repro.core.engine_v2`): patterns
  compiled to arrays, images sets and DP rows held as bitsets.

Both produce byte-identical results (pinned by the differential suites in
``tests/test_engine_v2.py``); v2 is the default because it is faster.

Resolution order for every dispatch site, most specific first:

1. an explicit ``engine=...`` argument (``MinimizeOptions.core_engine``,
   the ``--engine``/``--core-engine`` CLI flags);
2. the innermost active :func:`core_engine_scope` (how ``Session``
   applies its options re-entrantly);
3. the process default set via :func:`set_default_core_engine`;
4. the ``REPRO_CORE_ENGINE`` environment variable;
5. ``"v2"``.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from typing import Iterator, Optional

__all__ = [
    "CORE_ENGINES",
    "DEFAULT_CORE_ENGINE",
    "resolve_core_engine",
    "default_core_engine",
    "set_default_core_engine",
    "core_engine_scope",
]

#: The valid values everywhere a core engine can be named.
CORE_ENGINES = ("v1", "v2")

#: The built-in default when nothing else chooses.
DEFAULT_CORE_ENGINE = "v2"

_ENV_VAR = "REPRO_CORE_ENGINE"

#: Lazily-resolved process default (None = not resolved yet).
_process_default: Optional[str] = None

_scope: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_core_engine_scope", default=None
)


def _validate(engine: str) -> str:
    if engine not in CORE_ENGINES:
        raise ValueError(
            f"unknown core engine {engine!r} (expected one of {CORE_ENGINES})"
        )
    return engine


def default_core_engine() -> str:
    """The process-wide default engine (env-seeded, lazily resolved)."""
    global _process_default
    if _process_default is None:
        env = os.environ.get(_ENV_VAR, "").strip()
        _process_default = env if env in CORE_ENGINES else DEFAULT_CORE_ENGINE
    return _process_default


def set_default_core_engine(engine: str) -> None:
    """Set the process-wide default engine (workers call this from their
    initializer — context variables do not cross process boundaries)."""
    global _process_default
    _process_default = _validate(engine)


def resolve_core_engine(engine: Optional[str] = None) -> str:
    """Resolve an optional explicit choice to a concrete engine name."""
    if engine is not None:
        return _validate(engine)
    scoped = _scope.get()
    if scoped is not None:
        return scoped
    return default_core_engine()


@contextlib.contextmanager
def core_engine_scope(engine: Optional[str]) -> Iterator[None]:
    """Pin the engine for the duration of the ``with`` block (re-entrant,
    task-local). ``None`` is a no-op scope, so callers can pass an
    unresolved option straight through."""
    if engine is None:
        yield
        return
    token = _scope.set(_validate(engine))
    try:
        yield
    finally:
        _scope.reset(token)
