"""The reduction step ``R`` of the strategy algebra (Section 5.3).

*Reduction* repeatedly eliminates a leaf ``l`` of type ``t`` whose parent
``n`` has type ``t'`` when the (closed) IC set contains ``t' -> t`` (for a
c-edge) or ``t' ->> t`` (for a d-edge) — the directly-IC-implied leaves.
It always removes a descendant before its ancestors and preserves
equivalence under the ICs.

Reduction is weaker than CDM (it is CDM restricted to rules (i)/(ii)) and
exists mainly as one letter of the ``{A, R, M}`` strategy language used to
prove ACIM optimal (Lemmas 5.2–5.4); see :mod:`repro.core.strategy`.
"""

from __future__ import annotations

from typing import Iterable

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .edges import EdgeKind
from .node import PatternNode
from .pattern import TreePattern

__all__ = ["reduce_pattern", "is_directly_implied"]


def is_directly_implied(leaf: PatternNode, repo: ConstraintRepository) -> bool:
    """Whether ``leaf`` is removable by one reduction step.

    The parent's full type-set (original plus co-occurrence annotations)
    is consulted, so reduction behaves correctly on augmented queries.
    """
    parent = leaf.parent
    if parent is None or leaf.is_output or not leaf.is_leaf:
        return False
    if leaf.edge is EdgeKind.CHILD:
        return any(repo.has_required_child(t, leaf.type) for t in parent.all_types)
    return any(repo.has_required_descendant(t, leaf.type) for t in parent.all_types)


def reduce_pattern(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None" = None,
    *,
    in_place: bool = False,
) -> TreePattern:
    """Apply reduction to fixpoint and return the reduced query.

    The constraint set is closed first unless already marked closed.
    """
    repo = coerce_repository(constraints)
    if not repo.is_closed:
        repo = closure(repo)
    query = pattern if in_place else pattern.copy()
    changed = True
    while changed:
        changed = False
        for leaf in list(query.leaves()):
            if not leaf.is_root and is_directly_implied(leaf, repo):
                query.delete_leaf(leaf)
                changed = True
    return query
