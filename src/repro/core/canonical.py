"""Canonical databases of tree patterns.

The homomorphism theorem for tree patterns (Section 4) holds "in the
presence of sufficiently many node types": the classical proof evaluates
the candidate container query over *canonical models* of the contained
one — data trees obtained by instantiating the pattern, expanding each
descendant edge into a chain with ``k ≥ 0`` interposed nodes of a fresh
dummy type no query mentions.

This module builds those instances. They serve as:

* semantic test instruments — a non-containment claim can be *witnessed*
  by a canonical instance on which the answers differ;
* self-checks — every pattern embeds into each of its canonical
  instances with the identity-like embedding.
"""

from __future__ import annotations

from typing import Sequence

from ..data.tree import DataNode, DataTree
from .node import PatternNode
from .pattern import TreePattern

__all__ = ["DUMMY_TYPE", "canonical_instance", "canonical_instances", "canonical_answer"]

#: Fresh type used for descendant-edge expansion; queries must not use it.
DUMMY_TYPE = "_z"


def canonical_instance(
    pattern: TreePattern, expansion: int = 0, *, dummy_type: str = DUMMY_TYPE
) -> DataTree:
    """One canonical database: the pattern instantiated with every
    descendant edge expanded into a chain of ``expansion`` dummy nodes.

    ``expansion=0`` turns d-edges into direct edges (the tightest
    instance); larger values exercise the "maps to any chain" latitude.
    The data node corresponding to pattern node ``v`` carries ``v``'s
    full type-set and records ``v.id`` in its ``source`` attribute.
    """
    if expansion < 0:
        raise ValueError("expansion must be >= 0")
    tree = DataTree(pattern.root.all_types, attributes={"source": str(pattern.root.id)})

    def instantiate(node: PatternNode, anchor: DataNode) -> None:
        for child in node.children:
            attach = anchor
            if child.edge.is_descendant:
                for _ in range(expansion):
                    attach = tree.add_child(attach, dummy_type)
            data_child = tree.add_child(
                attach, child.all_types, attributes={"source": str(child.id)}
            )
            instantiate(child, data_child)

    instantiate(pattern.root, tree.root)
    return tree


def canonical_instances(
    pattern: TreePattern,
    expansions: Sequence[int] = (0, 1, 2),
    *,
    dummy_type: str = DUMMY_TYPE,
) -> list[DataTree]:
    """Canonical instances for several expansion factors."""
    return [
        canonical_instance(pattern, k, dummy_type=dummy_type) for k in expansions
    ]


def canonical_answer(pattern: TreePattern, instance: DataTree) -> set[int]:
    """The data node ids of ``instance`` stemming from the pattern's
    output node (via the ``source`` attribute) — the answer the identity
    embedding of the pattern into its own canonical instance produces."""
    output_id = str(pattern.output_node.id)
    return {n.id for n in instance.nodes() if n.attributes.get("source") == output_id}
