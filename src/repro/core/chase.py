"""Chase and augmentation of tree patterns with integrity constraints.

Two variants are provided:

* :func:`chase` — the classical chase adapted to tree queries (Section
  5.1): repeatedly apply every IC to every node, materializing required
  children/descendants. Kept for exposition and tests; as the paper notes,
  a blind chase can blow the query up arbitrarily (its depth grows without
  bound), which is why ACIM does not use it.

* :func:`augment` / :func:`augmentation_targets` — the paper's
  *augmentation* (Section 5.2), the chase with three changes: the IC set
  must be logically closed; ICs are applied only to **original** nodes and
  only when the required type already occurs in the original query (so the
  augmented query has size O(n²) and depth at most one more than the
  input); and added nodes/edges are **temporary**.

  :func:`augment` materializes temporaries into a copy (handy for the
  containment oracle and for display); :func:`augmentation_targets`
  returns them as never-materialized :class:`VirtualTarget` rows plus
  co-occurrence type annotations, which is how ACIM actually runs them
  (Section 6.1: "augmentations are not physically added to the initial
  query").
"""

from __future__ import annotations

from typing import Iterable

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .edges import EdgeKind
from .images import VirtualTarget
from .pattern import TreePattern

__all__ = ["augmentation_targets", "augment", "chase"]


def _closed(
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
) -> ConstraintRepository:
    repo = coerce_repository(constraints)
    return repo if repo.is_closed else closure(repo)


def augmentation_targets(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
) -> tuple[list[VirtualTarget], dict[int, frozenset[str]]]:
    """Compute the paper's augmentation without materializing it.

    Returns
    -------
    (virtual, extra_types)
        ``virtual`` — one :class:`VirtualTarget` per applied required-child
        / required-descendant IC (required-descendant targets are skipped
        when a required-child target of the same type already hangs off the
        same node, since a c-child is in particular a descendant);
        ``extra_types`` — per node id, the co-occurrence types to associate
        with the node.

    Only types already present in ``pattern`` are ever introduced, and ICs
    are applied to the pattern's (original) nodes only — both per Section
    5.2. The constraint set is closed first if needed.
    """
    repo = _closed(constraints)
    present = {n.type for n in pattern.nodes() if not n.temporary}
    virtual: list[VirtualTarget] = []
    extra_types: dict[int, frozenset[str]] = {}
    next_id = -1
    for node in pattern.nodes():
        if node.temporary:
            # Per Section 5.2, ICs are never applied to nodes the chase
            # itself added (this is what keeps augmentation bounded and
            # makes repeated augmentation idempotent in the A/R/M algebra).
            continue
        cooc = {
            t2 for t2 in repo.co_occurring_with(node.type) if t2 in present
        }
        if cooc:
            extra_types[node.id] = frozenset(cooc)
        child_types = {
            t2 for t2 in repo.required_children_of(node.type) if t2 in present
        }
        for t2 in sorted(child_types):
            virtual.append(VirtualTarget(next_id, t2, node.id, EdgeKind.CHILD))
            next_id -= 1
        for t2 in sorted(repo.required_descendants_of(node.type)):
            # A required child of the same type already provides a
            # (stronger) target; skip the redundant descendant row.
            if t2 in present and t2 not in child_types:
                virtual.append(VirtualTarget(next_id, t2, node.id, EdgeKind.DESCENDANT))
                next_id -= 1
    return virtual, extra_types


def augment(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
) -> TreePattern:
    """Materialized augmentation: a copy of ``pattern`` with temporary
    nodes attached and co-occurrence types annotated.

    The result is equivalent to ``pattern`` under the constraints; tests
    use it with the containment oracle to certify ACIM's behaviour.
    """
    result = pattern.copy()
    virtual, extra_types = augmentation_targets(pattern, constraints)
    for node_id, types in extra_types.items():
        for t in sorted(types):
            result.add_extra_type(result.node(node_id), t)
    for vt in virtual:
        result.add_child(result.node(vt.parent_id), vt.node_type, vt.edge, temporary=True)
    return result


def chase(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
    *,
    rounds: int = 1,
) -> TreePattern:
    """The classical (unrestricted) chase, for ``rounds`` sweeps.

    Every sweep applies every required-child/descendant IC to every node —
    including nodes added by earlier sweeps — materializing a new
    (temporary-flagged) node per application, and applies co-occurrence
    ICs as type annotations. Each (node, constraint) pair fires at most
    once, so a single call terminates, but repeated sweeps grow the query
    without bound when constraints chain — the size/depth blowup that
    motivates augmentation.
    """
    repo = coerce_repository(constraints)
    result = pattern.copy()
    fired: set[tuple[int, IntegrityConstraint]] = set()
    for _ in range(rounds):
        changed = False
        for node in list(result.nodes()):
            for c in sorted(repo.constraints_from(node.type)):
                key = (node.id, c)
                if key in fired:
                    continue
                fired.add(key)
                changed = True
                if c.is_co_occurrence:
                    result.add_extra_type(node, c.target)
                else:
                    edge = EdgeKind.CHILD if c.is_required_child else EdgeKind.DESCENDANT
                    result.add_child(node, c.target, edge, temporary=True)
        if not changed:
            break
    return result
