"""Chase and augmentation of tree patterns with integrity constraints.

Two variants are provided:

* :func:`chase` — the classical chase adapted to tree queries (Section
  5.1): repeatedly apply every IC to every node, materializing required
  children/descendants. Kept for exposition and tests; as the paper notes,
  a blind chase can blow the query up arbitrarily (its depth grows without
  bound), which is why ACIM does not use it.

* :func:`augment` / :func:`augmentation_targets` — the paper's
  *augmentation* (Section 5.2), the chase with three changes: the IC set
  must be logically closed; ICs are applied only to **original** nodes and
  only when the required type already occurs in the original query (so the
  augmented query has size O(n²) and depth at most one more than the
  input); and added nodes/edges are **temporary**.

  :func:`augment` materializes temporaries into a copy (handy for the
  containment oracle and for display); :func:`augmentation_targets`
  returns them as never-materialized :class:`VirtualTarget` rows plus
  co-occurrence type annotations, which is how ACIM actually runs them
  (Section 6.1: "augmentations are not physically added to the initial
  query").
"""

from __future__ import annotations

from typing import Iterable

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .edges import EdgeKind
from .images import VirtualTarget
from .pattern import TreePattern

__all__ = ["augmentation_targets", "augment", "chase"]


def _closed(
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
) -> ConstraintRepository:
    repo = coerce_repository(constraints)
    return repo if repo.is_closed else closure(repo)


def augmentation_targets(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
) -> tuple[list[VirtualTarget], dict[int, frozenset[str]]]:
    """Compute the paper's augmentation without materializing it.

    Returns
    -------
    (virtual, extra_types)
        ``virtual`` — one :class:`VirtualTarget` per applied required-child
        / required-descendant IC (required-descendant targets are skipped
        when a required-child target of the same type already hangs off the
        same node, since a c-child is in particular a descendant);
        ``extra_types`` — per node id, the co-occurrence types to associate
        with the node.

    Without co-occurrence constraints, only types already present in
    ``pattern`` are introduced and every target is a flat leaf — the
    Section 5.2 augmentation, which bottom-up leaf elimination makes
    complete (a leaf's images stay anchored at real nodes, each carrying
    its own guarantees). Co-occurrence breaks that: a multi-typed witness
    (``a -> b`` with ``b ~ c``) can serve as the image of a *non-leaf*
    real node, whose children must then map below the witness. Those runs
    therefore expand full witness subtrees, mirroring the containment
    oracle (:func:`repro.core.ic_containment.chase_for_containment`):
    each target carries its (presence-filtered) co-occurrence types,
    recursion materializes the guarantees below it, and witness structure
    is not presence-filtered — a chain may pass through an absent type to
    reach a present one (extra types stay filtered: mapping sources are
    real nodes, so an absent extra type can never receive one). Witness
    depth is capped at the pattern's height — an image chain k levels
    below an anchor needs k strict source ancestors mapping above it, so
    deeper witnesses can never receive a mapping. Degenerate closures
    (not finitely satisfiable) keep the flat Section 5.2 targets: their
    witness trees are infinite, and the conservative augmentation matches
    what the containment oracle can verify in that regime.

    ICs are applied to the pattern's (original) nodes only, and the
    constraint set is closed first if needed.
    """
    repo = _closed(constraints)
    virtual: list[VirtualTarget] = []
    extra_types: dict[int, frozenset[str]] = {}
    has_cooc = any(c.is_co_occurrence for c in repo)
    if has_cooc:
        from .ic_containment import finitely_satisfiable

        has_cooc = finitely_satisfiable(repo)
    present = {n.type for n in pattern.nodes() if not n.temporary}
    if has_cooc:
        depth_cap = max(n.depth for n in pattern.nodes())
        counter = iter(range(-1, -(1 << 30), -1))

        def expand(parent_id: int, t2: str, edge: EdgeKind, depth: int) -> None:
            # Witness *structure* is not presence-filtered — a chain can
            # pass through an absent type to reach a present one — but
            # extra types are: mapping sources are real nodes, so an
            # absent extra type can never receive a mapping.
            vt = VirtualTarget(
                next(counter), t2, parent_id, edge,
                extra_types=frozenset(
                    t for t in repo.co_occurring_with(t2) if t in present
                ),
            )
            virtual.append(vt)
            if depth >= depth_cap:
                return
            child_types = repo.required_children_of(t2)
            for t3 in sorted(child_types):
                expand(vt.id, t3, EdgeKind.CHILD, depth + 1)
            for t3 in sorted(repo.required_descendants_of(t2)):
                if t3 not in child_types:
                    expand(vt.id, t3, EdgeKind.DESCENDANT, depth + 1)

        for node in pattern.nodes():
            if node.temporary:
                continue
            cooc = {
                t2 for t2 in repo.co_occurring_with(node.type) if t2 in present
            }
            if cooc:
                extra_types[node.id] = frozenset(cooc)
            child_types = {t2 for t2 in repo.required_children_of(node.type)}
            for t2 in sorted(child_types):
                expand(node.id, t2, EdgeKind.CHILD, 1)
            for t2 in sorted(repo.required_descendants_of(node.type)):
                if t2 not in child_types:
                    expand(node.id, t2, EdgeKind.DESCENDANT, 1)
        return virtual, extra_types

    next_id = -1
    for node in pattern.nodes():
        if node.temporary:
            # Per Section 5.2, ICs are never applied to nodes the chase
            # itself added (this is what keeps augmentation bounded and
            # makes repeated augmentation idempotent in the A/R/M algebra).
            continue
        cooc = {
            t2 for t2 in repo.co_occurring_with(node.type) if t2 in present
        }
        if cooc:
            extra_types[node.id] = frozenset(cooc)
        child_types = {
            t2 for t2 in repo.required_children_of(node.type) if t2 in present
        }
        for t2 in sorted(child_types):
            virtual.append(VirtualTarget(next_id, t2, node.id, EdgeKind.CHILD))
            next_id -= 1
        for t2 in sorted(repo.required_descendants_of(node.type)):
            # A required child of the same type already provides a
            # (stronger) target; skip the redundant descendant row.
            if t2 in present and t2 not in child_types:
                virtual.append(VirtualTarget(next_id, t2, node.id, EdgeKind.DESCENDANT))
                next_id -= 1
    return virtual, extra_types


def augment(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
) -> TreePattern:
    """Materialized augmentation: a copy of ``pattern`` with temporary
    nodes attached and co-occurrence types annotated.

    The result is equivalent to ``pattern`` under the constraints; tests
    use it with the containment oracle to certify ACIM's behaviour.
    """
    result = pattern.copy()
    virtual, extra_types = augmentation_targets(pattern, constraints)
    for node_id, types in extra_types.items():
        for t in sorted(types):
            result.add_extra_type(result.node(node_id), t)
    materialized: dict[int, object] = {}
    for vt in virtual:
        parent = (
            materialized[vt.parent_id]
            if vt.parent_id < 0
            else result.node(vt.parent_id)
        )
        node = result.add_child(parent, vt.node_type, vt.edge, temporary=True)
        for t in sorted(vt.extra_types):
            result.add_extra_type(node, t)
        materialized[vt.id] = node
    return result


def chase(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint]",
    *,
    rounds: int = 1,
) -> TreePattern:
    """The classical (unrestricted) chase, for ``rounds`` sweeps.

    Every sweep applies every required-child/descendant IC to every node —
    including nodes added by earlier sweeps — materializing a new
    (temporary-flagged) node per application, and applies co-occurrence
    ICs as type annotations. Each (node, constraint) pair fires at most
    once, so a single call terminates, but repeated sweeps grow the query
    without bound when constraints chain — the size/depth blowup that
    motivates augmentation.
    """
    repo = coerce_repository(constraints)
    result = pattern.copy()
    fired: set[tuple[int, IntegrityConstraint]] = set()
    for _ in range(rounds):
        changed = False
        for node in list(result.nodes()):
            for c in sorted(repo.constraints_from(node.type)):
                key = (node.id, c)
                if key in fired:
                    continue
                fired.add(key)
                changed = True
                if c.is_co_occurrence:
                    result.add_extra_type(node, c.target)
                else:
                    edge = EdgeKind.CHILD if c.is_required_child else EdgeKind.DESCENDANT
                    result.add_child(node, c.target, edge, temporary=True)
        if not changed:
            break
    return result
