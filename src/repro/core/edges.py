"""Edge kinds (axes) of tree pattern queries.

A tree pattern query has two kinds of edges:

* **child** edges (drawn as single edges in the paper, ``/`` in XPath):
  the lower node must be a direct child of the upper node's image;
* **descendant** edges (double edges, ``//`` in XPath): the lower node must
  be a *proper* descendant of the upper node's image.

Following the paper's terminology, a node connected to its parent by a
child edge is a *c-child* and by a descendant edge a *d-child*; "child of"
in prose covers both and is purely syntactic.
"""

from __future__ import annotations

import enum

__all__ = ["EdgeKind", "CHILD", "DESCENDANT"]


class EdgeKind(enum.Enum):
    """The axis connecting a pattern node to its parent."""

    #: Direct containment (``/``): image must be a child of the parent's image.
    CHILD = "child"
    #: Transitive containment (``//``): image must be a proper descendant.
    DESCENDANT = "descendant"

    @property
    def symbol(self) -> str:
        """XPath-style separator for this edge kind (``/`` or ``//``)."""
        return "/" if self is EdgeKind.CHILD else "//"

    @property
    def is_child(self) -> bool:
        """True for c-edges."""
        return self is EdgeKind.CHILD

    @property
    def is_descendant(self) -> bool:
        """True for d-edges."""
        return self is EdgeKind.DESCENDANT

    @classmethod
    def from_symbol(cls, symbol: str) -> "EdgeKind":
        """Map ``/`` to CHILD and ``//`` to DESCENDANT.

        Raises
        ------
        ValueError
            If ``symbol`` is neither separator.
        """
        if symbol == "/":
            return cls.CHILD
        if symbol == "//":
            return cls.DESCENDANT
        raise ValueError(f"unknown edge symbol {symbol!r} (expected '/' or '//')")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeKind.{self.name}"


#: Convenience aliases so call sites can say ``CHILD`` / ``DESCENDANT``.
CHILD = EdgeKind.CHILD
DESCENDANT = EdgeKind.DESCENDANT
