"""Exhaustive reference minimizer (exponential; tests only).

Explores *every* elimination ordering: breadth-first over subqueries
reachable by deleting one (non-root, non-output) leaf at a time, keeping
only equivalence-preserving deletions, and returns a smallest equivalent
query found. By Lemma 4.2 every equivalent subquery is reachable this
way, so the result is the true minimum — at exponential cost, which is
fine for the ≤10-node queries the property tests use.

Without constraints the equivalence check is the plain containment-
mapping oracle; with constraints it is
:func:`~repro.core.ic_containment.equivalent_under` (see that module's
caveats about degenerate closures).
"""

from __future__ import annotations

from typing import Iterable

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .containment import equivalent
from .ic_containment import equivalent_under
from .pattern import TreePattern

__all__ = ["exhaustive_minimize"]

#: Safety bound: the search is exponential in the query size.
MAX_EXHAUSTIVE_SIZE = 12


def exhaustive_minimize(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None" = None,
    *,
    max_size: int = MAX_EXHAUSTIVE_SIZE,
) -> TreePattern:
    """A smallest query equivalent to ``pattern`` (under ``constraints``).

    Raises
    ------
    ValueError
        If the pattern exceeds ``max_size`` nodes (the search space is
        exponential).
    """
    if pattern.size > max_size:
        raise ValueError(
            f"exhaustive search limited to {max_size} nodes (got {pattern.size})"
        )
    repo = coerce_repository(constraints)
    if len(repo) and not repo.is_closed:
        repo = closure(repo)

    def equivalent_to_original(candidate: TreePattern) -> bool:
        if len(repo):
            return equivalent_under(candidate, pattern, repo)
        return equivalent(candidate, pattern)

    best = pattern.copy()
    seen: set[frozenset[int]] = {frozenset(n.id for n in pattern.nodes())}
    frontier: list[TreePattern] = [pattern.copy()]
    while frontier:
        next_frontier: list[TreePattern] = []
        for query in frontier:
            for leaf in list(query.leaves()):
                if leaf.is_root or leaf.is_output:
                    continue
                candidate = query.copy()
                candidate.delete_leaf(candidate.node(leaf.id))
                key = frozenset(n.id for n in candidate.nodes())
                if key in seen:
                    continue
                seen.add(key)
                if not equivalent_to_original(candidate):
                    continue
                if candidate.size < best.size:
                    best = candidate
                next_frontier.append(candidate)
        frontier = next_frontier
    return best
