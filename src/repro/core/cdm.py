"""Algorithm CDM — constraint-dependent local minimization (Section 5.4/5.5).

CDM eliminates, in near-linear time, every *locally redundant* leaf of a
tree pattern under a logically closed set of ICs. A leaf ``l`` is locally
redundant when one of the paper's four conditions holds:

(i)   ``l`` (type ``t'``) is a c-child of ``n`` (type ``t``) and
      ``t -> t'`` holds;
(ii)  ``l`` is a d-child of ``n`` and ``t ->> t'`` holds;
(iii) ``l`` is a c-child of ``n``, ``n`` has another c-child of type
      ``t``, and ``t ~ t'`` holds;
(iv)  ``l`` is a d-child of ``n``, ``n`` has some descendant of type
      ``t``, and ``t ->> t'`` or ``t ~ t'`` holds.

Testing (iv) naively needs non-local information, so CDM propagates an
*information content* (:mod:`repro.core.infocontent`) up the tree —
Figure 4's propagation rules — and alternates propagation with a
per-node minimization step — Figure 6's pairwise rules, each a single
hash probe into the constraint repository. When a node loses all its
children, its own ``~t`` argument relaxes to ``t`` before being
propagated, which lets redundancy cascade up the tree (Figure 5).

CDM is *locally* minimal only (Theorem 5.2); it neither subsumes nor is
subsumed by plain CIM. Its role is a fast pre-filter: CDM followed by
ACIM still produces the unique global minimum (Theorem 5.3) — see
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .edges import EdgeKind
from .infocontent import ArgKind, InfoArg, InfoContent
from .node import PatternNode
from .pattern import TreePattern

__all__ = ["CdmResult", "cdm_minimize", "propagate_child_content"]


@dataclass
class CdmResult:
    """Outcome of a CDM run.

    Attributes
    ----------
    pattern:
        The locally minimized query.
    eliminated:
        ``(node_id, node_type, rule)`` triples in elimination order, where
        ``rule`` names the Figure 6 rule family that fired.
    rule_counts:
        How many nodes each rule family removed.
    contents:
        Final information content per surviving node id (only when
        ``keep_contents=True``) — matches the boxed labels of Figure 5.
    seconds:
        Wall-clock time of the sweep (closure time excluded; pass a closed
        repository for benchmark-grade numbers).
    """

    pattern: TreePattern
    eliminated: list[tuple[int, str, str]] = field(default_factory=list)
    rule_counts: dict[str, int] = field(default_factory=dict)
    contents: dict[int, InfoContent] = field(default_factory=dict)
    seconds: float = 0.0
    #: One :class:`repro.certify.witness.WitnessStep` per eliminated node
    #: (parallel to ``eliminated``; only when ``collect_witnesses=True``).
    witness_steps: list = field(default_factory=list)

    @property
    def removed_count(self) -> int:
        """Number of nodes eliminated."""
        return len(self.eliminated)


def propagate_child_content(
    child: PatternNode, child_content: InfoContent
) -> list[tuple[InfoArg, Optional[int]]]:
    """Figure 4's propagation rules for one child.

    Returns the ``(argument, source)`` pairs the parent gains from
    ``child``; ``source`` is ``child.id`` when the argument is the child's
    own type in removable form, else ``None``.

    * The child's SELF argument becomes an ``a`` (d-edge) or ``p``
      (c-edge) obligation, keeping its constrained flag (rules 1 and 4).
    * Every obligation held by the child becomes a *constrained* ``a``
      obligation of the parent — whatever the edge kind, the obliged node
      is at least two steps away (rules 2, 3, 5, 6).
    """
    out: list[tuple[InfoArg, Optional[int]]] = []
    self_arg = child_content.self_arg()
    if self_arg is None:  # pragma: no cover - contents always start with SELF
        raise AssertionError("child content missing SELF argument")
    kind = ArgKind.ANCESTOR if child.edge is EdgeKind.DESCENDANT else ArgKind.PARENT
    out.append((InfoArg(kind, self_arg.type, self_arg.constrained), child.id))
    for arg in child_content.args():
        if arg.is_obligation:
            out.append((InfoArg(ArgKind.ANCESTOR, arg.type, True), None))
    return out


def _match_rule(
    justifier: InfoArg, target: InfoArg, repo: ConstraintRepository
) -> Optional[str]:
    """Figure 6's minimization rules (sound reading — see DESIGN.md).

    ``target`` is a removable-form obligation; return the rule family name
    when ``justifier`` discharges it, else ``None``.
    """
    if target.kind is ArgKind.ANCESTOR:
        # The obligation asks for a descendant of type target.type.
        if justifier.kind is ArgKind.SELF:
            # Rules 1-2 (the closed repository turns t1 -> t2 into
            # t1 ->> t2, so one probe covers both edge kinds here).
            if repo.has_required_descendant(justifier.type, target.type):
                return "self-descendant"
        else:
            # Rules 3-4: some descendant of type t1 exists below the node;
            # t1 ->> t2 supplies the required t2 descendant.
            if repo.has_required_descendant(justifier.type, target.type):
                return "obligation-descendant"
            # Rules 5-6 (descendant flavour): that t1 descendant *is* a
            # t2 node, directly satisfying the obligation.
            if repo.has_co_occurrence(justifier.type, target.type):
                return "obligation-co-occurrence"
    else:  # target.kind is ArgKind.PARENT — asks for a c-child leaf
        if justifier.kind is ArgKind.SELF:
            # Rule 2: the node's own type requires such a child.
            if repo.has_required_child(justifier.type, target.type):
                return "self-child"
        elif justifier.kind is ArgKind.PARENT:
            # Rules 5-6 (child flavour): a sibling c-child of type t1 is
            # also a t2 node. Only a *c-child* justifier is sound here.
            if repo.has_co_occurrence(justifier.type, target.type):
                return "sibling-co-occurrence"
    return None


def cdm_minimize(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None" = None,
    *,
    in_place: bool = False,
    keep_contents: bool = False,
    collect_witnesses: bool = False,
) -> CdmResult:
    """Run Algorithm CDM on ``pattern`` under ``constraints``.

    The constraint set is closed first unless the repository is already
    marked closed (pass a pre-closed repository when timing CDM itself,
    as the Figure 8 experiments do).

    One post-order sweep: each node's content is assembled from its
    (already minimized) children, the Figure 6 rules run to a per-node
    fixpoint — deleting discharged leaf children — and the final content
    is what the parent later sees. Upward cascades (a node becoming an
    unconstrained leaf) are therefore handled in the same sweep.

    With ``collect_witnesses=True`` each elimination also records a
    witness containment mapping derived from the rule that fired (a
    sibling/descendant retarget, or a chase-implied virtual node), filling
    :attr:`CdmResult.witness_steps` for certificate assembly.
    """
    repo = coerce_repository(constraints)
    if not repo.is_closed:
        repo = closure(repo)
    query = pattern if in_place else pattern.copy()
    result = CdmResult(pattern=query)

    start = time.perf_counter()
    contents: dict[int, InfoContent] = {}
    _sweep(query.root, contents, repo, result, collect_witnesses)
    result.seconds = time.perf_counter() - start

    if keep_contents:
        result.contents = contents
    return result


def _sweep(
    root: PatternNode,
    contents: dict[int, InfoContent],
    repo: ConstraintRepository,
    result: CdmResult,
    collect_witnesses: bool = False,
) -> None:
    # Explicit-stack postorder: queries can be deeper than Python's
    # recursion budget, and deep recursion is disproportionately slow on
    # CPython (stack-chunk thrashing).
    stack: list[tuple[PatternNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
            continue

        content = InfoContent()
        content.set_self(node.type, constrained=not node.is_leaf)
        for child in node.children:
            for arg, source in propagate_child_content(child, contents[child.id]):
                content.add(arg, source)

        _minimize_at(node, content, repo, result, collect_witnesses)

        if node.is_leaf:
            # All children were discharged: ~t relaxes to t before the
            # parent reads this content (the cascading step of Figure 5).
            content.set_self(node.type, constrained=False)
        contents[node.id] = content


def _minimize_at(
    node: PatternNode,
    content: InfoContent,
    repo: ConstraintRepository,
    result: CdmResult,
    collect_witnesses: bool = False,
) -> None:
    # One ordered pass suffices: rule applications only ever *remove*
    # arguments and sources, so a target that has no live justifier now
    # will never gain one later at this node. This keeps the per-node cost
    # at O(#targets * #args) — the paper's "quadratic in the node fanout".
    for target in content.removable_args():
        if not content.is_live(target):
            continue
        found = _find_justification(content, target, repo, result)
        if found is not None:
            rule, justifier = found
            _discharge(
                node, content, target, rule, justifier, result, collect_witnesses
            )


def _find_justification(
    content: InfoContent,
    target: InfoArg,
    repo: ConstraintRepository,
    result: CdmResult,
) -> Optional[tuple[str, InfoArg]]:
    # A self-pair justification (the target trimming its own duplicates,
    # e.g. t ->> t) must keep one source alive, so it is only a fallback:
    # any other justifier discharges *every* source, and each target is
    # visited once.
    fallback: Optional[tuple[str, InfoArg]] = None
    for justifier in content.args():
        if not content.is_live(justifier):
            continue
        if justifier == target:
            if fallback is None and len(content.sources_of(target)) >= 2:
                rule = _match_rule(justifier, target, repo)
                if rule is not None:
                    fallback = (f"{rule}(self-pair)", justifier)
            continue
        rule = _match_rule(justifier, target, repo)
        if rule is not None:
            return (rule, justifier)
    return fallback


def _witness_step(
    node: PatternNode,
    source: PatternNode,
    target: InfoArg,
    rule: str,
    justifier: InfoArg,
    kept_id: Optional[int],
):
    """The witness containment mapping for one CDM elimination.

    Rebuilt from the rule that fired: the deleted leaf is retargeted
    either at a live sibling/descendant node the justifier argument
    tracks, or at a chase-implied virtual node (a step-local
    :class:`~repro.certify.witness.VirtualRow`); every other node maps to
    itself. Failure to locate the justifying node would mean the rule
    fired on a stale argument — an internal invariant violation.
    """
    from ..certify.witness import VirtualRow, WitnessStep

    base = rule[: -len("(self-pair)")] if rule.endswith("(self-pair)") else rule
    if kept_id is not None:
        # Self-pair: the deleted duplicate folds onto the kept source,
        # a live sibling of the same type and edge kind.
        return WitnessStep(
            node_id=source.id,
            node_type=source.type,
            stage="cdm",
            rule=rule,
            mapping=((source.id, kept_id),),
        )
    if base == "self-child":
        row = VirtualRow(-1, target.type, node.id, "child")
        return WitnessStep(source.id, source.type, "cdm", rule, ((source.id, -1),), (row,))
    if base == "self-descendant":
        row = VirtualRow(-1, target.type, node.id, "descendant")
        return WitnessStep(source.id, source.type, "cdm", rule, ((source.id, -1),), (row,))

    # The remaining rules are justified by a live node the justifier
    # argument witnesses: an unconstrained argument tracks its source
    # leaves directly; a constrained one is backed by a surviving
    # non-leaf child (or deeper node) of the justifier's type.
    witness_node: Optional[PatternNode] = None
    if base == "sibling-co-occurrence":
        for child in node.children:
            if (
                child.edge is EdgeKind.CHILD
                and child.type == justifier.type
                and child.id != source.id
            ):
                witness_node = child
                break
    else:  # obligation-descendant / obligation-co-occurrence
        for desc in node.descendants():
            if desc.type == justifier.type and desc.id != source.id:
                witness_node = desc
                break
    if witness_node is None:  # pragma: no cover - liveness invariant
        raise AssertionError(
            f"CDM rule {rule!r} fired with no live justifying node of type "
            f"{justifier.type!r} under node {node.id}"
        )
    if base == "obligation-descendant":
        # The justifying descendant requires a target.type descendant of
        # its own; the deleted leaf maps onto that chase-implied node.
        row = VirtualRow(-1, target.type, witness_node.id, "descendant")
        return WitnessStep(source.id, source.type, "cdm", rule, ((source.id, -1),), (row,))
    # sibling-co-occurrence / obligation-co-occurrence: the justifying
    # node is itself (also) a target.type node — map the leaf onto it.
    return WitnessStep(
        source.id, source.type, "cdm", rule, ((source.id, witness_node.id),)
    )


def _discharge(
    node: PatternNode,
    content: InfoContent,
    target: InfoArg,
    rule: str,
    justifier: InfoArg,
    result: CdmResult,
    collect_witnesses: bool = False,
) -> bool:
    """Delete the deletable source leaves behind ``target``; return
    whether anything was removed."""
    sources = sorted(content.sources_of(target))
    # A self-pair rule (the target justifies its own duplicates) must
    # leave one source alive as the justifier. An undeletable source
    # (output/temporary) serves for free; otherwise keep the first.
    self_pair = rule.endswith("(self-pair)")
    kept_id: Optional[int] = None
    kept_justifier = True
    if self_pair:
        undeletable = [
            s
            for s in sources
            if node.pattern.node(s).is_output or node.pattern.node(s).temporary
        ]
        if undeletable:
            kept_id = undeletable[0]
        else:
            # The first (deletable) source is skipped by the loop below
            # and becomes the surviving justifier.
            kept_id = sources[0]
            kept_justifier = False
    removed_any = False
    for source_id in sources:
        child = node.pattern.node(source_id)
        if child.is_output or child.temporary:
            continue
        if not kept_justifier:
            kept_justifier = True
            continue
        if collect_witnesses:
            result.witness_steps.append(
                _witness_step(node, child, target, rule, justifier, kept_id)
            )
        node.pattern.delete_leaf(child)
        content.drop_source(target, source_id)
        result.eliminated.append((source_id, child.type, rule))
        result.rule_counts[rule] = result.rule_counts.get(rule, 0) + 1
        removed_any = True
    return removed_any
