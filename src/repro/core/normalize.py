"""Cheap structural normalization: syntactic sibling deduplication.

CDM is to ACIM what this module is to CIM: a near-linear pre-filter that
knocks out the *obvious* redundancies before the polynomial machinery
runs. Two sibling subtrees that are syntactically identical (same edge
kind, isomorphic subtrees) are mutually subsumed — one containment
mapping folds one onto the other — so all but one can be deleted without
any images computation. Duplicated branches are exactly what view
expansion and mechanical query rewriting produce, so this catches a lot
in practice (see ``examples/workload_study.py``).

One bottom-up pass over canonical keys; deleting a duplicate can make
its parent's siblings identical in turn, which the bottom-up order picks
up in the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pattern import TreePattern

__all__ = ["DedupResult", "dedup_siblings"]


@dataclass
class DedupResult:
    """Outcome of a deduplication pass.

    Attributes
    ----------
    pattern:
        The deduplicated query.
    removed:
        Node count removed (whole duplicate subtrees).
    groups:
        Number of duplicate sibling groups collapsed.
    """

    pattern: TreePattern
    removed: int = 0
    groups: int = 0
    removed_ids: list[int] = field(default_factory=list)


def dedup_siblings(pattern: TreePattern, *, in_place: bool = False) -> DedupResult:
    """Collapse syntactically identical sibling subtrees.

    Keeps, per duplicate group, the subtree containing the output node if
    any (a duplicate of the output-bearing branch is never *identical* to
    it — canonical keys include the ``*`` flag — so the kept one is simply
    the first). Equivalence is preserved: folding a branch onto an
    identical sibling is a containment mapping in both directions.
    """
    query = pattern if in_place else pattern.copy()
    result = DedupResult(pattern=query)

    # Process bottom-up so collapses can cascade to the parent level.
    for node in list(query.postorder()):
        if not query.has_node(node.id) or node.is_leaf:
            continue
        seen: dict[tuple[str, str], int] = {}
        for child in list(node.children):
            key = (child.edge.value, query.canonical_key(child))
            if key in seen:
                # Identical keys cannot contain the output node twice,
                # and the kept twin was recorded first.
                doomed = query.delete_subtree(child)
                result.removed += len(doomed)
                result.removed_ids.extend(n.id for n in doomed)
                if seen[key] == 1:
                    result.groups += 1
                seen[key] += 1
            else:
                seen[key] = 1
    return result
