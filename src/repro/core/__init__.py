"""Core algorithms: tree patterns, containment, CIM, ACIM, CDM.

This subpackage implements the paper's primary contribution. The usual
entry points are:

* :class:`~repro.core.pattern.TreePattern` — the query representation;
* :func:`~repro.core.pipeline.minimize` — CDM + ACIM pipeline (the
  recommended minimizer);
* :func:`~repro.core.cim.cim_minimize`,
  :func:`~repro.core.acim.acim_minimize`,
  :func:`~repro.core.cdm.cdm_minimize` — the individual algorithms;
* :mod:`~repro.core.containment` — the containment-mapping oracle.
"""

from .edges import CHILD, DESCENDANT, EdgeKind
from .node import PatternNode
from .pattern import TreePattern
from .fingerprint import are_isomorphic, fingerprint, isomorphism
from .oracle_cache import (
    ContainmentOracleCache,
    OracleCacheStats,
    global_cache,
    oracle_cache_disabled,
    reset_global_cache,
    set_global_enabled,
)
from .containment import (
    ContainmentStats,
    equivalent,
    find_containment_mapping,
    has_containment_mapping,
    is_contained_in,
)
from .images import AncestorTable, ImagesEngine, ImagesStats, VirtualTarget
from .cim import CimResult, cim_minimize, is_minimal
from .cim_naive import cim_minimize_naive
from .normalize import DedupResult, dedup_siblings
from .chase import augment, augmentation_targets, chase
from .acim import AcimResult, acim_minimize
from .infocontent import ArgKind, InfoArg, InfoContent
from .cdm import CdmResult, cdm_minimize
from .reduction import is_directly_implied, reduce_pattern
from .strategy import OPTIMAL_STRATEGY, amr, apply_strategy
from .canonical import canonical_answer, canonical_instance, canonical_instances
from .ic_containment import equivalent_under, finitely_satisfiable, is_contained_in_under
from .pipeline import MinimizeResult, minimize

__all__ = [
    "CHILD",
    "DESCENDANT",
    "EdgeKind",
    "PatternNode",
    "TreePattern",
    "are_isomorphic",
    "fingerprint",
    "isomorphism",
    "ContainmentOracleCache",
    "OracleCacheStats",
    "global_cache",
    "oracle_cache_disabled",
    "reset_global_cache",
    "set_global_enabled",
    "ContainmentStats",
    "equivalent",
    "find_containment_mapping",
    "has_containment_mapping",
    "is_contained_in",
    "AncestorTable",
    "ImagesEngine",
    "ImagesStats",
    "VirtualTarget",
    "CimResult",
    "cim_minimize",
    "cim_minimize_naive",
    "is_minimal",
    "DedupResult",
    "dedup_siblings",
    "augment",
    "augmentation_targets",
    "chase",
    "AcimResult",
    "acim_minimize",
    "ArgKind",
    "InfoArg",
    "InfoContent",
    "CdmResult",
    "cdm_minimize",
    "is_directly_implied",
    "reduce_pattern",
    "OPTIMAL_STRATEGY",
    "amr",
    "apply_strategy",
    "MinimizeResult",
    "minimize",
    "equivalent_under",
    "finitely_satisfiable",
    "is_contained_in_under",
    "canonical_answer",
    "canonical_instance",
    "canonical_instances",
]
