"""Process-wide containment-oracle cache, keyed by pattern content.

The containment DP of :mod:`repro.core.containment` memoizes two
sub-results *within* one :func:`~repro.core.containment.mapping_targets`
run, but the whole table dies with the call. Real workloads (and the
paper's generators) are dominated by structurally repeated twigs —
isomorphic queries under renamed node ids and shuffled sibling order —
so the same (source, target) *content* is checked over and over across
queries, batches, and redundancy sweeps.

:class:`ContainmentOracleCache` closes that gap: it keys the full
``mapping_targets`` DP table on the canonical content fingerprints of
the (source, target) pair (:func:`repro.core.fingerprint.fingerprint`)
and, on a hit, *remaps* the cached table onto the caller's node ids
through the document-order-canonical
:func:`repro.core.fingerprint.isomorphism`. The admissible-target table
is a pure function of pattern structure, and structure is exactly what
the fingerprint captures, so the remapped table is **byte-for-byte
equal** to what the DP would have computed — differential tests pin
this. A fingerprint collision (astronomically unlikely, but the remap
would be unsound) is detected by the isomorphism returning ``None`` and
degrades to an ordinary miss.

A single process-wide instance (:func:`global_cache`) backs
``mapping_targets`` by default, so repeated oracle calls — equivalence
checks in tests, the brute-force minimizer, containment-under-ICs, and
cross-query workloads — share one table store. Disable it process-wide
with :func:`set_global_enabled` (the CLIs expose ``--no-oracle-cache``),
per call with ``cache=None``, or temporarily with
:func:`oracle_cache_disabled`. The cache is deliberately *not*
picklable state: worker processes of the batch backend simply rebuild
their own global instance on first use, which keeps
:class:`~repro.batch.minimizer.BatchMinimizer` composition trivial.

Entries are LRU-evicted beyond ``maxsize``; every transition is counted
in :class:`OracleCacheStats` (hits, misses, remapped nodes, stores,
evictions, collisions) for the observability surfaces: ``repro-bench
--json``, ``benchmarks/bench_oracle_cache.py``, and the CLI
``--explain`` output.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

import hashlib

from .fingerprint import isomorphism, subtree_keys
from .pattern import TreePattern

__all__ = [
    "OracleCacheStats",
    "ContainmentOracleCache",
    "global_cache",
    "global_enabled",
    "set_global_enabled",
    "set_global_store",
    "global_store",
    "set_global_store_audit",
    "reset_global_cache",
    "oracle_cache_disabled",
]


@dataclass
class OracleCacheStats:
    """Observability counters for one :class:`ContainmentOracleCache`.

    ``hits``/``misses`` count lookups; ``remapped_nodes`` totals the DP
    table rows translated onto caller node ids on hits (the work a hit
    *does* pay, versus the full DP it avoids); ``collisions`` counts
    fingerprint matches whose isomorphism check failed (each is also a
    miss); ``stores``/``evictions`` track the entry population.
    ``store_hits``/``store_misses`` count consultations of the attached
    persistent backend on in-memory misses (a ``store_hit`` is also a
    ``hit`` — the DP was avoided, just from disk).
    """

    hits: int = 0
    misses: int = 0
    remapped_nodes: int = 0
    stores: int = 0
    evictions: int = 0
    collisions: int = 0
    store_hits: int = 0
    store_misses: int = 0
    #: Store-loaded DP tables rejected by the independent checker
    #: (:func:`repro.certify.check_oracle_table`) while store-load
    #: auditing is on. Each is also a ``store_miss`` — the row is
    #: quarantined and the caller recomputes.
    store_audit_failures: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def counters(self) -> dict[str, float]:
        """The counters as a flat dict (for JSON reports)."""
        return {
            "oracle_cache_hits": self.hits,
            "oracle_cache_misses": self.misses,
            "oracle_cache_hit_rate": self.hit_rate,
            "oracle_cache_remapped_nodes": self.remapped_nodes,
            "oracle_cache_stores": self.stores,
            "oracle_cache_evictions": self.evictions,
            "oracle_cache_collisions": self.collisions,
            "oracle_cache_store_hits": self.store_hits,
            "oracle_cache_store_misses": self.store_misses,
            "oracle_cache_store_audit_failures": self.store_audit_failures,
        }


@dataclass
class _Entry:
    """One cached DP table, in the representative pair's node-id space.

    The subtree-key tables are snapshotted alongside the patterns so a
    hit never re-canonicalizes the stored side of the isomorphism."""

    source: TreePattern
    target: TreePattern
    source_keys: dict[int, str]
    target_keys: dict[int, str]
    table: dict[int, frozenset[int]]


def _digest(canonical_key: str) -> str:
    """sha256 of a canonical key — identical to
    :func:`repro.core.fingerprint.fingerprint` of the pattern."""
    return hashlib.sha256(canonical_key.encode("utf-8")).hexdigest()


class ContainmentOracleCache:
    """Cross-query cache of ``mapping_targets`` DP tables.

    Thread-safe (one lock around the entry store); see the module
    docstring for the keying/remap contract.

    Parameters
    ----------
    maxsize:
        Entry cap; least-recently-used entries are evicted beyond it.
    stats:
        Optional shared :class:`OracleCacheStats` to accumulate into.
    store:
        Optional persistent backend (duck-typed
        :class:`repro.store.PersistentStore`): consulted on in-memory
        miss via ``get_oracle`` and written behind via ``put_oracle``.
    audit_store_loads:
        When true, every DP table loaded from the persistent backend is
        re-validated by the independent checker
        (:func:`repro.certify.check_oracle_table`) before it is served;
        a failing table is quarantined from the store and treated as a
        miss. Costs about one DP recomputation per *disk load* (never
        on in-memory hits), so it is wired from
        ``MinimizeOptions(certify=True)`` rather than being on by
        default.
    """

    def __init__(
        self,
        maxsize: int = 512,
        stats: Optional[OracleCacheStats] = None,
        store: Optional[object] = None,
        audit_store_loads: bool = False,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.audit_store_loads = audit_store_loads
        self.stats = stats if stats is not None else OracleCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, str], _Entry]" = OrderedDict()
        self._store = store
        # Per-thread hand-off of the subtree-key tables from a missed
        # lookup to the store() that follows it (the mapping_targets
        # miss path), so the pair is canonicalized once, not twice. The
        # slot holds *strong references* to the looked-up patterns plus
        # their ``_version`` stamps: store() validates the hand-off by
        # identity (``is``) and version, never by ``id()`` — a stale slot
        # (a miss whose caller never stored: an exception, a disabled
        # scope) can therefore never be matched against a different or
        # since-mutated pattern, even when CPython reuses object ids
        # after a GC.
        self._pending = threading.local()

    def attach_store(self, store: Optional[object]) -> None:
        """Attach (or detach, with ``None``) the persistent backend."""
        self._store = store

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def lookup(
        self, source: TreePattern, target: TreePattern
    ) -> Optional[dict[int, set[int]]]:
        """The cached DP table for ``(source, target)``, remapped onto the
        caller's node ids — or ``None`` on a miss.

        The returned dict is freshly built (caller-owned): node ids of
        ``source`` map to sets of node ids of ``target``, exactly as
        :func:`~repro.core.containment.mapping_targets` would return.
        """
        source_keys = subtree_keys(source)
        target_keys = subtree_keys(target)
        key = (
            _digest(source_keys[source.root.id]),
            _digest(target_keys[target.root.id]),
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None and self._store is not None:
            entry = self._load_from_store(key)
        if entry is None:
            with self._lock:
                self.stats.misses += 1
            self._pending.value = (
                source,
                target,
                source._version,
                target._version,
                source_keys,
                target_keys,
            )
            return None
        source_map = isomorphism(
            entry.source, source, keys_a=entry.source_keys, keys_b=source_keys
        )
        target_map = isomorphism(
            entry.target, target, keys_a=entry.target_keys, keys_b=target_keys
        )
        if source_map is None or target_map is None:
            # SHA-256 collision: the stored pair is not isomorphic to the
            # caller's. Refuse the entry — the caller recomputes.
            with self._lock:
                self.stats.collisions += 1
                self.stats.misses += 1
            self._pending.value = (
                source,
                target,
                source._version,
                target._version,
                source_keys,
                target_keys,
            )
            return None
        self._pending.value = None
        with self._lock:
            self.stats.hits += 1
            self.stats.remapped_nodes += len(entry.table)
        return {
            source_map[v]: {target_map[u] for u in targets}
            for v, targets in entry.table.items()
        }

    def _load_from_store(self, key: tuple[str, str]) -> Optional[_Entry]:
        """Consult the persistent backend for ``key`` on an in-memory
        miss; a loaded entry is inserted into the in-memory LRU."""
        record = self._store.get_oracle(key[0], key[1])
        if record is None:
            with self._lock:
                self.stats.store_misses += 1
            return None
        try:
            src, tgt, table = record
            entry = _Entry(
                source=src,
                target=tgt,
                source_keys=subtree_keys(src),
                target_keys=subtree_keys(tgt),
                table={v: frozenset(targets) for v, targets in table.items()},
            )
        except Exception:  # noqa: BLE001 - malformed record: treat as miss
            with self._lock:
                self.stats.store_misses += 1
            return None
        if self.audit_store_loads and not self._audit_loaded(key, entry):
            return None
        with self._lock:
            self.stats.store_hits += 1
            if key not in self._entries and len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
        return entry

    def _audit_loaded(self, key: tuple[str, str], entry: _Entry) -> bool:
        """Re-validate one store-loaded DP table with the independent
        checker; a rejected table is quarantined and treated as a miss.

        Disk rows survive process restarts, so a checksum-valid but
        semantically wrong table (the ``store.tamper`` threat model)
        would otherwise poison every future containment answer for this
        pair. The checker shares no code with the DP that built the
        table, so it cannot reproduce an engine bug either.
        """
        # Imported lazily: repro.certify is a leaf package, but keeping
        # the core → certify edge soft preserves the checker's
        # "independent of the engines" layering.
        from ..certify import check_oracle_table  # noqa: PLC0415

        try:
            verdict = check_oracle_table(entry.source, entry.target, entry.table)
        except Exception:  # noqa: BLE001 - malformed patterns: reject
            verdict = None
        if verdict:
            return True
        with self._lock:
            self.stats.store_audit_failures += 1
            self.stats.store_misses += 1
        quarantine = getattr(self._store, "quarantine_oracle", None)
        if quarantine is not None:
            quarantine(key[0], key[1])
        return False

    def store(
        self,
        source: TreePattern,
        target: TreePattern,
        table: dict[int, set[int]],
    ) -> None:
        """Record a freshly computed DP table for ``(source, target)``.

        The patterns are snapshotted (copied), so callers may go on
        mutating them — the minimizers delete leaves from patterns they
        just ran the oracle on.
        """
        pending = getattr(self._pending, "value", None)
        self._pending.value = None
        if (
            pending is not None
            and pending[0] is source
            and pending[1] is target
            and pending[2] == source._version
            and pending[3] == target._version
        ):
            # The keys computed by the missed lookup just before this
            # store: validated by object identity *and* mutation stamp,
            # so a stale slot (the caller of an earlier miss never
            # stored) or a since-mutated pattern falls through to a
            # fresh canonicalization instead of poisoning the entry.
            source_keys, target_keys = pending[4], pending[5]
        else:
            source_keys = subtree_keys(source)
            target_keys = subtree_keys(target)
        key = (
            _digest(source_keys[source.root.id]),
            _digest(target_keys[target.root.id]),
        )
        entry = _Entry(
            source=source.copy(),
            target=target.copy(),
            source_keys=source_keys,
            target_keys=target_keys,
            table={v: frozenset(targets) for v, targets in table.items()},
        )
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.stores += 1
        if self._store is not None:
            # Write-behind: the entry's private snapshots travel to disk,
            # so later mutation of the caller's patterns can't race the
            # serialization.
            self._store.put_oracle(
                key[0], key[1], entry.source, entry.target, entry.table
            )


# ---------------------------------------------------------------------------
# The process-wide instance
# ---------------------------------------------------------------------------

_global_lock = threading.Lock()
_global_cache: Optional[ContainmentOracleCache] = None
_global_enabled: bool = True
#: Persistent backend attached to the process-wide cache. Kept at module
#: level (not only on the instance) so :func:`reset_global_cache` — the
#: restart simulation of tests and benchmarks — re-attaches it to the
#: fresh instance, exactly like a real process reboot re-opening the
#: same store file.
_global_store: Optional[object] = None
#: Whether the process-wide cache audits store-loaded tables with the
#: independent checker; module-level for the same restart-survival
#: reason as ``_global_store``.
_global_store_audit: bool = False
#: Nesting depth of active :func:`oracle_cache_disabled` scopes. The
#: context manager counts instead of flipping ``_global_enabled`` so
#: nested/concurrent scopes compose (re-entrant) and an exception inside
#: one scope can never leave the process-wide switch stuck off.
_disabled_depth: int = 0


def global_cache() -> Optional[ContainmentOracleCache]:
    """The process-wide cache, created lazily — or ``None`` while the
    global cache is disabled (:func:`set_global_enabled` or an active
    :func:`oracle_cache_disabled` scope)."""
    global _global_cache
    if not global_enabled():
        return None
    if _global_cache is None:
        with _global_lock:
            if _global_cache is None:
                _global_cache = ContainmentOracleCache(
                    store=_global_store,
                    audit_store_loads=_global_store_audit,
                )
    return _global_cache


def global_store() -> Optional[object]:
    """The persistent backend attached to the process-wide cache."""
    return _global_store


def set_global_store(store: Optional[object]) -> None:
    """Attach (``None``: detach) a persistent backend to the process-wide
    cache — current instance and any future one created after a
    :func:`reset_global_cache`. Wired by :class:`repro.api.Session` when
    ``MinimizeOptions.store_path`` is set."""
    global _global_store
    with _global_lock:
        _global_store = store
        if _global_cache is not None:
            _global_cache.attach_store(store)


def set_global_store_audit(audit: bool) -> None:
    """Turn store-load auditing on/off for the process-wide cache —
    current instance and any future one created after a
    :func:`reset_global_cache`. Wired by :class:`repro.api.Session`
    when ``MinimizeOptions.certify`` is set."""
    global _global_store_audit
    with _global_lock:
        _global_store_audit = bool(audit)
        if _global_cache is not None:
            _global_cache.audit_store_loads = _global_store_audit


def global_enabled() -> bool:
    """Whether the process-wide oracle-cache subsystem is enabled (this
    switch also governs the default for the images-engine prune memo).

    False while the ``set_global_enabled(False)`` switch is off **or**
    any :func:`oracle_cache_disabled` scope is active."""
    return _global_enabled and _disabled_depth == 0


def set_global_enabled(enabled: bool) -> None:
    """Enable/disable the process-wide cache (the ``--no-oracle-cache``
    escape hatch). Disabling does not drop existing entries; re-enabling
    resumes with the same store."""
    global _global_enabled
    _global_enabled = bool(enabled)


def reset_global_cache() -> None:
    """Replace the process-wide cache with a fresh (empty, zero-counter)
    instance. Used by tests and benchmarks to isolate measurements."""
    global _global_cache
    with _global_lock:
        _global_cache = None


@contextmanager
def oracle_cache_disabled() -> Iterator[None]:
    """Temporarily disable the process-wide cache (and the prune-memo
    default) — the uncached side of differential tests and benchmarks.

    Re-entrant and exception-safe: scopes nest through a depth counter
    (the cache stays off until the outermost scope exits) and never
    mutate the :func:`set_global_enabled` switch, so overlapping scopes —
    e.g. a :class:`~repro.api.Session` with ``oracle_cache=False`` used
    inside a test that already disabled the cache — restore the previous
    state exactly, even when the body raises."""
    global _disabled_depth
    with _global_lock:
        _disabled_depth += 1
    try:
        yield
    finally:
        with _global_lock:
            _disabled_depth -= 1
