"""Containment mappings between tree pattern queries.

Adapting the homomorphism theorem of Chandra and Merlin to tree patterns
(Section 4 of the paper): query ``Q1`` is contained in ``Q2``
(``Q1 ⊆ Q2``: every database gives ``Q1(D) ⊆ Q2(D)``) iff there is a
*containment mapping* ``h : Q2 → Q1`` such that

* ``h`` preserves node types (``v`` and ``h(v)`` have the same type — with
  augmented targets, ``v``'s original type must be among ``h(v)``'s
  associated types) and the output marker (``h(v)`` is starred iff ``v``
  is);
* a c-child maps to a c-child, and a d-child to a *proper descendant*.

Embeddings are unanchored in this library (see DESIGN.md), so the root of
the mapped query may map to any node of the target query.

Unlike general conjunctive queries (where this test is NP-complete), tree
patterns admit a polynomial dynamic program: process the mapped query in
postorder, computing for each of its nodes the set of admissible targets.
This module is the library's *ground-truth oracle*: the minimizers
(:mod:`repro.core.cim`, :mod:`repro.core.acim`, :mod:`repro.core.cdm`)
are validated against it in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import oracle_cache as _oracle_cache
from .engine_config import resolve_core_engine
from .engine_v2 import flat_mapping_targets
from .fingerprint import are_isomorphic
from .node import PatternNode
from .pattern import TreePattern

__all__ = [
    "ContainmentStats",
    "compatible_nodes",
    "mapping_targets",
    "find_containment_mapping",
    "has_containment_mapping",
    "is_contained_in",
    "equivalent",
]

#: Sentinel: resolve the cache argument to the process-wide instance
#: (:func:`repro.core.oracle_cache.global_cache`). Pass ``cache=None``
#: to force an uncached run.
USE_GLOBAL_CACHE = object()


@dataclass
class ContainmentStats:
    """Cache instrumentation for the containment oracle.

    One ``mapping_targets`` run memoizes two sub-results:

    * the *base* compatibility set per ``(type, is_output)`` source class
      — every source node of the same class admits the same label-level
      targets (``base_cache_*``);
    * the reachability pass ``_nodes_with_target_below`` per admissible
      set — distinct d-children with equal target sets share one pass
      (``reach_cache_*``).

    Across runs, the process-wide content-keyed cache
    (:mod:`repro.core.oracle_cache`) may serve the whole DP table
    (``oracle_cache_*``; a hit skips the DP, so the per-run counters
    above stay untouched for that call), and :func:`equivalent` may
    short-circuit on canonical-fingerprint equality
    (``equivalent_fast_path``).
    """

    base_cache_hits: int = 0
    base_cache_misses: int = 0
    reach_cache_hits: int = 0
    reach_cache_misses: int = 0
    oracle_cache_hits: int = 0
    oracle_cache_misses: int = 0
    equivalent_fast_path: int = 0
    #: Fast-path verdicts that were *served without a proof artifact*:
    #: the isomorphism short-circuit is exact, but unlike the two-pass DP
    #: it leaves nothing re-checkable behind. Counted separately so the
    #: audit pipeline can sample these answers instead of exempting them
    #: (decremented back by :meth:`repro.api.Session` when a sampled
    #: audit re-proves the verdict with the full DP).
    equivalent_fast_path_uncertified: int = 0

    def counters(self) -> dict[str, int]:
        """The counters as a flat dict (for JSON reports)."""
        return {
            "base_cache_hits": self.base_cache_hits,
            "base_cache_misses": self.base_cache_misses,
            "reach_cache_hits": self.reach_cache_hits,
            "reach_cache_misses": self.reach_cache_misses,
            "oracle_cache_hits": self.oracle_cache_hits,
            "oracle_cache_misses": self.oracle_cache_misses,
            "equivalent_fast_path": self.equivalent_fast_path,
            "equivalent_fast_path_uncertified": self.equivalent_fast_path_uncertified,
        }


def compatible_nodes(v: PatternNode, u: PatternNode) -> bool:
    """Local (label-only) compatibility of mapping ``v`` onto ``u``.

    ``u`` must carry ``v``'s original type (possibly via augmented
    co-occurrence types), and the output node must map to the output
    node. The converse is *not* required: a non-output node may map onto
    the output node — the ``*`` is a query-side marker, not a data label.
    (The paper's Figure 2(b) → 2(c) minimization, where the unstarred
    ``Article`` branch folds onto the starred one, depends on this.)
    """
    return u.has_type(v.type) and (u.is_output or not v.is_output)


def mapping_targets(
    source: TreePattern,
    target: TreePattern,
    *,
    stats: Optional[ContainmentStats] = None,
    cache: object = USE_GLOBAL_CACHE,
    engine: Optional[str] = None,
) -> dict[int, set[int]]:
    """For every node ``v`` of ``source``, the ids of ``target`` nodes that
    ``v`` can map to under some containment mapping of ``v``'s subtree.

    Computed by the bottom-up dynamic program described in Section 4: a
    target ``u`` is admissible for ``v`` iff the labels are compatible and
    every c-child (d-child) of ``v`` has an admissible target among ``u``'s
    children (proper descendants).

    Two sub-results are memoized across the run (pass ``stats`` to observe
    hit rates): label-compatibility base sets are shared by every source
    node of the same ``(type, is_output)`` class, and the per-d-child
    reachability pass is shared by d-children with equal admissible sets.

    Across runs, whole DP tables are keyed on the (source, target)
    content fingerprints in the process-wide
    :class:`~repro.core.oracle_cache.ContainmentOracleCache` and remapped
    onto the caller's node ids on a hit — identical output, no DP. Pass
    ``cache=None`` for an uncached run, or an explicit cache instance to
    use instead of the global one.

    This function is a dispatching facade: ``engine`` selects the v1
    object-walking DP below or the bitset DP of
    :func:`repro.core.engine_v2.flat_mapping_targets` (identical results
    and counters), resolved through
    :func:`repro.core.engine_config.resolve_core_engine` when ``None``.
    The oracle-cache layer wraps both.
    """
    if stats is None:
        stats = ContainmentStats()
    oc = _oracle_cache.global_cache() if cache is USE_GLOBAL_CACHE else cache
    if oc is not None:
        remapped = oc.lookup(source, target)
        if remapped is not None:
            stats.oracle_cache_hits += 1
            return remapped
        stats.oracle_cache_misses += 1
    if resolve_core_engine(engine) == "v2":
        targets = flat_mapping_targets(source, target, stats)
    else:
        targets = _mapping_targets_v1(source, target, stats)
    if oc is not None:
        oc.store(source, target, targets)
    return targets


def _mapping_targets_v1(
    source: TreePattern, target: TreePattern, stats: ContainmentStats
) -> dict[int, set[int]]:
    """The original object-walking DP (engine v1)."""
    target_nodes = list(target.nodes())
    target_postorder = list(target.postorder())
    targets: dict[int, set[int]] = {}
    # Base compatibility sets keyed by source class. The cached sets are
    # shared (leaves of one class alias one set) and treated as read-only
    # by the DP below.
    base_cache: dict[tuple[str, bool], set[int]] = {}
    # Reachability results keyed by the admissible id set they were
    # computed from.
    reach_cache: dict[frozenset[int], set[int]] = {}

    def base_for(v: PatternNode) -> set[int]:
        key = (v.type, v.is_output)
        cached = base_cache.get(key)
        if cached is not None:
            stats.base_cache_hits += 1
            return cached
        stats.base_cache_misses += 1
        base = {u.id for u in target_nodes if compatible_nodes(v, u)}
        base_cache[key] = base
        return base

    def reach_for(admissible: set[int]) -> set[int]:
        key = frozenset(admissible)
        cached = reach_cache.get(key)
        if cached is not None:
            stats.reach_cache_hits += 1
            return cached
        stats.reach_cache_misses += 1
        reach = _nodes_with_target_below(target_postorder, admissible)
        reach_cache[key] = reach
        return reach

    for v in source.postorder():
        base = base_for(v)
        if v.is_leaf:
            targets[v.id] = base
            continue
        # For each d-child of v, precompute which target nodes have an
        # admissible target in their proper-descendant set. One postorder
        # pass over the target per *distinct* admissible set keeps the
        # whole DP polynomial (and shared sets cost one pass total).
        reach_below: dict[int, set[int]] = {}
        for cv in v.children:
            if cv.edge.is_descendant:
                reach_below[cv.id] = reach_for(targets[cv.id])
        admissible: set[int] = set()
        for u in target_nodes:
            if u.id not in base:
                continue
            if _children_mappable(v, u, targets, reach_below):
                admissible.add(u.id)
        targets[v.id] = admissible
    return targets


def _children_mappable(
    v: PatternNode,
    u: PatternNode,
    targets: dict[int, set[int]],
    reach_below: dict[int, set[int]],
) -> bool:
    for cv in v.children:
        if cv.edge.is_child:
            # A c-edge requires a *c-child* target: the target pattern
            # only guarantees direct containment along its own c-edges.
            if not any(uc.id in targets[cv.id] for uc in u.c_children()):
                return False
        else:
            if u.id not in reach_below[cv.id]:
                return False
    return True


def _nodes_with_target_below(
    target_postorder: list[PatternNode], admissible: set[int]
) -> set[int]:
    """Ids of target nodes having a proper descendant in ``admissible``.

    Takes the target's postorder as a precomputed list so repeated passes
    (one per distinct admissible set) skip the tree walk.
    """
    result: set[int] = set()
    for u in target_postorder:
        if any(c.id in admissible or c.id in result for c in u.children):
            result.add(u.id)
    return result


def find_containment_mapping(
    source: TreePattern, target: TreePattern
) -> Optional[dict[int, int]]:
    """A concrete containment mapping ``source → target`` as a dict from
    source node ids to target node ids, or ``None`` if none exists.

    The mapping is extracted top-down from the DP table; on trees a greedy
    choice per subtree is always safe because sibling subtrees impose
    independent requirements on the target.
    """
    targets = mapping_targets(source, target)
    root_targets = targets[source.root.id]
    if not root_targets:
        return None
    mapping: dict[int, int] = {}
    # Deterministic tie-break (smallest id) keeps results reproducible.
    root_choice = target.node(min(root_targets))
    _assign(source.root, root_choice, targets, mapping, target)
    return mapping


def _assign(
    v: PatternNode,
    u: PatternNode,
    targets: dict[int, set[int]],
    mapping: dict[int, int],
    target: TreePattern,
) -> None:
    mapping[v.id] = u.id
    for cv in v.children:
        if cv.edge.is_child:
            candidates = (uc for uc in u.c_children() if uc.id in targets[cv.id])
        else:
            candidates = (ud for ud in u.descendants() if ud.id in targets[cv.id])
        chosen = min(candidates, key=lambda n: n.id, default=None)
        if chosen is None:  # pragma: no cover - DP guarantees a choice
            raise AssertionError("DP admitted a target with no child assignment")
        _assign(cv, chosen, targets, mapping, target)


def has_containment_mapping(
    source: TreePattern,
    target: TreePattern,
    *,
    stats: Optional[ContainmentStats] = None,
    cache: object = USE_GLOBAL_CACHE,
) -> bool:
    """Whether a containment mapping ``source → target`` exists."""
    return bool(
        mapping_targets(source, target, stats=stats, cache=cache)[source.root.id]
    )


def is_contained_in(
    q1: TreePattern,
    q2: TreePattern,
    *,
    stats: Optional[ContainmentStats] = None,
    cache: object = USE_GLOBAL_CACHE,
) -> bool:
    """``Q1 ⊆ Q2``: every database ``D`` satisfies ``Q1(D) ⊆ Q2(D)``.

    By the homomorphism theorem for tree patterns this holds iff there is a
    containment mapping from ``q2`` into ``q1``.
    """
    return has_containment_mapping(q2, q1, stats=stats, cache=cache)


def equivalent(
    q1: TreePattern,
    q2: TreePattern,
    *,
    stats: Optional[ContainmentStats] = None,
    cache: object = USE_GLOBAL_CACHE,
) -> bool:
    """Two-way containment: ``Q1 ⊆ Q2`` and ``Q2 ⊆ Q1``.

    Canonical-fingerprint-identical patterns short-circuit to ``True``
    without running the DP: an isomorphism preserves types, the output
    marker, and edge kinds, so it *is* a containment mapping in both
    directions. The fast path is exact (it compares canonical keys, not
    hashes) and differential-tested against the two-pass DP.
    """
    if are_isomorphic(q1, q2):
        if stats is not None:
            stats.equivalent_fast_path += 1
            stats.equivalent_fast_path_uncertified += 1
        return True
    return is_contained_in(q1, q2, stats=stats, cache=cache) and is_contained_in(
        q2, q1, stats=stats, cache=cache
    )
