"""The A/R/M strategy algebra of Section 5.3.

The paper analyses minimization-under-constraints as strings over the
alphabet ``{A, R, M}``:

* ``A`` — *augmentation*: materialize IC-implied temporary nodes and
  co-occurrence types (:func:`repro.core.chase.augment`);
* ``R`` — *reduction*: drop leaves directly implied by an IC on their
  parent (:func:`repro.core.reduction.reduce_pattern`);
* ``M`` — *minimization*: a maximal elimination ordering, i.e. CIM.
  Temporary nodes participate as mapping **targets only** (the paper's
  Section 6.1 semantics: an IC-implied node carries no obligations of its
  own and never blocks its parent's mapping); internally the step
  converts materialized temporaries to virtual targets, minimizes, and
  re-materializes the survivors so that ``R`` can clean them up later.

Lemmas 5.2–5.4 establish that the composite strategy ``A·M·R`` is
idempotent and dominates every other string — it yields the unique
equivalent query of least size — and that Algorithm ACIM is "nothing but
a clever implementation of" it. This module interprets strategy strings
so those lemmas can be checked executably (see
``tests/test_strategy_algebra.py``), and provides :func:`amr` as the
reference implementation ACIM is validated against.
"""

from __future__ import annotations

from typing import Iterable

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from ..errors import StrategyError
from .chase import augment
from .cim import cim_minimize
from .images import VirtualTarget
from .pattern import TreePattern
from .reduction import reduce_pattern

__all__ = ["apply_strategy", "amr", "OPTIMAL_STRATEGY"]


def _minimization_step(query: TreePattern) -> TreePattern:
    """The ``M`` step: CIM with temporaries as pure targets.

    Materialized temporary nodes become :class:`VirtualTarget` rows for
    the duration of the elimination, then the survivors (those whose
    anchor chain still reaches a real node) are re-materialized.
    Temporaries may form whole witness subtrees (co-occurrence-aware
    augmentation), so the conversion maps temporary parents to virtual
    parents; a temporary below a non-temporary ancestor chain is assumed,
    as :func:`~repro.core.chase.augment` guarantees.
    """
    temps = [n for n in query.nodes() if n.temporary]
    if any(not c.temporary for n in temps for c in n.children):
        raise StrategyError("real nodes must not hang below temporaries in the M step")
    # query.nodes() is document order, so parents precede children and the
    # virtual list keeps the parent-before-child invariant.
    ids = {n.id: -(i + 1) for i, n in enumerate(temps)}
    virtual = [
        VirtualTarget(
            ids[n.id],
            n.type,
            ids.get(n.parent.id, n.parent.id),
            n.edge,
            extra_types=frozenset(n.extra_types),
        )
        for n in temps
    ]
    for n in reversed(temps):  # deepest-first: only ever delete leaves
        query.delete_leaf(n)
    result = cim_minimize(query, virtual=virtual, in_place=True).pattern
    materialized = {}
    for vt in virtual:
        if vt.parent_id in materialized:
            parent = materialized[vt.parent_id]
        elif vt.parent_id >= 0 and result.has_node(vt.parent_id):
            parent = result.node(vt.parent_id)
        else:
            continue
        node = result.add_child(parent, vt.node_type, vt.edge, temporary=True)
        for t in sorted(vt.extra_types):
            result.add_extra_type(node, t)
        materialized[vt.id] = node
    return result

#: The provably optimal strategy string (Lemma 5.4).
OPTIMAL_STRATEGY = "amr"


def apply_strategy(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None",
    strategy: str,
) -> TreePattern:
    """Apply a strategy string left-to-right and return the result.

    ``strategy`` is a word over ``a`` (augment), ``r`` (reduce), ``m``
    (minimize), case-insensitive. The constraint set is closed once up
    front, as the algebra assumes.

    Node ids are preserved by every step, so results of different
    strategies on the same input can be compared by id set — which is how
    the dominance relation ``σ1 ⊑ σ2`` ("σ1's result contains every node
    of σ2's") is checked in the tests.

    Raises
    ------
    StrategyError
        On characters outside ``{a, r, m}``.
    """
    repo = coerce_repository(constraints)
    if not repo.is_closed:
        repo = closure(repo)
    query = pattern.copy()
    for step in strategy.lower():
        if step == "a":
            query = augment(query, repo)
        elif step == "r":
            query = reduce_pattern(query, repo, in_place=True)
        elif step == "m":
            query = _minimization_step(query)
        else:
            raise StrategyError(
                f"unknown strategy step {step!r} in {strategy!r} (expected a/r/m)"
            )
    return query


def amr(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None",
) -> TreePattern:
    """The optimal ``A·M·R`` strategy: augment, minimize, reduce.

    By Lemma 5.4 this returns the unique minimal query equivalent to
    ``pattern`` under the constraints. It is slower than
    :func:`repro.core.acim.acim_minimize` (it materializes temporaries and
    lets CIM chew through them) but is an independent implementation used
    to cross-validate ACIM.
    """
    result = apply_strategy(pattern, constraints, OPTIMAL_STRATEGY)
    # Augmented type annotations are internal to the algebra; the final
    # query is a plain pattern.
    result.clear_extra_types()
    return result
