"""Algorithm ACIM — minimization under integrity constraints (Section 5).

ACIM finds the unique minimal query equivalent to the input **under** a
set of required-child / required-descendant / co-occurrence constraints
(Theorem 5.1), in three steps:

1. **Augment** the query w.r.t. the logical closure of the ICs
   (:mod:`repro.core.chase`), marking everything added as temporary;
2. run **CIM**, never considering temporary nodes for redundancy — they
   participate only as mapping targets;
3. **strip** the temporaries.

Per Section 6.1 of the paper, step 1 never materializes the temporary
nodes: they are handed to the CIM driver as
:class:`~repro.core.images.VirtualTarget` rows living only in the images
and ancestor/descendant hash tables, and step 3 is therefore free.

The module also exposes per-phase instrumentation (:class:`AcimResult`)
used by the Figure 7(b) experiment: the fraction of ACIM's runtime spent
building the images and ancestor/descendant tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .chase import augmentation_targets
from .cim import CimResult, cim_minimize
from .images import ImagesStats
from .pattern import TreePattern

__all__ = ["AcimResult", "acim_minimize"]


@dataclass
class AcimResult:
    """Outcome and instrumentation of an ACIM run.

    Attributes
    ----------
    pattern:
        The minimized query (always a fresh copy).
    eliminated:
        ``(node_id, node_type)`` pairs in elimination order.
    witnesses:
        Per eliminated node, the endomorphism certifying its redundancy
        (only when ``collect_witnesses=True``; targets may be negative =
        virtual/temporary).
    images_stats:
        Table-building vs pruning time across all redundancy checks.
    closure_seconds / augmentation_seconds:
        Time spent closing the IC set and computing augmentation targets.
    virtual_count:
        Number of temporary (virtual) target rows the augmentation added.
    """

    pattern: TreePattern
    eliminated: list[tuple[int, str]] = field(default_factory=list)
    witnesses: dict[int, dict[int, int]] = field(default_factory=dict)
    images_stats: ImagesStats = field(default_factory=ImagesStats)
    closure_seconds: float = 0.0
    augmentation_seconds: float = 0.0
    virtual_count: int = 0
    #: The augmentation's VirtualTarget rows (kept only when
    #: ``collect_witnesses=True``) — the chase provenance the recorded
    #: witness endomorphisms may target; consumed by certificate assembly.
    virtual_targets: tuple = ()

    @property
    def removed_count(self) -> int:
        """Number of nodes eliminated."""
        return len(self.eliminated)

    @property
    def tables_seconds(self) -> float:
        """Time building images + ancestor/descendant hash tables (the
        quantity plotted against total time in Figure 7(b))."""
        return self.images_stats.tables_seconds

    @property
    def total_seconds(self) -> float:
        """End-to-end ACIM time: closure + augmentation + minimization."""
        return (
            self.closure_seconds
            + self.augmentation_seconds
            + self.images_stats.tables_seconds
            + self.images_stats.prune_seconds
        )


def acim_minimize(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None" = None,
    *,
    collect_witnesses: bool = False,
    seed: Optional[int] = None,
    incremental: bool = True,
    oracle_cache: Optional[bool] = None,
    core_engine: Optional[str] = None,
) -> AcimResult:
    """Minimize ``pattern`` under ``constraints`` (Algorithm ACIM).

    With no (or empty) constraints this degenerates to plain CIM. The
    constraint set is closed automatically unless the repository is
    already marked closed.

    Parameters mirror :func:`repro.core.cim.cim_minimize`; see there for
    ``collect_witnesses``, ``seed``, ``incremental`` (one maintained
    images engine for the whole elimination loop vs the from-scratch
    rebuild-per-deletion baseline), ``oracle_cache`` (the sibling-subtree
    prune memo), and ``core_engine`` (the v1 object engine vs the v2
    flat bitset engine — byte-identical results).
    """
    repo = coerce_repository(constraints)
    result = AcimResult(pattern=pattern)  # placeholder, replaced below

    start = time.perf_counter()
    closed = repo if repo.is_closed else closure(repo)
    result.closure_seconds = time.perf_counter() - start

    start = time.perf_counter()
    virtual, extra_types = augmentation_targets(pattern, closed)
    working = pattern.copy()
    for node_id, types in extra_types.items():
        for t in sorted(types):
            working.add_extra_type(working.node(node_id), t)
    result.augmentation_seconds = time.perf_counter() - start
    result.virtual_count = len(virtual)
    if collect_witnesses:
        result.virtual_targets = tuple(virtual)

    cim: CimResult = cim_minimize(
        working,
        virtual=virtual,
        in_place=True,
        collect_witnesses=collect_witnesses,
        stats=result.images_stats,
        seed=seed,
        incremental=incremental,
        oracle_cache=oracle_cache,
        core_engine=core_engine,
    )
    cim.pattern.clear_extra_types()

    result.pattern = cim.pattern
    result.eliminated = cim.eliminated
    result.witnesses = cim.witnesses
    return result
