"""The end-to-end minimization pipeline (Theorem 5.3).

The recommended way to minimize a tree pattern under integrity
constraints is **CDM followed by ACIM**: CDM cheaply strips all locally
redundant nodes, then ACIM (much more expensive per node) finishes the
job on the smaller query. Theorem 5.3 guarantees this two-stage pipeline
still produces the unique globally minimal equivalent query; the Figure
9(b) experiment quantifies the speed-up.

:func:`minimize` is the library's main entry point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .acim import AcimResult, acim_minimize
from .cdm import CdmResult, cdm_minimize
from .pattern import TreePattern

__all__ = ["MinimizeResult", "minimize"]


@dataclass
class MinimizeResult:
    """Outcome of the full pipeline.

    Attributes
    ----------
    pattern:
        The unique minimal equivalent query.
    cdm / acim:
        Per-stage results (``cdm`` is ``None`` when the pre-filter was
        disabled or there were no constraints).
    closure_seconds:
        Time spent closing the constraint set (done once, shared by both
        stages).
    """

    pattern: TreePattern
    cdm: Optional[CdmResult] = None
    acim: Optional[AcimResult] = None
    closure_seconds: float = 0.0
    input_size: int = 0
    #: Equivalence proof for the whole run (one witness step per
    #: eliminated node) — only with ``certify=True``; see
    #: :mod:`repro.certify`.
    certificate: Optional[object] = None

    @property
    def removed_count(self) -> int:
        """Total nodes removed by both stages."""
        removed = 0
        if self.cdm is not None:
            removed += self.cdm.removed_count
        if self.acim is not None:
            removed += self.acim.removed_count
        return removed

    @property
    def total_seconds(self) -> float:
        """Closure + CDM + ACIM wall-clock time."""
        seconds = self.closure_seconds
        if self.cdm is not None:
            seconds += self.cdm.seconds
        if self.acim is not None:
            seconds += self.acim.total_seconds
        return seconds

    def summary(self) -> str:
        """One-line human-readable report."""
        cdm_n = self.cdm.removed_count if self.cdm else 0
        acim_n = self.acim.removed_count if self.acim else 0
        return (
            f"{self.input_size} -> {self.pattern.size} nodes "
            f"(CDM removed {cdm_n}, ACIM removed {acim_n}) "
            f"in {self.total_seconds * 1e3:.2f} ms"
        )


def minimize(
    pattern: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None" = None,
    *,
    use_cdm_prefilter: bool = True,
    collect_witnesses: bool = False,
    certify: bool = False,
    seed: Optional[int] = None,
    incremental: bool = True,
    oracle_cache: Optional[bool] = None,
    core_engine: Optional[str] = None,
) -> MinimizeResult:
    """Minimize ``pattern`` (optionally under ``constraints``).

    With constraints, runs CDM as a pre-filter and then ACIM (the paper's
    recommended configuration); without constraints this is exactly CIM.
    Set ``use_cdm_prefilter=False`` to run ACIM directly — the result is
    identical (both are the unique minimum), only slower; the Figure 9(b)
    benchmark measures the difference. ``incremental=False`` selects the
    from-scratch engine-rebuild baseline inside ACIM (see
    :func:`repro.core.cim.cim_minimize`); ``oracle_cache=False``
    disables the sibling-subtree prune memo there, ``None`` follows the
    process-wide oracle-cache switch. ``core_engine`` picks the images
    engine implementation (``"v1"`` objects / ``"v2"`` flat bitsets; see
    :mod:`repro.core.engine_config`) — results are byte-identical.

    With ``certify=True`` the run additionally assembles a
    :class:`repro.certify.Certificate` (one witness step per eliminated
    node, plus chase provenance) into ``result.certificate``; witness
    collection is forced on in both stages.

    Returns a :class:`MinimizeResult`; the minimized query is
    ``result.pattern`` and the input is never mutated.
    """
    result = MinimizeResult(pattern=pattern, input_size=pattern.size)
    repo = coerce_repository(constraints)
    raw_digest = repo.digest() if certify else ""
    collect = collect_witnesses or certify

    if len(repo) == 0:
        # No ICs: the pipeline degenerates to plain CIM (via ACIM, which
        # adds no augmentation in this case).
        result.acim = acim_minimize(
            pattern,
            repo,
            collect_witnesses=collect,
            seed=seed,
            incremental=incremental,
            oracle_cache=oracle_cache,
            core_engine=core_engine,
        )
        result.pattern = result.acim.pattern
        if certify:
            result.certificate = _assemble_certificate(pattern, result, raw_digest)
        return result

    start = time.perf_counter()
    if not repo.is_closed:
        repo = closure(repo)
    result.closure_seconds = time.perf_counter() - start

    working = pattern
    if use_cdm_prefilter:
        result.cdm = cdm_minimize(working, repo, collect_witnesses=collect)
        working = result.cdm.pattern

    result.acim = acim_minimize(
        working,
        repo,
        collect_witnesses=collect,
        seed=seed,
        incremental=incremental,
        oracle_cache=oracle_cache,
        core_engine=core_engine,
    )
    result.pattern = result.acim.pattern
    if certify:
        result.certificate = _assemble_certificate(pattern, result, raw_digest)
    return result


def _assemble_certificate(
    input_pattern: TreePattern, result: MinimizeResult, closure_digest: str
):
    """Build the :class:`repro.certify.Certificate` for a finished run.

    CDM steps come ready-made (each carries its own step-local chase
    rows); ACIM eliminations are converted from the engine's witness
    endomorphisms, compressed to their non-identity pairs, with the
    augmentation's VirtualTarget rows attached once at certificate
    level.
    """
    from ..certify.witness import Certificate, VirtualRow, WitnessStep
    from .edges import EdgeKind
    from .fingerprint import fingerprint

    steps: list[WitnessStep] = []
    if result.cdm is not None:
        steps.extend(result.cdm.witness_steps)
    virtual_rows: tuple[VirtualRow, ...] = ()
    if result.acim is not None:
        virtual_rows = tuple(
            VirtualRow(
                id=vt.id,
                node_type=vt.node_type,
                parent_id=vt.parent_id,
                edge="child" if vt.edge is EdgeKind.CHILD else "descendant",
                extra_types=tuple(sorted(vt.extra_types)),
            )
            for vt in result.acim.virtual_targets
        )
        for node_id, node_type in result.acim.eliminated:
            witness = result.acim.witnesses.get(node_id, {})
            mapping = tuple(
                sorted((src, tgt) for src, tgt in witness.items() if src != tgt)
            )
            steps.append(
                WitnessStep(
                    node_id=node_id,
                    node_type=node_type,
                    stage="acim",
                    rule="images",
                    mapping=mapping,
                )
            )
    return Certificate(
        fingerprint=fingerprint(input_pattern),
        closure_digest=closure_digest,
        input_size=input_pattern.size,
        output_size=result.pattern.size,
        steps=tuple(steps),
        virtual_targets=virtual_rows,
        output_key=result.pattern.canonical_key(),
    )
