"""Containment and equivalence *under integrity constraints*.

``Q1 ⊆_C Q2`` holds when ``Q1(D) ⊆ Q2(D)`` for every database ``D``
satisfying the constraint set ``C``. For the paper's constraint classes
this reduces to ordinary containment against a *chased* version of
``Q1``: materialize around every node of ``Q1`` the full structure the
constraints guarantee, then look for a containment mapping
``Q2 → chase_C(Q1)``.

For **finitely satisfiable** closures (no type transitively requiring a
child/descendant of its own type — :func:`finitely_satisfiable`) the
guaranteed structure per node is a finite *witness tree* per implied
type, so the chase below is complete and the check exact. Two
refinements make it so in practice:

* implied types are expanded **recursively** (a required ``Vendor``
  child brings its own required ``Name`` child along), not one round
  deep — multi-level compositions like
  ``Product -> Vendor, Vendor -> Name ⊨ Product[Vendor/Name] ≡ Product``
  need this;
* expansion is not limited to types occurring in ``Q1``: ``Q2`` may
  probe for any type the constraints guarantee.

For degenerate (not finitely satisfiable) closures the implied witness
trees are infinite; expansion then falls back to one bounded round and
the check is only sound in the ``True`` direction (a ``False`` may be a
false negative on vacuously-true containments). The minimizers
themselves are unaffected — this module is the *oracle* they are tested
against.
"""

from __future__ import annotations

from typing import Iterable

from ..constraints.model import IntegrityConstraint
from ..constraints.repository import ConstraintRepository, coerce_repository
from ..constraints.closure import closure
from .containment import has_containment_mapping
from .edges import EdgeKind
from .node import PatternNode
from .pattern import TreePattern

__all__ = [
    "is_contained_in_under",
    "equivalent_under",
    "finitely_satisfiable",
    "chase_for_containment",
]


def finitely_satisfiable(
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None",
) -> bool:
    """Whether some finite database can contain nodes of every mentioned
    type: no type may (transitively) require a child or descendant of its
    own type. Degenerate sets make the mentioned types necessarily empty
    and reduce equivalence-under-constraints to vacuous truth."""
    repo = coerce_repository(constraints)
    if not repo.is_closed:
        repo = closure(repo)
    return all(
        not repo.has_required_child(t, t) and not repo.has_required_descendant(t, t)
        for t in repo.types()
    )


def _attach_witness(
    pattern: TreePattern,
    anchor: PatternNode,
    node_type: str,
    edge: EdgeKind,
    repo: ConstraintRepository,
    deep: bool,
) -> None:
    """Attach a temporary node of ``node_type`` under ``anchor`` and, when
    ``deep``, its full witness subtree (everything the constraints imply
    below it). ``deep`` implies the closure is finitely satisfiable, so
    the recursion terminates."""
    node = pattern.add_child(anchor, node_type, edge, temporary=True)
    for extra in sorted(repo.co_occurring_with(node_type)):
        pattern.add_extra_type(node, extra)
    if not deep:
        return
    child_types = repo.required_children_of(node_type)
    for t2 in sorted(child_types):
        _attach_witness(pattern, node, t2, EdgeKind.CHILD, repo, deep)
    for t2 in sorted(repo.required_descendants_of(node_type)):
        if t2 not in child_types:
            _attach_witness(pattern, node, t2, EdgeKind.DESCENDANT, repo, deep)


def chase_for_containment(
    pattern: TreePattern, repo: ConstraintRepository
) -> TreePattern:
    """The chased query used as the containment target: every (original)
    node gains its co-occurrence types plus witness subtrees for each
    required child/descendant type.

    Complete for finitely satisfiable closures; otherwise each implied
    type is expanded one level only (sound fallback).
    """
    deep = finitely_satisfiable(repo)
    result = pattern.copy()
    for node in list(result.nodes()):
        for t2 in sorted(repo.co_occurring_with(node.type)):
            result.add_extra_type(node, t2)
        child_types = repo.required_children_of(node.type)
        for t2 in sorted(child_types):
            _attach_witness(result, node, t2, EdgeKind.CHILD, repo, deep)
        for t2 in sorted(repo.required_descendants_of(node.type)):
            if t2 not in child_types:
                _attach_witness(result, node, t2, EdgeKind.DESCENDANT, repo, deep)
    return result


def is_contained_in_under(
    q1: TreePattern,
    q2: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None",
) -> bool:
    """``Q1 ⊆_C Q2``: on every database satisfying the constraints,
    ``Q1``'s answers are among ``Q2``'s."""
    repo = coerce_repository(constraints)
    if not repo.is_closed:
        repo = closure(repo)
    chased = chase_for_containment(q1, repo)
    return has_containment_mapping(q2, chased)


def equivalent_under(
    q1: TreePattern,
    q2: TreePattern,
    constraints: "ConstraintRepository | Iterable[IntegrityConstraint] | None",
) -> bool:
    """Two-way containment under the constraints."""
    return is_contained_in_under(q1, q2, constraints) and is_contained_in_under(
        q2, q1, constraints
    )
