"""Algorithm CIM — constraint-independent minimization (Section 4).

CIM computes the unique (up to isomorphism) minimal query equivalent to a
tree pattern, by repeatedly deleting redundant leaves — a *maximal
elimination ordering* (MEO). Its polynomiality rests on two properties
proved in the paper:

* a node cannot be redundant unless its children are — so testing leaves
  suffices, and a node only becomes testable once it becomes a leaf;
* the order of elimination is immaterial (Lemmas 4.1–4.3) — so each leaf
  needs to be tested at most once, and a leaf found non-redundant never
  needs re-testing.

The same driver implements the minimization phase of ACIM: augmentation
hands it :class:`~repro.core.images.VirtualTarget` rows (never-materialized
temporary nodes, per Section 6.1) which act as extra mapping targets and
are dropped automatically when their anchor node is eliminated.

The driver maintains **one** :class:`~repro.core.images.ImagesEngine` for
the whole elimination loop, applying
:meth:`~repro.core.images.ImagesEngine.delete_leaf` after each deletion —
the O(n⁴) bound of Section 4 assumes exactly this maintenance; rebuilding
the tables per deletion (the pre-incremental behaviour, kept as
``incremental=False`` for differential testing and benchmarking) adds an
O(n²) rebuild to every one of up to n deletions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .images import ImagesStats, VirtualTarget, create_images_engine
from .node import PatternNode
from .pattern import TreePattern

__all__ = ["CimResult", "cim_minimize", "is_minimal"]


@dataclass
class CimResult:
    """Outcome of a CIM run.

    Attributes
    ----------
    pattern:
        The minimized query (a copy unless ``in_place=True``).
    eliminated:
        ``(node_id, node_type)`` pairs in elimination order — an MEO
        restricted to the deleted nodes.
    witnesses:
        When requested, for each eliminated node the endomorphism (node id
        → target id; negative targets are virtual) that certified its
        redundancy at deletion time.
    stats:
        Shared :class:`ImagesStats` across all redundancy checks.
    """

    pattern: TreePattern
    eliminated: list[tuple[int, str]] = field(default_factory=list)
    witnesses: dict[int, dict[int, int]] = field(default_factory=dict)
    stats: ImagesStats = field(default_factory=ImagesStats)

    @property
    def removed_count(self) -> int:
        """Number of nodes eliminated."""
        return len(self.eliminated)


def _eligible(
    node: PatternNode, protect: frozenset[int], include_temporaries: bool = False
) -> bool:
    return (
        node.is_leaf
        and not node.is_root
        and not node.is_output
        and (include_temporaries or not node.temporary)
        and node.id not in protect
    )


def cim_minimize(
    pattern: TreePattern,
    *,
    virtual: Sequence[VirtualTarget] = (),
    in_place: bool = False,
    collect_witnesses: bool = False,
    protect: frozenset[int] = frozenset(),
    stats: Optional[ImagesStats] = None,
    seed: Optional[int] = None,
    include_temporaries: bool = False,
    pair_filter=None,
    incremental: bool = True,
    oracle_cache: Optional[bool] = None,
    core_engine: Optional[str] = None,
) -> CimResult:
    """Minimize ``pattern`` by maximal elimination of redundant leaves.

    Parameters
    ----------
    pattern:
        The query to minimize. Untouched unless ``in_place=True``.
    virtual:
        Augmentation targets (used by ACIM); empty for plain CIM.
    collect_witnesses:
        Record the endomorphism certifying each deletion (slower; for
        tests and debugging).
    protect:
        Node ids that must never be eliminated (beyond the root and the
        output node, which are always protected).
    stats:
        Accumulate timing/counter instrumentation into this object.
    seed:
        When given, candidate leaves are tried in a seeded-random order
        instead of ascending id order. The result is the same query up to
        isomorphism whatever the order (Theorem 4.1); tests use this to
        exercise order-independence.
    include_temporaries:
        Treat temporary (augmentation) nodes as ordinary elimination
        candidates. Off for ACIM (which must keep them as pure targets);
        on when CIM plays the ``M`` step of the strategy algebra, where
        temporaries are regular nodes.
    pair_filter:
        Extra ``(source_node_id, target_id) -> bool`` admissibility hook
        forwarded to the images engine (see the value-predicate
        extension).
    incremental:
        Maintain one images engine across the whole elimination loop
        (default). ``False`` restores the historical from-scratch
        behaviour — a fresh engine per deletion — kept as the
        differential-testing and benchmarking baseline; results are
        identical, only slower.
    oracle_cache:
        Use the sibling-subtree prune memo of the oracle-cache subsystem
        inside the images engine. ``None`` (default) follows the
        process-wide switch
        (:func:`repro.core.oracle_cache.global_enabled`); ``False`` is
        the memo-free baseline. Results are identical either way.
    core_engine:
        Which images-engine implementation runs the redundancy checks —
        ``"v1"`` (object/set engine) or ``"v2"`` (flat bitset engine).
        ``None`` resolves through
        :func:`repro.core.engine_config.resolve_core_engine`. Results
        are byte-identical either way.

    Returns
    -------
    CimResult
        The minimized pattern plus the elimination record.
    """
    query = pattern if in_place else pattern.copy()
    result = CimResult(pattern=query, stats=stats if stats is not None else ImagesStats())
    rng = random.Random(seed) if seed is not None else None

    # A target is live when its anchor chain reaches a node of the query:
    # witness subtrees anchor virtual targets on other (earlier-listed)
    # virtual targets, so liveness propagates down the list.
    live_virtual: list[VirtualTarget] = []
    kept_ids: set[int] = set()
    for vt in virtual:
        if vt.parent_id in kept_ids or (
            vt.parent_id >= 0 and query.has_node(vt.parent_id)
        ):
            live_virtual.append(vt)
            kept_ids.add(vt.id)
    non_redundant: set[int] = set()
    candidates = [
        n.id for n in query.leaves() if _eligible(n, protect, include_temporaries)
    ]
    engine = create_images_engine(
        query,
        live_virtual,
        result.stats,
        pair_filter=pair_filter,
        prune_memo=oracle_cache,
        engine=core_engine,
    )

    while candidates:
        if rng is not None:
            index = rng.randrange(len(candidates))
            candidates[index], candidates[-1] = candidates[-1], candidates[index]
        leaf_id = candidates.pop()
        if not query.has_node(leaf_id):
            continue
        leaf = query.node(leaf_id)
        if not _eligible(leaf, protect, include_temporaries) or leaf_id in non_redundant:
            continue

        if collect_witnesses:
            witness = engine.redundancy_witness(leaf)
            redundant = witness is not None
        else:
            witness = None
            redundant = engine.is_redundant_leaf(leaf)

        if not redundant:
            # Once non-redundant, always non-redundant (Section 4,
            # enhancement (1)): never re-test.
            non_redundant.add(leaf_id)
            continue

        parent = leaf.parent
        result.eliminated.append((leaf_id, leaf.type))
        if witness is not None:
            result.witnesses[leaf_id] = witness
        query.delete_leaf(leaf)
        if incremental:
            # One engine for the whole loop: the deletion (and the virtual
            # targets anchored at the deleted node, which die with it) is
            # applied to the live tables instead of rebuilding them.
            engine.delete_leaf(leaf)
        else:
            # From-scratch baseline: virtual targets anchored (possibly
            # through other virtual targets) at the deleted node die with
            # it; skip the list rebuild when the leaf anchored none.
            if any(vt.parent_id == leaf_id for vt in live_virtual):
                dead = {leaf_id}
                survivors = []
                for vt in live_virtual:
                    if vt.parent_id in dead:
                        dead.add(vt.id)
                    else:
                        survivors.append(vt)
                live_virtual = survivors
            engine = create_images_engine(
                query,
                live_virtual,
                result.stats,
                pair_filter=pair_filter,
                prune_memo=oracle_cache,
                engine=core_engine,
            )
        if (
            parent is not None
            and _eligible(parent, protect, include_temporaries)
            and parent.id not in non_redundant
        ):
            candidates.append(parent.id)

    return result


def is_minimal(pattern: TreePattern, *, core_engine: Optional[str] = None) -> bool:
    """Whether a pattern is already minimal (no redundant leaf exists).

    Equivalent to ``cim_minimize(pattern).removed_count == 0`` but without
    copying or deleting.
    """
    engine = create_images_engine(pattern, engine=core_engine)
    return not any(
        engine.is_redundant_leaf(leaf)
        for leaf in pattern.leaves()
        if _eligible(leaf, frozenset())
    )
