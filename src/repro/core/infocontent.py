"""Information content of tree pattern nodes (Section 5.4/5.5).

CDM labels every node with an *information content*: a set of
*information arguments* summarizing exactly what is needed to decide,
with O(1) constraint probes, whether one of the node's children is
redundant under the ICs. An argument is one of (writing ``t`` for a type):

=========  ===========================================================
``t``      the node is of type ``t`` and unconstrained (no children)
``~t``     the node is of type ``t`` and constrained by descendants
``a t``    the node must be an ancestor of a ``t`` node that is itself
           unconstrained and a *direct* d-child — i.e., the node has a
           d-child leaf of type ``t``
``a ~t``   the node must be an ancestor of some ``t`` node, but that
           node is constrained and/or lies deeper than one step
``p t``    the node has a c-child leaf of type ``t`` (unconstrained)
``p ~t``   the node has a c-child of type ``t`` that is constrained
=========  ===========================================================

The *unconstrained* obligation forms (``a t`` / ``p t``) correspond 1:1
to direct leaf children, which are the only nodes CDM may remove; each
such argument therefore tracks the ids of the leaf children that produced
it (several same-type leaves merge into one argument with several
sources).
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

__all__ = ["ArgKind", "InfoArg", "InfoContent"]


class ArgKind(enum.Enum):
    """The three argument families."""

    #: The node's own type (``t`` / ``~t``).
    SELF = "self"
    #: Ancestor obligation (``a t`` / ``a ~t``).
    ANCESTOR = "a"
    #: Parenthood obligation (``p t`` / ``p ~t``).
    PARENT = "p"


class InfoArg:
    """One information argument.

    ``constrained`` is the tilde of the paper's notation: for SELF it
    means "this node has children"; for obligations it means the obliged
    node is constrained or lies more than one step below. Arguments are
    immutable, hashable (with a precomputed hash — contents hash these in
    tight loops), and totally ordered (SELF first, then ``a``, then ``p``;
    then by type) for deterministic iteration.
    """

    __slots__ = ("kind", "type", "constrained", "_hash")

    _KIND_ORDER = {ArgKind.SELF: 0, ArgKind.ANCESTOR: 1, ArgKind.PARENT: 2}

    def __init__(self, kind: ArgKind, type: str, constrained: bool) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "type", type)
        object.__setattr__(self, "constrained", constrained)
        object.__setattr__(self, "_hash", hash((kind.value, type, constrained)))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("InfoArg is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InfoArg):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.type == other.type
            and self.constrained == other.constrained
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InfoArg({self.kind!r}, {self.type!r}, {self.constrained!r})"

    def _sort_key(self) -> tuple[int, str, bool]:
        return (self._KIND_ORDER[self.kind], self.type, self.constrained)

    def __lt__(self, other: "InfoArg") -> bool:
        if not isinstance(other, InfoArg):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    @property
    def is_obligation(self) -> bool:
        """True for ``a``/``p`` arguments."""
        return self.kind is not ArgKind.SELF

    @property
    def is_removable_form(self) -> bool:
        """True for the unconstrained obligation forms ``a t`` / ``p t``,
        the only arguments whose source nodes CDM may remove."""
        return self.is_obligation and not self.constrained

    def notation(self) -> str:
        """Paper notation, e.g. ``"a ~Section"`` or ``"Paragraph"``."""
        tilde = "~" if self.constrained else ""
        if self.kind is ArgKind.SELF:
            return f"{tilde}{self.type}"
        return f"{self.kind.value} {tilde}{self.type}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.notation()


class InfoContent:
    """The information content at one node: arguments plus, for the
    removable forms, the ids of the leaf children that produced them.

    ``sources[arg]`` is a set of pattern node ids; SELF and constrained
    arguments carry an empty source set (they are never removal targets).
    """

    def __init__(self) -> None:
        self._sources: dict[InfoArg, set[int]] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add(self, arg: InfoArg, source: Optional[int] = None) -> None:
        """Record ``arg``; attach ``source`` (a direct leaf child id) when
        the argument is in removable form."""
        bucket = self._sources.setdefault(arg, set())
        if source is not None and arg.is_removable_form:
            bucket.add(source)

    def set_self(self, node_type: str, constrained: bool) -> None:
        """(Re)set the node's SELF argument, replacing any previous one."""
        for arg in [a for a in self._sources if a.kind is ArgKind.SELF]:
            del self._sources[arg]
        self._sources[InfoArg(ArgKind.SELF, node_type, constrained)] = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def args(self) -> Iterator[InfoArg]:
        """All arguments, deterministically ordered."""
        return iter(sorted(self._sources))

    def self_arg(self) -> Optional[InfoArg]:
        """The SELF argument (None only before :meth:`set_self`)."""
        for arg in self._sources:
            if arg.kind is ArgKind.SELF:
                return arg
        return None

    def sources_of(self, arg: InfoArg) -> set[int]:
        """Live source leaf-children of a removable argument."""
        return self._sources.get(arg, set())

    def has(self, arg: InfoArg) -> bool:
        """Whether ``arg`` is (still) part of the content."""
        return arg in self._sources

    def is_live(self, arg: InfoArg) -> bool:
        """An argument can justify or be the target of a rule only while
        live: non-removable forms always are; removable forms need at
        least one surviving source."""
        if arg not in self._sources:
            return False
        if not arg.is_removable_form:
            return True
        return bool(self._sources[arg])

    def removable_args(self) -> list[InfoArg]:
        """Arguments in removable form that still have sources."""
        return [a for a in sorted(self._sources) if a.is_removable_form and self._sources[a]]

    # ------------------------------------------------------------------
    # Mutation during minimization
    # ------------------------------------------------------------------

    def drop_source(self, arg: InfoArg, source: int) -> None:
        """Remove one source of ``arg``; the argument dies with its last
        source."""
        bucket = self._sources.get(arg)
        if bucket is None:
            return
        bucket.discard(source)
        if not bucket and arg.is_removable_form:
            del self._sources[arg]

    def drop(self, arg: InfoArg) -> None:
        """Remove an argument outright."""
        self._sources.pop(arg, None)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def notation(self) -> str:
        """Paper-style rendering, e.g. ``"~t1, p ~t2, a ~t5, a ~t6"``."""
        ordered = sorted(self._sources, key=lambda a: (a.kind is not ArgKind.SELF, a))
        return ", ".join(a.notation() for a in ordered)

    def __len__(self) -> int:
        return len(self._sources)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<InfoContent {self.notation()}>"
