"""The ``redundant-leaf`` test via *images* sets (Figure 3 of the paper).

To test whether a leaf ``b`` of query ``Q`` is redundant, associate with
every node ``v`` the set ``images(v)`` of nodes ``v`` could map to under a
containment mapping into ``Q - b`` (type-compatible; ``b`` itself and any
augmentation target anchored at ``b`` are excluded from every set, so a
surviving mapping certifies ``Q - b`` equivalent to ``Q``). The sets
are pruned bottom-up: a target ``s`` is dropped from ``images(v)`` when
some c-child (d-child) ``u`` of ``v`` has no member of ``images(u)`` that
is a c-child (proper descendant) of ``s``. The leaf is redundant iff the
pruned ``images(root)`` is non-empty (Theorem 4.2).

Following Section 6.1 of the paper, the ancestor/descendant relation and
the images sets are hash tables, and nodes contributed by IC augmentation
are **never materialized**: they participate only as extra *targets* in
these tables (:class:`VirtualTarget`). The walk from the leaf's parent to
the root implements the early exits of Figure 3: empty ``images(v)`` means
NO immediately; ``v ∈ images(v)`` means YES immediately (identity extends
upward).

The tables are *maintained incrementally* across leaf deletions
(:meth:`ImagesEngine.delete_leaf`): removing a leaf touches only its own
rows, its ancestors' descendant sets, and the virtual targets anchored at
it, so the CIM elimination loop reuses one engine for its whole run
instead of rebuilding O(n) times. Per-node *base* candidate sets (the
type-compatibility part of an images set, which is deletion-invariant
modulo removed ids) are memoized for the same reason — see
:meth:`ImagesEngine._base_images`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..errors import InvalidPatternError
from . import oracle_cache as _oracle_cache
from .edges import EdgeKind
from .node import PatternNode
from .pattern import TreePattern

__all__ = [
    "VirtualTarget",
    "AncestorTable",
    "ImagesStats",
    "ImagesEngine",
    "create_images_engine",
]


@dataclass(frozen=True)
class VirtualTarget:
    """An augmentation-implied node used only as a mapping target.

    A required-child IC ``t1 -> t2`` applied to node ``p`` guarantees that
    in every constraint-satisfying database the image of ``p`` has a child
    of type ``t2``; a required-descendant IC guarantees a descendant. Such
    guaranteed nodes never need to be mapped themselves — they only
    *receive* mappings.

    Attributes
    ----------
    id:
        Negative integer id, disjoint from real pattern node ids.
    node_type:
        The guaranteed node's type.
    parent_id:
        Id of the node the IC was applied to. Usually a real pattern node;
        may be another (earlier) virtual target when the augmentation
        expands whole witness subtrees. Sequences of targets must list
        every virtual parent before its virtual children.
    edge:
        ``CHILD`` if the IC was ``t1 -> t2`` (the target is a c-child of
        its parent), ``DESCENDANT`` for ``t1 ->> t2``.
    extra_types:
        Co-occurrence types the guaranteed node must also carry (``t2 ~
        t3`` makes every ``t2`` node a ``t3`` node too), so the target can
        receive mappings from sources of those types as well.
    """

    id: int
    node_type: str
    parent_id: int
    edge: EdgeKind
    extra_types: frozenset[str] = frozenset()

    @property
    def all_types(self) -> frozenset[str]:
        """Primary type plus co-occurrence extras."""
        return self.extra_types | {self.node_type}

    def __post_init__(self) -> None:
        if self.id >= 0:
            raise InvalidPatternError("virtual target ids must be negative")


class AncestorTable:
    """Hash-indexed ancestor/descendant relation over a pattern plus
    virtual targets (the paper's ancestor/descendant table, Section 6.1).
    """

    def __init__(self, pattern: TreePattern, virtual: Sequence[VirtualTarget] = ()) -> None:
        self._ancestors: dict[int, frozenset[int]] = {}
        self._c_children: dict[int, set[int]] = {}
        self._descendants: dict[int, set[int]] = {}
        self._build(pattern, virtual)

    def _build(self, pattern: TreePattern, virtual: Sequence[VirtualTarget]) -> None:
        for node in pattern.nodes():
            parent = node.parent
            if parent is None:
                anc: frozenset[int] = frozenset()
            else:
                anc = self._ancestors[parent.id] | {parent.id}
            self._ancestors[node.id] = anc
            self._c_children.setdefault(node.id, set())
            self._descendants.setdefault(node.id, set())
            if parent is not None:
                if node.edge is EdgeKind.CHILD:
                    self._c_children[parent.id].add(node.id)
                for a in anc:
                    self._descendants[a].add(node.id)
        for vt in virtual:
            if vt.parent_id not in self._ancestors:
                raise InvalidPatternError(
                    f"virtual target {vt.id} attached to unknown node {vt.parent_id}"
                )
            anc = self._ancestors[vt.parent_id] | {vt.parent_id}
            self._ancestors[vt.id] = anc
            self._c_children.setdefault(vt.id, set())
            self._descendants.setdefault(vt.id, set())
            if vt.edge is EdgeKind.CHILD:
                self._c_children[vt.parent_id].add(vt.id)
            for a in anc:
                self._descendants[a].add(vt.id)

    def is_c_child(self, node_id: int, parent_id: int) -> bool:
        """Whether ``node_id`` is a c-child of ``parent_id``."""
        return node_id in self._c_children.get(parent_id, ())

    def ancestors_of(self, node_id: int) -> frozenset[int]:
        """Ids of ``node_id``'s proper ancestors (empty for the root or
        for ids not in the table)."""
        return self._ancestors.get(node_id, frozenset())

    def is_descendant(self, node_id: int, ancestor_id: int) -> bool:
        """Whether ``node_id`` is a proper descendant of ``ancestor_id``."""
        return ancestor_id in self._ancestors.get(node_id, ())

    def has_row(self, node_id: int) -> bool:
        """Whether ``node_id`` (real or virtual) is still in the table."""
        return node_id in self._ancestors

    def c_children_of(self, parent_id: int) -> frozenset[int]:
        """Ids of c-children (real and virtual) of ``parent_id``.

        Returns a frozen view: the table's internal sets are never handed
        out, so callers cannot corrupt the relation.
        """
        return frozenset(self._c_children.get(parent_id, ()))

    def descendants_of(self, ancestor_id: int) -> frozenset[int]:
        """Ids of proper descendants (real and virtual) of ``ancestor_id``
        (a frozen view — see :meth:`c_children_of`)."""
        return frozenset(self._descendants.get(ancestor_id, ()))

    def delete_leaf(self, node_id: int) -> None:
        """Incrementally remove a childless row from the table.

        ``node_id`` may be a real pattern node or a virtual target; it
        must have no remaining descendants in the table (virtual targets
        anchored at a real node count as its descendants and must be
        deleted first — :meth:`ImagesEngine.delete_leaf` handles the
        ordering).

        Cost is O(depth): the row itself plus one discard in each
        ancestor's descendant set (and the parent's c-children set).
        """
        anc = self._ancestors.get(node_id)
        if anc is None:
            raise InvalidPatternError(f"node {node_id} is not in the table")
        if self._descendants.get(node_id) or self._c_children.get(node_id):
            raise InvalidPatternError(
                f"node {node_id} still has descendants; delete them first"
            )
        del self._ancestors[node_id]
        self._descendants.pop(node_id, None)
        self._c_children.pop(node_id, None)
        for a in anc:
            children = self._c_children.get(a)
            if children is not None:
                children.discard(node_id)
            below = self._descendants.get(a)
            if below is not None:
                below.discard(node_id)


@dataclass
class ImagesStats:
    """Instrumentation counters for the images engine.

    ``tables_seconds`` covers building **and incrementally maintaining**
    the ancestor/descendant table and initializing the images sets — the
    fraction studied in Figure 7(b). ``prune_seconds`` covers the
    bottom-up pruning sweeps.

    ``engine_builds`` / ``incremental_deletes`` attribute table
    maintenance: a from-scratch driver rebuilds the engine per deletion
    (``engine_builds`` ≈ deletions), the incremental driver builds once
    and applies cheap deletes. ``base_cache_hits`` / ``base_cache_misses``
    instrument the memoized per-node base candidate sets.

    ``max_image_size`` samples images sets as initialized (pre-pruning);
    ``max_image_size_post_prune`` samples them after the bottom-up sweep,
    so table-vs-prune attribution (Figure 7(b)) stays honest when the
    memoized path makes initialization cheap.

    ``prune_memo_hits`` / ``prune_memo_misses`` instrument the
    sibling-subtree prune memo (part of the oracle-cache subsystem): a
    hit means a whole subtree's pruned images sets were reused from an
    earlier redundancy check instead of being re-derived;
    ``prune_memo_evictions`` counts whole-memo resets at the size cap.
    """

    tables_seconds: float = 0.0
    prune_seconds: float = 0.0
    redundancy_checks: int = 0
    max_image_size: int = 0
    max_image_size_post_prune: int = 0
    pruned_entries: int = 0
    engine_builds: int = 0
    incremental_deletes: int = 0
    base_cache_hits: int = 0
    base_cache_misses: int = 0
    prune_memo_hits: int = 0
    prune_memo_misses: int = 0
    prune_memo_evictions: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Tables time plus pruning time."""
        return self.tables_seconds + self.prune_seconds

    def counters(self) -> dict[str, int]:
        """The integer counters as a flat dict (for JSON reports)."""
        return {
            "redundancy_checks": self.redundancy_checks,
            "max_image_size": self.max_image_size,
            "max_image_size_post_prune": self.max_image_size_post_prune,
            "pruned_entries": self.pruned_entries,
            "engine_builds": self.engine_builds,
            "incremental_deletes": self.incremental_deletes,
            "base_cache_hits": self.base_cache_hits,
            "base_cache_misses": self.base_cache_misses,
            "prune_memo_hits": self.prune_memo_hits,
            "prune_memo_misses": self.prune_memo_misses,
            "prune_memo_evictions": self.prune_memo_evictions,
        }


def create_images_engine(
    pattern: TreePattern,
    virtual: Sequence[VirtualTarget] = (),
    stats: Optional[ImagesStats] = None,
    pair_filter: Optional[Callable[[int, int], bool]] = None,
    prune_memo: Optional[bool] = None,
    *,
    engine: Optional[str] = None,
):
    """Construct a redundant-leaf engine for ``pattern``.

    This is the dispatching facade the minimizers go through: ``engine``
    (``"v1"``/``"v2"``/``None``) resolves via
    :func:`repro.core.engine_config.resolve_core_engine` — explicit
    argument, then the active ``Session`` scope, then the process default
    (``REPRO_CORE_ENGINE``, default v2). Both engines expose the same
    API and produce byte-identical results; v2
    (:class:`repro.core.engine_v2.FlatImagesEngine`) runs the images sets
    as bitsets over a flat compilation of the pattern.
    """
    from .engine_config import resolve_core_engine

    if resolve_core_engine(engine) == "v2":
        from .engine_v2 import FlatImagesEngine

        return FlatImagesEngine(
            pattern, virtual, stats, pair_filter=pair_filter, prune_memo=prune_memo
        )
    return ImagesEngine(
        pattern, virtual, stats, pair_filter=pair_filter, prune_memo=prune_memo
    )


class ImagesEngine:
    """Runs ``redundant-leaf`` tests against one pattern.

    The engine snapshots the pattern's structure into hash tables once and
    then *tracks* leaf deletions through :meth:`delete_leaf`; any other
    mutation of the pattern while the engine is in use invalidates it.
    The CIM driver (:mod:`repro.core.cim`) performs its whole elimination
    loop against one engine this way.

    Parameters
    ----------
    pattern:
        The query under test.
    virtual:
        Augmentation targets (see :class:`VirtualTarget`). Empty for
        constraint-independent minimization.
    stats:
        Optional shared :class:`ImagesStats` to accumulate timings into.
    pair_filter:
        Optional extra compatibility predicate ``(source_node_id,
        target_id) -> bool`` applied when initializing images sets. Used
        by the value-predicate extension (Section 7 of the paper): a
        target is admissible only if its conditions entail the source's.
        Must be deterministic — the prune memo replays its results.
    prune_memo:
        Reuse pruned sibling-subtree images across redundancy checks
        (see :meth:`_prune_child_subtree`). ``None`` (default) follows
        the process-wide oracle-cache switch
        (:func:`repro.core.oracle_cache.global_enabled`); pass ``False``
        for the memo-free baseline used by differential tests.
    """

    #: Whole-memo reset threshold: entries reference the pruned sets of
    #: past checks, so an unbounded memo would pin every check's sets.
    PRUNE_MEMO_CAP = 4096

    def __init__(
        self,
        pattern: TreePattern,
        virtual: Sequence[VirtualTarget] = (),
        stats: Optional[ImagesStats] = None,
        pair_filter: Optional[Callable[[int, int], bool]] = None,
        prune_memo: Optional[bool] = None,
    ) -> None:
        self.pattern = pattern
        self.virtual = tuple(virtual)
        self.pair_filter = pair_filter
        self.use_prune_memo = (
            _oracle_cache.global_enabled() if prune_memo is None else bool(prune_memo)
        )
        # Pruned sibling-subtree results: (subtree root id, relevant part
        # of the excluded set) -> ({node id -> pruned images set over the
        # subtree}, the subtree's relevant set when stored).
        self._prune_memo: dict[
            tuple[int, frozenset[int]], tuple[dict[int, set[int]], frozenset[int]]
        ] = {}
        # Per-subtree union of base candidate sets ("relevant" ids): the
        # part of the target space a subtree's pruning can observe.
        self._relevant_cache: dict[int, frozenset[int]] = {}
        self.stats = stats if stats is not None else ImagesStats()
        self.stats.engine_builds += 1
        start = time.perf_counter()
        self.ancestors = AncestorTable(pattern, self.virtual)
        # Type index over real nodes and virtual targets: type -> ids.
        self._by_type: dict[str, set[int]] = {}
        self._starred: set[int] = set()
        # Memoized per-node *base* candidate sets (type compatibility,
        # output marker, pair filter) — everything about an images set
        # that does not depend on which leaf is under test. Maintained
        # across deletions by delete_leaf.
        self._base_cache: dict[int, set[int]] = {}
        for node in pattern.nodes():
            for t in node.all_types:
                self._by_type.setdefault(t, set()).add(node.id)
            if node.is_output:
                self._starred.add(node.id)
        for vt in self.virtual:
            for t in vt.all_types:
                self._by_type.setdefault(t, set()).add(vt.id)
        self.stats.tables_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def is_redundant_leaf(self, leaf: PatternNode) -> bool:
        """The paper's ``redundant-leaf`` test for ``leaf``."""
        return self._run(leaf) is not None

    def _anchored_at(self, node_id: int) -> tuple[VirtualTarget, ...]:
        """Virtual targets anchored at ``node_id``, transitively: a witness
        subtree hangs off its anchor through virtual-parented targets, and
        the whole subtree stands or falls with the anchor. One forward pass
        suffices because ``self.virtual`` lists parents before children."""
        dead = {node_id}
        anchored: list[VirtualTarget] = []
        for vt in self.virtual:
            if vt.parent_id in dead:
                anchored.append(vt)
                dead.add(vt.id)
        return tuple(anchored)

    def delete_leaf(self, leaf: PatternNode) -> tuple[VirtualTarget, ...]:
        """Incrementally track the deletion of ``leaf`` from the pattern.

        Call right after :meth:`TreePattern.delete_leaf` removed ``leaf``
        (the detached node object still carries its id and types). The
        update removes the leaf's rows from the ancestor/descendant table
        and type index, drops every virtual target anchored at the leaf
        (an IC guarantee around a node vanishes with the node), and
        subtracts the dead ids from the memoized base candidate sets.

        Returns the dropped virtual targets. Cost is O(depth) per removed
        row plus one hash probe per memoized base set — versus O(n²) for
        a from-scratch engine rebuild.
        """
        start = time.perf_counter()
        leaf_id = leaf.id
        ancestor_ids = self.ancestors.ancestors_of(leaf_id)
        dropped = self._anchored_at(leaf_id)
        # Delete deepest-first: the ancestor table refuses to drop a row
        # that still has descendants, and witness subtrees list parents
        # before children.
        for vt in reversed(dropped):
            self.ancestors.delete_leaf(vt.id)
            for t in vt.all_types:
                bucket = self._by_type.get(t)
                if bucket is not None:
                    bucket.discard(vt.id)
        self.ancestors.delete_leaf(leaf_id)
        for t in leaf.all_types:
            bucket = self._by_type.get(t)
            if bucket is not None:
                bucket.discard(leaf_id)
        if dropped:
            dead_ids = {vt.id for vt in dropped}
            self.virtual = tuple(
                vt for vt in self.virtual if vt.id not in dead_ids
            )
        dead = {leaf_id}
        dead.update(vt.id for vt in dropped)
        self._base_cache.pop(leaf_id, None)
        for base in self._base_cache.values():
            base.difference_update(dead)
        # Prune-memo maintenance. Subtrees on the leaf's ancestor path
        # changed structurally — their memoized prunes and relevant sets
        # are stale. Everywhere else the structure is intact and the base
        # sets merely lost the dead ids, so: entries whose relevant set
        # never saw a dead id are still exact (their pruned sets cannot
        # mention it), the rest are dropped; relevant sets shrink by the
        # dead ids exactly as their underlying base sets did.
        if self.use_prune_memo:
            stale = set(ancestor_ids)
            stale.add(leaf_id)
            self._prune_memo = {
                (root, key): entry
                for (root, key), entry in self._prune_memo.items()
                if root not in stale and not (entry[1] & dead)
            }
            self._relevant_cache = {
                node_id: relevant - dead
                for node_id, relevant in self._relevant_cache.items()
                if node_id not in stale
            }
        self.stats.incremental_deletes += 1
        self.stats.tables_seconds += time.perf_counter() - start
        return dropped

    def redundancy_witness(self, leaf: PatternNode) -> Optional[dict[int, int]]:
        """A concrete endomorphism witnessing redundancy of ``leaf``.

        Returns a mapping from real node ids to target ids (which may be
        negative = virtual), or ``None`` if the leaf is not redundant. Used
        by tests to certify each deletion.
        """
        result = self._run(leaf)
        if result is None:
            return None
        images, stop_node = result
        return self._extract(images, stop_node)

    # ------------------------------------------------------------------
    # Core algorithm (Figure 3)
    # ------------------------------------------------------------------

    def _base_images(self, node: PatternNode) -> set[int]:
        """The memoized deletion-invariant part of ``images(node)``.

        Type compatibility, the output-marker restriction, and the pair
        filter do not depend on which leaf is under test, so they are
        computed once per node and only ever *shrink* (delete_leaf
        subtracts removed ids). The returned set is owned by the cache —
        callers must not mutate it.
        """
        cached = self._base_cache.get(node.id)
        if cached is not None:
            self.stats.base_cache_hits += 1
            return cached
        self.stats.base_cache_misses += 1
        candidates = set(self._by_type.get(node.type, ()))
        # The output node may only map to the output node; non-output
        # nodes may map anywhere, including onto the output node (the
        # marker constrains where the answer comes from, not what else
        # may fold onto that position).
        if node.is_output:
            candidates &= self._starred
        if self.pair_filter is not None:
            candidates = {t for t in candidates if self.pair_filter(node.id, t)}
        self._base_cache[node.id] = candidates
        return candidates

    def _excluded_for(self, leaf: PatternNode) -> frozenset[int]:
        """Target ids barred from every images set when testing ``leaf``.

        Deleting `leaf` must leave an equivalent query, i.e. there must
        be a containment mapping from Q into (Q - leaf) plus the
        augmentation of (Q - leaf). Two target families therefore drop
        out of every images set:

        * `leaf` itself — it is exactly what is being deleted;
        * virtual targets anchored at `leaf` — an IC guarantee around
          a node vanishes with the node (without this, `b ->> b`-style
          closure facts let a leaf justify its own deletion).
        """
        excluded = {leaf.id}
        excluded.update(vt.id for vt in self._anchored_at(leaf.id))
        return frozenset(excluded)

    def _initial_images(
        self, leaf: PatternNode, excluded: frozenset[int]
    ) -> dict[int, set[int]]:
        start = time.perf_counter()
        images: dict[int, set[int]] = {}
        max_size = self.stats.max_image_size
        for node in self.pattern.nodes():
            candidates = self._base_images(node) - excluded
            images[node.id] = candidates
            if len(candidates) > max_size:
                max_size = len(candidates)
        self.stats.max_image_size = max_size
        self.stats.tables_seconds += time.perf_counter() - start
        return images

    def _run(self, leaf: PatternNode) -> Optional[tuple[dict[int, set[int]], PatternNode]]:
        """Run the test; return ``(pruned images, stop node)`` when the
        leaf is redundant, else ``None``.

        ``stop node`` is the ancestor at which an early YES fired (identity
        extends above it), or the root.
        """
        if not leaf.is_leaf:
            raise InvalidPatternError("redundant-leaf requires a leaf node")
        if leaf.is_output:
            return None
        self.stats.redundancy_checks += 1
        excluded = self._excluded_for(leaf)
        images = self._initial_images(leaf, excluded)
        if not images[leaf.id]:
            return None

        start = time.perf_counter()
        try:
            marked: set[int] = {leaf.id}
            node = leaf.parent
            while node is not None:
                self._minimize_images(node, images, marked, excluded)
                if not images[node.id]:
                    return None
                if node.id in images[node.id]:
                    # Early YES: node maps to itself, identity extends to
                    # all ancestors (Figure 3, step 4.3).
                    return images, node
                node = node.parent
            root = self.pattern.root
            if images[root.id]:
                return images, root
            return None
        finally:
            self.stats.prune_seconds += time.perf_counter() - start

    def _relevant(self, node: PatternNode) -> frozenset[int]:
        """Union of base candidate sets over ``node``'s subtree — every
        target id the subtree's pruning can possibly observe. Cached per
        node; :meth:`delete_leaf` keeps the cache exact."""
        cached = self._relevant_cache.get(node.id)
        if cached is not None:
            return cached
        stack: list[tuple[PatternNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if current.id in self._relevant_cache:
                continue
            if not expanded:
                stack.append((current, True))
                stack.extend((child, False) for child in current.children)
                continue
            relevant = set(self._base_images(current))
            for child in current.children:
                relevant |= self._relevant_cache[child.id]
            self._relevant_cache[current.id] = frozenset(relevant)
        return self._relevant_cache[node.id]

    def _prune_child_subtree(
        self,
        child: PatternNode,
        images: dict[int, set[int]],
        marked: set[int],
        excluded: frozenset[int],
    ) -> None:
        """Prune ``child``'s whole subtree, reusing a memoized result when
        an earlier redundancy check already pruned it under an equivalent
        exclusion.

        The pruned sets of a subtree are a pure function of (a) the
        subtree's structure, (b) its initial images — the base sets minus
        the excluded ids — and (c) the ancestor/descendant relation among
        live targets. Base sets are bounded by the subtree's *relevant*
        set, so two excluded sets with the same intersection with it
        yield identical initial images, hence identical pruned sets: the
        memo key is ``(subtree root, excluded ∩ relevant)``. Sibling-leaf
        checks differ only in the leaf under test, so subtrees that
        cannot see either leaf share the empty key — the reuse this memo
        exists for.
        """
        if not self.use_prune_memo:
            self._minimize_images(child, images, marked, excluded)
            return
        relevant = self._relevant(child)
        key = (child.id, excluded & relevant)
        entry = self._prune_memo.get(key)
        if entry is not None:
            self.stats.prune_memo_hits += 1
            pruned, _ = entry
            # The memoized sets are shared read-only: every consumer
            # (parent-level pruning, witness extraction) only reads
            # them, and re-pruning always *replaces* a node's set.
            for node_id, targets in pruned.items():
                images[node_id] = targets
                marked.add(node_id)
            return
        self.stats.prune_memo_misses += 1
        self._minimize_images(child, images, marked, excluded)
        if len(self._prune_memo) >= self.PRUNE_MEMO_CAP:
            self._prune_memo.clear()
            self.stats.prune_memo_evictions += 1
        pruned = {}
        stack = [child]
        while stack:
            current = stack.pop()
            pruned[current.id] = images[current.id]
            stack.extend(current.children)
        self._prune_memo[key] = (pruned, relevant)

    def _minimize_images(
        self,
        node: PatternNode,
        images: dict[int, set[int]],
        marked: set[int],
        excluded: frozenset[int],
    ) -> None:
        """Prune ``images`` throughout ``node``'s subtree (post-order)."""
        if node.is_leaf:
            marked.add(node.id)
            return
        for child in node.children:
            if child.id not in marked:
                self._prune_child_subtree(child, images, marked, excluded)
        survivors: set[int] = set()
        for s in images[node.id]:
            if self._supports_children(s, node, images):
                survivors.add(s)
            else:
                self.stats.pruned_entries += 1
        images[node.id] = survivors
        if len(survivors) > self.stats.max_image_size_post_prune:
            self.stats.max_image_size_post_prune = len(survivors)
        marked.add(node.id)

    def _supports_children(
        self, s: int, node: PatternNode, images: dict[int, set[int]]
    ) -> bool:
        """Whether target ``s`` has, for every child ``u`` of ``node``, an
        appropriately-related member of ``images(u)``."""
        for u in node.children:
            if u.edge is EdgeKind.CHILD:
                if not any(self.ancestors.is_c_child(w, s) for w in images[u.id]):
                    return False
            else:
                if not any(self.ancestors.is_descendant(w, s) for w in images[u.id]):
                    return False
        return True

    # ------------------------------------------------------------------
    # Witness extraction
    # ------------------------------------------------------------------

    def _extract(
        self, images: dict[int, set[int]], stop_node: PatternNode
    ) -> dict[int, int]:
        """Build a concrete endomorphism from pruned images sets.

        Identity is used on ``stop_node``'s strict ancestors and their other
        subtrees (sound: the early-YES condition means ``stop_node`` maps to
        itself, and everything outside its subtree is untouched). Inside the
        subtree the choice is greedy top-down, which is safe on trees.
        """
        mapping: dict[int, int] = {}
        for node in self.pattern.nodes():
            mapping[node.id] = node.id
        root_target = (
            stop_node.id
            if stop_node.id in images[stop_node.id]
            else min(images[stop_node.id])
        )
        self._assign(stop_node, root_target, images, mapping)
        return mapping

    def _assign(
        self, v: PatternNode, s: int, images: dict[int, set[int]], mapping: dict[int, int]
    ) -> None:
        mapping[v.id] = s
        for u in v.children:
            if u.edge is EdgeKind.CHILD:
                pool: Iterable[int] = self.ancestors.c_children_of(s)
            else:
                pool = self.ancestors.descendants_of(s)
            choices = [w for w in pool if w in images[u.id]]
            if not choices:  # pragma: no cover - pruning guarantees a choice
                raise AssertionError("pruned images admitted an unsupported target")
            self._assign(u, min(choices), images, mapping)
