"""The ``redundant-leaf`` test via *images* sets (Figure 3 of the paper).

To test whether a leaf ``b`` of query ``Q`` is redundant, associate with
every node ``v`` the set ``images(v)`` of nodes ``v`` could map to under a
containment mapping into ``Q - b`` (type-compatible; ``b`` itself and any
augmentation target anchored at ``b`` are excluded from every set, so a
surviving mapping certifies ``Q - b`` equivalent to ``Q``). The sets
are pruned bottom-up: a target ``s`` is dropped from ``images(v)`` when
some c-child (d-child) ``u`` of ``v`` has no member of ``images(u)`` that
is a c-child (proper descendant) of ``s``. The leaf is redundant iff the
pruned ``images(root)`` is non-empty (Theorem 4.2).

Following Section 6.1 of the paper, the ancestor/descendant relation and
the images sets are hash tables, and nodes contributed by IC augmentation
are **never materialized**: they participate only as extra *targets* in
these tables (:class:`VirtualTarget`). The walk from the leaf's parent to
the root implements the early exits of Figure 3: empty ``images(v)`` means
NO immediately; ``v ∈ images(v)`` means YES immediately (identity extends
upward).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..errors import InvalidPatternError
from .edges import EdgeKind
from .node import PatternNode
from .pattern import TreePattern

__all__ = ["VirtualTarget", "AncestorTable", "ImagesStats", "ImagesEngine"]


@dataclass(frozen=True)
class VirtualTarget:
    """An augmentation-implied node used only as a mapping target.

    A required-child IC ``t1 -> t2`` applied to node ``p`` guarantees that
    in every constraint-satisfying database the image of ``p`` has a child
    of type ``t2``; a required-descendant IC guarantees a descendant. Such
    guaranteed nodes are leaves with no further obligations, so they never
    need to be mapped themselves — they only *receive* mappings.

    Attributes
    ----------
    id:
        Negative integer id, disjoint from real pattern node ids.
    node_type:
        The guaranteed node's type.
    parent_id:
        Id of the (real) pattern node the IC was applied to.
    edge:
        ``CHILD`` if the IC was ``t1 -> t2`` (the target is a c-child of
        its parent), ``DESCENDANT`` for ``t1 ->> t2``.
    """

    id: int
    node_type: str
    parent_id: int
    edge: EdgeKind

    def __post_init__(self) -> None:
        if self.id >= 0:
            raise InvalidPatternError("virtual target ids must be negative")


class AncestorTable:
    """Hash-indexed ancestor/descendant relation over a pattern plus
    virtual targets (the paper's ancestor/descendant table, Section 6.1).
    """

    def __init__(self, pattern: TreePattern, virtual: Sequence[VirtualTarget] = ()) -> None:
        self._ancestors: dict[int, frozenset[int]] = {}
        self._c_children: dict[int, set[int]] = {}
        self._descendants: dict[int, set[int]] = {}
        self._build(pattern, virtual)

    def _build(self, pattern: TreePattern, virtual: Sequence[VirtualTarget]) -> None:
        for node in pattern.nodes():
            parent = node.parent
            if parent is None:
                anc: frozenset[int] = frozenset()
            else:
                anc = self._ancestors[parent.id] | {parent.id}
            self._ancestors[node.id] = anc
            self._c_children.setdefault(node.id, set())
            self._descendants.setdefault(node.id, set())
            if parent is not None:
                if node.edge is EdgeKind.CHILD:
                    self._c_children[parent.id].add(node.id)
                for a in anc:
                    self._descendants[a].add(node.id)
        for vt in virtual:
            if vt.parent_id not in self._ancestors:
                raise InvalidPatternError(
                    f"virtual target {vt.id} attached to unknown node {vt.parent_id}"
                )
            anc = self._ancestors[vt.parent_id] | {vt.parent_id}
            self._ancestors[vt.id] = anc
            self._c_children.setdefault(vt.id, set())
            self._descendants.setdefault(vt.id, set())
            if vt.edge is EdgeKind.CHILD:
                self._c_children[vt.parent_id].add(vt.id)
            for a in anc:
                self._descendants[a].add(vt.id)

    def is_c_child(self, node_id: int, parent_id: int) -> bool:
        """Whether ``node_id`` is a c-child of ``parent_id``."""
        return node_id in self._c_children.get(parent_id, ())

    def is_descendant(self, node_id: int, ancestor_id: int) -> bool:
        """Whether ``node_id`` is a proper descendant of ``ancestor_id``."""
        return ancestor_id in self._ancestors.get(node_id, ())

    def c_children_of(self, parent_id: int) -> set[int]:
        """Ids of c-children (real and virtual) of ``parent_id``."""
        return self._c_children.get(parent_id, set())

    def descendants_of(self, ancestor_id: int) -> set[int]:
        """Ids of proper descendants (real and virtual) of ``ancestor_id``."""
        return self._descendants.get(ancestor_id, set())


@dataclass
class ImagesStats:
    """Instrumentation counters for the images engine.

    ``tables_seconds`` covers building the ancestor/descendant table and
    initializing the images sets — the fraction studied in Figure 7(b).
    ``prune_seconds`` covers the bottom-up pruning sweeps.
    """

    tables_seconds: float = 0.0
    prune_seconds: float = 0.0
    redundancy_checks: int = 0
    max_image_size: int = 0
    pruned_entries: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Tables time plus pruning time."""
        return self.tables_seconds + self.prune_seconds


class ImagesEngine:
    """Runs ``redundant-leaf`` tests against one pattern.

    The engine snapshots the pattern's structure into hash tables once; the
    pattern must not be mutated while the engine is in use (CIM rebuilds
    the engine after each deletion — see :mod:`repro.core.cim` for the
    incremental driver).

    Parameters
    ----------
    pattern:
        The query under test.
    virtual:
        Augmentation targets (see :class:`VirtualTarget`). Empty for
        constraint-independent minimization.
    stats:
        Optional shared :class:`ImagesStats` to accumulate timings into.
    pair_filter:
        Optional extra compatibility predicate ``(source_node_id,
        target_id) -> bool`` applied when initializing images sets. Used
        by the value-predicate extension (Section 7 of the paper): a
        target is admissible only if its conditions entail the source's.
    """

    def __init__(
        self,
        pattern: TreePattern,
        virtual: Sequence[VirtualTarget] = (),
        stats: Optional[ImagesStats] = None,
        pair_filter: Optional[Callable[[int, int], bool]] = None,
    ) -> None:
        self.pattern = pattern
        self.virtual = tuple(virtual)
        self.pair_filter = pair_filter
        self.stats = stats if stats is not None else ImagesStats()
        start = time.perf_counter()
        self.ancestors = AncestorTable(pattern, self.virtual)
        # Type index over real nodes and virtual targets: type -> ids.
        self._by_type: dict[str, set[int]] = {}
        self._starred: set[int] = set()
        for node in pattern.nodes():
            for t in node.all_types:
                self._by_type.setdefault(t, set()).add(node.id)
            if node.is_output:
                self._starred.add(node.id)
        for vt in self.virtual:
            self._by_type.setdefault(vt.node_type, set()).add(vt.id)
        self.stats.tables_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def is_redundant_leaf(self, leaf: PatternNode) -> bool:
        """The paper's ``redundant-leaf`` test for ``leaf``."""
        return self._run(leaf) is not None

    def redundancy_witness(self, leaf: PatternNode) -> Optional[dict[int, int]]:
        """A concrete endomorphism witnessing redundancy of ``leaf``.

        Returns a mapping from real node ids to target ids (which may be
        negative = virtual), or ``None`` if the leaf is not redundant. Used
        by tests to certify each deletion.
        """
        result = self._run(leaf)
        if result is None:
            return None
        images, stop_node = result
        return self._extract(images, stop_node)

    # ------------------------------------------------------------------
    # Core algorithm (Figure 3)
    # ------------------------------------------------------------------

    def _initial_images(self, leaf: PatternNode) -> dict[int, set[int]]:
        start = time.perf_counter()
        images: dict[int, set[int]] = {}
        # Deleting `leaf` must leave an equivalent query, i.e. there must
        # be a containment mapping from Q into (Q - leaf) plus the
        # augmentation of (Q - leaf). Two target families therefore drop
        # out of every images set:
        #   * `leaf` itself — it is exactly what is being deleted;
        #   * virtual targets anchored at `leaf` — an IC guarantee around
        #     a node vanishes with the node (without this, `b ->> b`-style
        #     closure facts let a leaf justify its own deletion).
        excluded: set[int] = {leaf.id}
        excluded.update(vt.id for vt in self.virtual if vt.parent_id == leaf.id)
        for node in self.pattern.nodes():
            candidates = set(self._by_type.get(node.type, ()))
            candidates -= excluded
            # The output node may only map to the output node; non-output
            # nodes may map anywhere, including onto the output node (the
            # marker constrains where the answer comes from, not what else
            # may fold onto that position).
            if node.is_output:
                candidates &= self._starred
            if self.pair_filter is not None:
                candidates = {t for t in candidates if self.pair_filter(node.id, t)}
            images[node.id] = candidates
            if len(candidates) > self.stats.max_image_size:
                self.stats.max_image_size = len(candidates)
        self.stats.tables_seconds += time.perf_counter() - start
        return images

    def _run(self, leaf: PatternNode) -> Optional[tuple[dict[int, set[int]], PatternNode]]:
        """Run the test; return ``(pruned images, stop node)`` when the
        leaf is redundant, else ``None``.

        ``stop node`` is the ancestor at which an early YES fired (identity
        extends above it), or the root.
        """
        if not leaf.is_leaf:
            raise InvalidPatternError("redundant-leaf requires a leaf node")
        if leaf.is_output:
            return None
        self.stats.redundancy_checks += 1
        images = self._initial_images(leaf)
        if not images[leaf.id]:
            return None

        start = time.perf_counter()
        try:
            marked: set[int] = {leaf.id}
            node = leaf.parent
            while node is not None:
                self._minimize_images(node, images, marked)
                if not images[node.id]:
                    return None
                if node.id in images[node.id]:
                    # Early YES: node maps to itself, identity extends to
                    # all ancestors (Figure 3, step 4.3).
                    return images, node
                node = node.parent
            root = self.pattern.root
            if images[root.id]:
                return images, root
            return None
        finally:
            self.stats.prune_seconds += time.perf_counter() - start

    def _minimize_images(
        self, node: PatternNode, images: dict[int, set[int]], marked: set[int]
    ) -> None:
        """Prune ``images`` throughout ``node``'s subtree (post-order)."""
        if node.is_leaf:
            marked.add(node.id)
            return
        for child in node.children:
            if child.id not in marked:
                self._minimize_images(child, images, marked)
        survivors: set[int] = set()
        for s in images[node.id]:
            if self._supports_children(s, node, images):
                survivors.add(s)
            else:
                self.stats.pruned_entries += 1
        images[node.id] = survivors
        marked.add(node.id)

    def _supports_children(
        self, s: int, node: PatternNode, images: dict[int, set[int]]
    ) -> bool:
        """Whether target ``s`` has, for every child ``u`` of ``node``, an
        appropriately-related member of ``images(u)``."""
        for u in node.children:
            if u.edge is EdgeKind.CHILD:
                if not any(self.ancestors.is_c_child(w, s) for w in images[u.id]):
                    return False
            else:
                if not any(self.ancestors.is_descendant(w, s) for w in images[u.id]):
                    return False
        return True

    # ------------------------------------------------------------------
    # Witness extraction
    # ------------------------------------------------------------------

    def _extract(
        self, images: dict[int, set[int]], stop_node: PatternNode
    ) -> dict[int, int]:
        """Build a concrete endomorphism from pruned images sets.

        Identity is used on ``stop_node``'s strict ancestors and their other
        subtrees (sound: the early-YES condition means ``stop_node`` maps to
        itself, and everything outside its subtree is untouched). Inside the
        subtree the choice is greedy top-down, which is safe on trees.
        """
        mapping: dict[int, int] = {}
        for node in self.pattern.nodes():
            mapping[node.id] = node.id
        root_target = (
            stop_node.id
            if stop_node.id in images[stop_node.id]
            else min(images[stop_node.id])
        )
        self._assign(stop_node, root_target, images, mapping)
        return mapping

    def _assign(
        self, v: PatternNode, s: int, images: dict[int, set[int]], mapping: dict[int, int]
    ) -> None:
        mapping[v.id] = s
        for u in v.children:
            if u.edge is EdgeKind.CHILD:
                pool: Iterable[int] = self.ancestors.c_children_of(s)
            else:
                pool = self.ancestors.descendants_of(s)
            choices = [w for w in pool if w in images[u.id]]
            if not choices:  # pragma: no cover - pruning guarantees a choice
                raise AssertionError("pruned images admitted an unsupported target")
            self._assign(u, min(choices), images, mapping)
