"""Tree pattern queries.

A :class:`TreePattern` is the paper's *tree pattern query*: a rooted,
unordered tree of typed nodes connected by child (``/``) and descendant
(``//``) edges, with exactly one node carrying the output marker ``*``.

The class supports the exact mutations the minimization algorithms need —
leaf deletion, subtree deletion, augmentation bookkeeping — plus traversal,
copying, canonical forms, and unordered isomorphism testing (used to verify
Theorem 4.1's "unique up to isomorphism").
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from ..errors import InvalidPatternError, OutputNodeError
from .edges import EdgeKind
from .node import PatternNode

__all__ = ["TreePattern", "BuildSpec"]

#: Recursive build specification: ``(type[*], [(edge_symbol, spec), ...])``
#: or just ``"type[*]"`` for a leaf.
BuildSpec = Union[str, tuple]


class TreePattern:
    """A tree pattern query (TPQ).

    Create patterns either imperatively::

        q = TreePattern("Articles")
        art = q.add_child(q.root, "Article", EdgeKind.CHILD, is_output=True)
        q.add_child(art, "Section", EdgeKind.DESCENDANT)

    or declaratively from a nested spec::

        q = TreePattern.build(
            ("Articles", [("/", ("Article*", [("//", "Section")]))])
        )

    The output marker is written by suffixing a type with ``*``; if no node
    carries it, the root is marked (a pattern always has exactly one output
    node).
    """

    def __init__(self, root_type: str, *, root_is_output: bool = False) -> None:
        self._next_id = 0
        self._nodes: dict[int, PatternNode] = {}
        # Bumped on every structural or semantic mutation (node flags,
        # extra types, attach/detach) — see PatternNode's setters. The
        # canonical-key memo in repro.core.fingerprint keys on it.
        self._version = 0
        self._root = self._new_node(root_type, None, is_output=root_is_output)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _new_node(
        self,
        node_type: str,
        edge: Optional[EdgeKind],
        *,
        is_output: bool = False,
        temporary: bool = False,
    ) -> PatternNode:
        node = PatternNode(
            self, self._next_id, node_type, edge, is_output=is_output, temporary=temporary
        )
        self._nodes[node.id] = node
        self._next_id += 1
        return node

    def add_child(
        self,
        parent: PatternNode,
        node_type: str,
        edge: EdgeKind,
        *,
        is_output: bool = False,
        temporary: bool = False,
    ) -> PatternNode:
        """Create and attach a new child of ``parent``; return it."""
        if parent.pattern is not self:
            raise InvalidPatternError("parent node belongs to a different pattern")
        if is_output and self.output_node_or_none() is not None:
            raise OutputNodeError("pattern already has an output node")
        node = self._new_node(node_type, edge, is_output=is_output, temporary=temporary)
        parent._attach_child(node)
        return node

    @classmethod
    def build(cls, spec: BuildSpec) -> "TreePattern":
        """Build a pattern from a nested specification.

        ``spec`` is either ``"Type"`` / ``"Type*"`` (a leaf) or a tuple
        ``("Type[*]", [(edge_symbol, child_spec), ...])`` where
        ``edge_symbol`` is ``"/"`` or ``"//"``.

        If no node is marked with ``*``, the root becomes the output node.
        """
        root_type, star, children = cls._parse_spec(spec)
        pattern = cls(root_type, root_is_output=star)
        for edge_symbol, child_spec in children:
            cls._build_into(pattern, pattern.root, edge_symbol, child_spec)
        if pattern.output_node_or_none() is None:
            pattern.root.is_output = True
        pattern.validate()
        return pattern

    @staticmethod
    def _parse_spec(spec: BuildSpec) -> tuple[str, bool, Sequence]:
        if isinstance(spec, str):
            type_name, children = spec, ()
        elif isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
            type_name, children = spec[0], spec[1]
        else:
            raise InvalidPatternError(f"bad build spec: {spec!r}")
        star = type_name.endswith("*")
        if star:
            type_name = type_name[:-1]
        return type_name, star, children

    @classmethod
    def _build_into(
        cls, pattern: "TreePattern", parent: PatternNode, edge_symbol: str, spec: BuildSpec
    ) -> None:
        node_type, star, children = cls._parse_spec(spec)
        node = pattern.add_child(
            parent, node_type, EdgeKind.from_symbol(edge_symbol), is_output=star
        )
        for child_edge, child_spec in children:
            cls._build_into(pattern, node, child_edge, child_spec)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def root(self) -> PatternNode:
        """The pattern's root node."""
        return self._root

    def node(self, node_id: int) -> PatternNode:
        """Look up a live node by id (``KeyError`` if deleted/unknown)."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        """Whether a node with this id is still part of the pattern."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[PatternNode]:
        """All live nodes in preorder."""
        return self._root.subtree()

    def leaves(self) -> Iterator[PatternNode]:
        """All leaf nodes in preorder."""
        return (n for n in self.nodes() if n.is_leaf)

    def postorder(self) -> Iterator[PatternNode]:
        """All nodes, children before parents (iterative: works on
        patterns deeper than the interpreter recursion limit)."""
        stack: list[tuple[PatternNode, bool]] = [(self._root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                stack.extend((child, False) for child in reversed(node.children))

    @property
    def size(self) -> int:
        """Number of nodes in the pattern (the paper's query size)."""
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        return max(n.depth for n in self.nodes())

    @property
    def max_fanout(self) -> int:
        """Maximum number of children over all nodes."""
        return max(n.fanout for n in self.nodes())

    def output_node_or_none(self) -> Optional[PatternNode]:
        """The ``*`` node, or ``None`` if the pattern has none (only while
        under construction)."""
        for node in self.nodes():
            if node.is_output:
                return node
        return None

    @property
    def output_node(self) -> PatternNode:
        """The unique ``*`` node.

        Raises
        ------
        OutputNodeError
            If the pattern has no output node.
        """
        node = self.output_node_or_none()
        if node is None:
            raise OutputNodeError("pattern has no output (*) node")
        return node

    def node_types(self) -> set[str]:
        """The set of *original* node types occurring in the pattern."""
        return {n.type for n in self.nodes()}

    def find(self, node_type: str) -> list[PatternNode]:
        """All nodes whose original type equals ``node_type``, preorder."""
        return [n for n in self.nodes() if n.type == node_type]

    def is_ancestor(self, a: PatternNode, b: PatternNode) -> bool:
        """Whether ``a`` is a proper ancestor of ``b`` in this pattern."""
        return any(anc is a for anc in b.ancestors())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def delete_leaf(self, node: PatternNode) -> None:
        """Remove a leaf node (the paper's ``Q - [l]``).

        Raises
        ------
        InvalidPatternError
            If ``node`` is not a leaf of this pattern.
        OutputNodeError
            If ``node`` is the output node (never removable).
        """
        if node.pattern is not self or node.id not in self._nodes:
            raise InvalidPatternError("node does not belong to this pattern")
        if not node.is_leaf:
            raise InvalidPatternError(f"node #{node.id} ({node.label()}) is not a leaf")
        if node.is_output:
            raise OutputNodeError("the output (*) node cannot be deleted")
        if node.is_root:
            raise InvalidPatternError("cannot delete the root node")
        node._detach()
        del self._nodes[node.id]

    def delete_subtree(self, node: PatternNode) -> list[PatternNode]:
        """Remove ``node`` and its whole subtree; return removed nodes
        (leaves first, i.e., in a valid elimination ordering).

        Raises
        ------
        OutputNodeError
            If the subtree contains the output node.
        """
        if node.pattern is not self or node.id not in self._nodes:
            raise InvalidPatternError("node does not belong to this pattern")
        if node.is_root:
            raise InvalidPatternError("cannot delete the root's subtree")
        doomed = list(node.subtree())
        if any(n.is_output for n in doomed):
            raise OutputNodeError("subtree contains the output (*) node")
        # Postorder = leaves first, so the returned list is a valid
        # elimination ordering for the removed nodes.
        removed = self._postorder_from(node)
        for n in removed:
            n._children.clear()
        node._detach()
        for n in removed:
            del self._nodes[n.id]
        return removed

    @staticmethod
    def _postorder_from(node: PatternNode) -> list[PatternNode]:
        out: list[PatternNode] = []
        stack: list[tuple[PatternNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if expanded:
                out.append(current)
            else:
                stack.append((current, True))
                stack.extend((child, False) for child in reversed(current.children))
        return out

    def strip_temporaries(self) -> int:
        """Delete every subtree rooted at a temporary node; return the
        number of nodes removed. Used as ACIM's final step."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for node in list(self.nodes()):
                if node.temporary and node.id in self._nodes:
                    removed += len(self.delete_subtree(node))
                    changed = True
                    break
        return removed

    def add_extra_type(self, node: PatternNode, node_type: str) -> None:
        """Associate an additional (co-occurrence) type with ``node``."""
        if node.pattern is not self:
            raise InvalidPatternError("node does not belong to this pattern")
        if node_type != node.type:
            node.extra_types = node.extra_types | {node_type}

    def clear_extra_types(self) -> None:
        """Drop all co-occurrence type annotations (augmentation cleanup)."""
        for node in self.nodes():
            node.extra_types = frozenset()

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def __reduce_ex__(self, protocol):
        """Pickle through the flat array form (:mod:`repro.core.engine_v2`).

        A pattern's natural object graph is cyclic (parent/child links,
        node→pattern backrefs) and recursion-deep for chain queries;
        shipping a :class:`~repro.core.engine_v2.FlatPattern` instead
        keeps batch-worker pickles small and depth-independent. The
        round trip preserves node ids, the id counter, and child
        insertion order, so unpickled patterns behave identically.
        """
        from . import engine_v2  # local import: engine_v2 imports this module

        if engine_v2.flat_pickle_enabled():
            return (
                engine_v2.pattern_from_flat,
                (engine_v2.FlatPattern.from_pattern(self),),
            )
        return super().__reduce_ex__(protocol)

    def copy(self) -> "TreePattern":
        """Deep-copy this pattern, preserving node ids and flags."""
        clone = TreePattern.__new__(TreePattern)
        clone._next_id = self._next_id
        clone._nodes = {}
        clone._version = 0

        def clone_node(node: PatternNode) -> PatternNode:
            new = PatternNode(
                clone,
                node.id,
                node.type,
                node.edge,
                is_output=node.is_output,
                temporary=node.temporary,
            )
            new.extra_types = node.extra_types
            clone._nodes[new.id] = new
            return new

        root_copy = clone_node(self._root)
        stack: list[tuple[PatternNode, PatternNode]] = [(self._root, root_copy)]
        while stack:
            original, twin = stack.pop()
            for child in original.children:
                child_copy = clone_node(child)
                twin._attach_child(child_copy)
                stack.append((child, child_copy))
        clone._root = root_copy
        return clone

    # ------------------------------------------------------------------
    # Validation / canonical form / isomorphism
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check invariants: a single output node, registry consistency.

        Raises the appropriate :class:`~repro.errors.PatternError`.
        """
        seen: list[PatternNode] = list(self.nodes())
        outputs = [n for n in seen if n.is_output]
        if len(outputs) != 1:
            raise OutputNodeError(f"pattern must have exactly one output node, found {len(outputs)}")
        if len(seen) != len(self._nodes):
            raise InvalidPatternError("node registry out of sync with the tree")
        for node in seen:
            if self._nodes.get(node.id) is not node:
                raise InvalidPatternError(f"node #{node.id} not registered correctly")
            if node is not self._root and node.edge is None:
                raise InvalidPatternError(f"non-root node #{node.id} lacks an edge kind")

    def canonical_key(self, node: Optional[PatternNode] = None) -> str:
        """Canonical encoding of the (unordered) subtree at ``node``.

        Two patterns are isomorphic — equal up to sibling order and node
        ids — iff their canonical keys are equal. Temporary flags and
        extra types participate, so augmented patterns compare
        faithfully. The encoding is a flat string (not a nested
        structure) so that very deep patterns can be compared without
        hitting recursion limits.
        """
        if node is None:
            node = self._root
        keys: dict[int, str] = {}
        stack: list[tuple[PatternNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if not expanded:
                stack.append((current, True))
                stack.extend((child, False) for child in current.children)
                continue
            child_keys = sorted(
                f"{child.edge.symbol}{keys[child.id]}" for child in current.children
            )
            extras = ",".join(sorted(current.extra_types))
            flags = ("*" if current.is_output else "") + ("?" if current.temporary else "")
            keys[current.id] = (
                f"{current.type}|{extras}|{flags}({';'.join(child_keys)})"
            )
        return keys[node.id]

    def isomorphic(self, other: "TreePattern") -> bool:
        """Unordered isomorphism test (type-, edge-, and ``*``-preserving)."""
        return self.canonical_key() == other.canonical_key()

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def to_ascii(self) -> str:
        """Multi-line indented rendering, one node per line."""
        lines: list[str] = []
        stack: list[tuple[PatternNode, int]] = [(self._root, 0)]
        while stack:
            node, indent = stack.pop()
            edge = node.edge.symbol if node.edge else ""
            lines.append("  " * indent + f"{edge}{node.label()}")
            stack.extend((child, indent + 1) for child in reversed(node.children))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TreePattern size={self.size} root={self._root.label()}>"

    def __len__(self) -> int:
        return self.size
