"""Naive CIM implementation — the baseline of Section 4's analysis.

The paper derives CIM in two steps: first a *naive* algorithm — after
every deletion, re-test **every** remaining leaf with a fresh images
computation — with worst-case ``O(n^3 · maxImage^2)`` time, and then the
enhanced implementation of Figure 3 (our
:func:`repro.core.cim.cim_minimize`) with the two key improvements:

1. a leaf found non-redundant is never re-tested (redundancy is
   monotone under deletions);
2. the walk up from the tested leaf stops early on an empty images set
   (NO) or a self-image (YES).

This module keeps the naive variant alive for two purposes: an
*ablation benchmark* quantifying what the enhancements buy
(``benchmarks/bench_ablation.py``), and a differential-testing target —
both implementations must produce isomorphic results on every input.
"""

from __future__ import annotations

from .cim import CimResult
from .images import ImagesEngine, ImagesStats
from .node import PatternNode
from .pattern import TreePattern

__all__ = ["cim_minimize_naive"]


def _candidate_leaves(pattern: TreePattern) -> list[PatternNode]:
    return [
        leaf
        for leaf in pattern.leaves()
        if not leaf.is_root and not leaf.is_output and not leaf.temporary
    ]


def cim_minimize_naive(pattern: TreePattern, *, in_place: bool = False) -> CimResult:
    """Minimize by restarting the scan over all leaves after every
    deletion, with no memory of previous NO answers.

    Produces the same minimal query as :func:`~repro.core.cim.cim_minimize`
    (unique up to isomorphism), just slower — quadratically many
    redundancy checks instead of linearly many.
    """
    query = pattern if in_place else pattern.copy()
    result = CimResult(pattern=query, stats=ImagesStats())

    changed = True
    while changed:
        changed = False
        engine = ImagesEngine(query, stats=result.stats)
        for leaf in _candidate_leaves(query):
            if engine.is_redundant_leaf(leaf):
                result.eliminated.append((leaf.id, leaf.type))
                query.delete_leaf(leaf)
                changed = True
                break  # restart the scan from scratch
    return result
