"""Structural fingerprints and isomorphisms of tree patterns.

A *fingerprint* is an order-insensitive canonical hash of a pattern's
structure — node types (original and augmented), edge kinds, the output
marker, and temporary flags. Two patterns carry the same fingerprint iff
they are isomorphic in the sense of Theorem 4.1 ("unique up to
isomorphism"): equal up to sibling order and node-id renaming.

The batch minimization backend (:mod:`repro.batch`) keys its cross-query
memoization cache on fingerprints: a workload's isomorphic queries are
minimized once, and every duplicate is replayed through the node-id
correspondence produced by :func:`isomorphism`.

The correspondence is *document-order canonical*: within a group of
sibling subtrees that are indistinguishable (same edge kind, same
canonical encoding), nodes are paired in sibling insertion order. The
serial minimizers walk candidates in document order and make decisions
from structure alone, so eliminating ``m(v)`` for every ``v`` the
representative run eliminated reproduces the serial result on the
duplicate exactly — not just up to isomorphism (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, Optional

from .node import PatternNode
from .pattern import TreePattern

__all__ = ["fingerprint", "are_isomorphic", "isomorphism", "subtree_keys"]


def subtree_keys(pattern: TreePattern) -> Dict[int, str]:
    """Canonical encoding of every node's (unordered) subtree.

    Same encoding as :meth:`TreePattern.canonical_key`, computed for all
    nodes in one iterative postorder pass; ``subtree_keys(p)[p.root.id]``
    equals ``p.canonical_key()``.

    The table is memoized on the pattern and invalidated by its
    structural version counter (bumped by every mutation — node flags,
    extra types, attach/detach), so repeated fingerprinting of an
    unchanged pattern — the oracle cache's steady state — costs a dict
    lookup. Callers must treat the returned dict as read-only.
    """
    memo = getattr(pattern, "_subtree_keys_memo", None)
    version = pattern._version
    if memo is not None and memo[0] == version:
        return memo[1]
    keys: Dict[int, str] = {}
    stack: list[tuple[PatternNode, bool]] = [(pattern.root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        child_keys = sorted(
            f"{child.edge.symbol}{keys[child.id]}" for child in node.children
        )
        extras = ",".join(sorted(node.extra_types))
        flags = ("*" if node.is_output else "") + ("?" if node.temporary else "")
        keys[node.id] = f"{node.type}|{extras}|{flags}({';'.join(child_keys)})"
    pattern._subtree_keys_memo = (version, keys)
    return keys


def fingerprint(pattern: TreePattern) -> str:
    """A 64-hex-digit structural hash of ``pattern``.

    Order-insensitive and id-insensitive: isomorphic patterns (shuffled
    sibling order, remapped node ids) collide by construction, and — up
    to SHA-256 collisions — fingerprint equality implies
    :func:`are_isomorphic`.
    """
    key = subtree_keys(pattern)[pattern.root.id]
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def are_isomorphic(a: TreePattern, b: TreePattern) -> bool:
    """Exact unordered-isomorphism check (no hashing involved)."""
    return subtree_keys(a)[a.root.id] == subtree_keys(b)[b.root.id]


def isomorphism(
    a: TreePattern,
    b: TreePattern,
    *,
    keys_a: Optional[Dict[int, str]] = None,
    keys_b: Optional[Dict[int, str]] = None,
) -> Optional[Dict[int, int]]:
    """A concrete isomorphism ``a`` → ``b`` as a node-id mapping, or
    ``None`` when the patterns are not isomorphic.

    The mapping is deterministic and document-order canonical: siblings
    whose subtrees have identical canonical encodings are paired in
    insertion order on both sides. This is the property the memoization
    replay in :mod:`repro.batch` relies on.

    ``keys_a``/``keys_b`` accept precomputed :func:`subtree_keys` tables
    (they dominate the cost of this function); the oracle cache passes
    the tables it already computed for fingerprinting.
    """
    if keys_a is None:
        keys_a = subtree_keys(a)
    if keys_b is None:
        keys_b = subtree_keys(b)
    if keys_a[a.root.id] != keys_b[b.root.id]:
        return None

    mapping: Dict[int, int] = {}
    stack: list[tuple[PatternNode, PatternNode]] = [(a.root, b.root)]
    while stack:
        va, vb = stack.pop()
        mapping[va.id] = vb.id
        # Group b's children by (edge, canonical key); a's children drain
        # each group in insertion order. Equal root keys guarantee the
        # groups have matching cardinalities.
        groups: Dict[tuple[object, str], deque[PatternNode]] = {}
        for cb in vb.children:
            groups.setdefault((cb.edge, keys_b[cb.id]), deque()).append(cb)
        for ca in va.children:
            bucket = groups.get((ca.edge, keys_a[ca.id]))
            if not bucket:  # pragma: no cover - unreachable for equal keys
                return None
            stack.append((ca, bucket.popleft()))
    return mapping
