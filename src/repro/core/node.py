"""Pattern node objects.

A :class:`PatternNode` is one node of a :class:`~repro.core.pattern.TreePattern`:
it carries a *type* (element/entry type name), the kind of edge connecting
it to its parent, the optional output marker ``*``, and bookkeeping used by
the minimization algorithms (temporary/augmented status, extra co-occurrence
types).

Nodes are created through :meth:`TreePattern.add_child` /
:meth:`TreePattern.make_root` rather than directly, so that every node is
registered with its owning pattern and receives a pattern-unique id.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from ..errors import InvalidPatternError
from .edges import EdgeKind

if TYPE_CHECKING:  # pragma: no cover
    from .pattern import TreePattern

__all__ = ["PatternNode"]


class PatternNode:
    """One node of a tree pattern query.

    Attributes
    ----------
    id:
        Integer identifier, unique within the owning pattern and stable
    type:
        The node's (original) type, e.g. ``"Book"``.
    edge:
        The :class:`EdgeKind` of the edge to the parent; ``None`` for the
        root.
    is_output:
        Whether this node carries the ``*`` output marker. Exactly one node
        per pattern does.
    temporary:
        True for nodes materialized by augmentation (Section 5.2 of the
        paper); such nodes are never candidates for redundancy checks and
        are stripped after minimization.
    extra_types:
        Additional types associated with the node by co-occurrence
        augmentation. :attr:`all_types` is ``{type} | extra_types``.
    """

    __slots__ = (
        "id",
        "type",
        "edge",
        "_is_output",
        "_temporary",
        "_extra_types",
        "_parent",
        "_children",
        "_pattern",
    )

    def __init__(
        self,
        pattern: "TreePattern",
        node_id: int,
        node_type: str,
        edge: Optional[EdgeKind],
        *,
        is_output: bool = False,
        temporary: bool = False,
    ) -> None:
        if not node_type:
            raise InvalidPatternError("node type must be a non-empty string")
        self.id = node_id
        self.type = node_type
        self.edge = edge
        self._is_output = is_output
        self._temporary = temporary
        self._extra_types: frozenset[str] = frozenset()
        self._parent: Optional[PatternNode] = None
        self._children: list[PatternNode] = []
        self._pattern = pattern

    # ------------------------------------------------------------------
    # Semantic attributes
    #
    # Plain attributes to callers, but writes go through setters that
    # bump the owning pattern's structural version — the invalidation
    # signal for the canonical-key memo of repro.core.fingerprint.
    # ------------------------------------------------------------------

    @property
    def is_output(self) -> bool:
        """Whether this node carries the ``*`` output marker."""
        return self._is_output

    @is_output.setter
    def is_output(self, value: bool) -> None:
        self._is_output = value
        self._pattern._version += 1

    @property
    def temporary(self) -> bool:
        """True for nodes materialized by augmentation."""
        return self._temporary

    @temporary.setter
    def temporary(self, value: bool) -> None:
        self._temporary = value
        self._pattern._version += 1

    @property
    def extra_types(self) -> frozenset[str]:
        """Co-occurrence types associated by augmentation."""
        return self._extra_types

    @extra_types.setter
    def extra_types(self, value: frozenset[str]) -> None:
        self._extra_types = value
        self._pattern._version += 1

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def pattern(self) -> "TreePattern":
        """The pattern owning this node."""
        return self._pattern

    @property
    def parent(self) -> Optional["PatternNode"]:
        """The parent node, or ``None`` for the root."""
        return self._parent

    @property
    def children(self) -> tuple["PatternNode", ...]:
        """The node's children (both c- and d-children), in insertion order."""
        return tuple(self._children)

    @property
    def is_root(self) -> bool:
        """True when this node has no parent."""
        return self._parent is None

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children."""
        return not self._children

    @property
    def all_types(self) -> frozenset[str]:
        """Original type plus any co-occurrence (augmented) types."""
        if not self.extra_types:
            return frozenset((self.type,))
        return self.extra_types | {self.type}

    def has_type(self, node_type: str) -> bool:
        """Whether ``node_type`` is among this node's associated types."""
        return node_type == self.type or node_type in self.extra_types

    def c_children(self) -> Iterator["PatternNode"]:
        """Iterate over children attached by child (c-) edges."""
        return (c for c in self._children if c.edge is EdgeKind.CHILD)

    def d_children(self) -> Iterator["PatternNode"]:
        """Iterate over children attached by descendant (d-) edges."""
        return (c for c in self._children if c.edge is EdgeKind.DESCENDANT)

    def ancestors(self) -> Iterator["PatternNode"]:
        """Iterate over proper ancestors, nearest (parent) first."""
        node = self._parent
        while node is not None:
            yield node
            node = node._parent

    def descendants(self) -> Iterator["PatternNode"]:
        """Iterate over proper descendants in preorder."""
        stack = list(reversed(self._children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def subtree(self) -> Iterator["PatternNode"]:
        """Iterate over this node and its descendants in preorder."""
        yield self
        yield from self.descendants()

    def path_from_root(self) -> tuple["PatternNode", ...]:
        """The root-to-this-node path, inclusive."""
        return tuple(reversed([self, *self.ancestors()]))

    @property
    def depth(self) -> int:
        """Edge distance from the root (root has depth 0)."""
        return sum(1 for _ in self.ancestors())

    @property
    def fanout(self) -> int:
        """Number of children."""
        return len(self._children)

    # ------------------------------------------------------------------
    # Internal mutation hooks (used by TreePattern only)
    # ------------------------------------------------------------------

    def _attach_child(self, child: "PatternNode") -> None:
        if child._parent is not None:
            raise InvalidPatternError(
                f"node {child.id} already has a parent; cannot attach twice"
            )
        child._parent = self
        self._children.append(child)
        self._pattern._version += 1

    def _detach(self) -> None:
        if self._parent is None:
            raise InvalidPatternError("cannot detach the root node")
        self._parent._children.remove(self)
        self._parent = None
        self._pattern._version += 1

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def label(self) -> str:
        """Human-readable label: type, marker, and temporary flag."""
        star = "*" if self.is_output else ""
        tmp = "?" if self.temporary else ""
        extra = ""
        if self.extra_types:
            extra = "+" + "+".join(sorted(self.extra_types))
        return f"{self.type}{extra}{star}{tmp}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        edge = self.edge.symbol if self.edge else "^"
        return f"<PatternNode #{self.id} {edge}{self.label()}>"
