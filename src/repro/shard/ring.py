"""Consistent-hash ring over structural fingerprints.

The sharded serving tier routes every request by the consistent hash of
its structural fingerprint (:func:`repro.core.fingerprint.fingerprint`),
so isomorphic queries — the ones the fingerprint replay memo and the
containment-oracle cache exist for — always land on the shard that
already memoized their structure.

A plain ``hash(fp) % n`` would do that too, but the ring's point is
*stability under membership change*: when a shard drains for a rolling
restart (or dies under chaos), only the keys in its arcs move, and they
move to the arcs' ring successors — every other fingerprint keeps its
shard, so the fleet-wide cache hit rate degrades by roughly ``1/n``
instead of collapsing to zero the way a modulus rehash would.

Determinism matters as much as balance here: member positions derive
from SHA-256 of ``"shard:{member}:{replica}"`` — no process-seeded
``hash()``, so a front-end restart (or a differential test) reproduces
the exact same routing.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

__all__ = ["HashRing"]

#: Virtual nodes per member. 64 arcs per shard keeps the max/mean key
#: imbalance under ~20% for small fleets while membership changes stay
#: O(replicas log n).
DEFAULT_REPLICAS = 64


def _position(token: str) -> int:
    """A point on the ring (the first 16 hex digits of SHA-256)."""
    return int(hashlib.sha256(token.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """A deterministic consistent-hash ring of integer shard ids.

    ``lookup(key)`` maps any string key (a fingerprint) to the member
    owning the first ring position at or after the key's hash. Members
    are added/removed in O(replicas log n); lookups are one bisect.
    """

    def __init__(
        self, members: Iterable[int] = (), *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._members: set[int] = set()
        self._positions: list[int] = []  # sorted ring positions
        self._owners: list[int] = []  # owner member per position
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: int) -> bool:
        return member in self._members

    @property
    def members(self) -> "frozenset[int]":
        """The current member set (live, non-draining shards)."""
        return frozenset(self._members)

    def add(self, member: int) -> None:
        """Join ``member`` (idempotent); only its arcs change owners."""
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self.replicas):
            position = _position(f"shard:{member}:{replica}")
            index = bisect.bisect_left(self._positions, position)
            # Ties are broken toward the smaller member id so insertion
            # order never influences routing.
            while (
                index < len(self._positions)
                and self._positions[index] == position
                and self._owners[index] < member
            ):
                index += 1
            self._positions.insert(index, position)
            self._owners.insert(index, member)

    def remove(self, member: int) -> None:
        """Leave ``member`` (idempotent); its arcs fall to successors."""
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [i for i, owner in enumerate(self._owners) if owner != member]
        self._positions = [self._positions[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def lookup(self, key: str) -> Optional[int]:
        """The member owning ``key``; ``None`` when the ring is empty."""
        if not self._positions:
            return None
        index = bisect.bisect_right(self._positions, _position(key))
        if index == len(self._positions):
            index = 0  # wrap around
        return self._owners[index]
