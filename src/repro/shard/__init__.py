"""Sharded multi-process serving tier with fingerprint-affinity routing.

The single-process :class:`~repro.service.MinimizationService` is bound
by one interpreter: past one core's worth of minimization work, its
queue is the ceiling. This package scales it out without giving up the
cache effects everything else is built on:

* :class:`HashRing` — a deterministic consistent-hash ring mapping
  structural fingerprints to shards (membership changes move only the
  affected arcs, so restarts cost ~1/n of the fleet hit rate, not all
  of it);
* :func:`shard_worker_main` / :class:`ShardWorkerConfig` — the worker
  process serving micro-batched requests from one full
  :class:`~repro.api.Session`;
* :class:`ShardManager` — the asyncio front-end: affinity routing with
  load-aware overflow, aggregated backpressure, deadline propagation,
  rolling restarts with warm replay, and shard-kill chaos recovery. It
  duck-types the single-process service, so the JSON-lines protocol
  and ``repro-serve`` (``--shards N``) drive it unchanged.

:func:`resolve_shards` maps user-facing ``--shards`` values (including
``"auto"``) to a worker count, returning 0 when sharding would not
help — callers then run the plain single-process service instead.
"""

from .manager import SHARD_POLICIES, ShardManager, resolve_shards
from .ring import HashRing
from .worker import ShardWorkerConfig, shard_worker_main

__all__ = [
    "SHARD_POLICIES",
    "HashRing",
    "ShardManager",
    "ShardWorkerConfig",
    "resolve_shards",
    "shard_worker_main",
]
