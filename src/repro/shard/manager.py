"""The sharded serving tier: N worker processes behind one async front-end.

:class:`ShardManager` converts the single-process serving ceiling into
hardware-limited throughput without sacrificing the per-query cache wins
the earlier layers built. Each shard is a child process owning a full
:class:`~repro.api.Session` (constraint closure, fingerprint replay
memo, containment-oracle cache, optionally its own warm pool); the
front-end routes every request by **consistent-hashing its structural
fingerprint** onto a :class:`~repro.shard.ring.HashRing`, so isomorphic
queries always land on the shard that already replayed their
elimination — the one scaling strategy that multiplies throughput by
core count *and* preserves memo/oracle hit rates.

Routing policies (``policy=``):

* ``"affinity"`` — strict ring routing; a query's fingerprint fully
  determines its shard.
* ``"overflow"`` (default) — affinity, but a hot shard past
  ``spill_threshold`` queued requests spills **cache-miss-only**
  traffic (fingerprints the shard has never seen) to the least-loaded
  shard. Repeat structures stay on their memoized shard even under
  load, because moving them would trade a ~free replay for a full
  recomputation elsewhere.
* ``"round-robin"`` — ignore fingerprints entirely. Exists as the
  benchmark baseline that shows what affinity buys: round-robin
  scatters isomorphic queries across shards and divides the fleet hit
  rate accordingly.

Operational behaviors:

* **backpressure** — per-shard pending bounds (``max_queue`` split
  across shards) aggregate into one coherent
  :class:`~repro.errors.ServiceOverloadedError` whose ``retry_after``
  estimates when the least-loaded shard will next have capacity;
* **deadline propagation** — each request's remaining budget travels
  to its shard, which sheds expired work before minimizing (the same
  shed-early contract as the single-process service), and the
  front-end sheds before dispatch when the budget is already gone;
* **rolling restart** — :meth:`rolling_restart` drains one shard at a
  time (the ring redistributes its range), restarts it, replays its
  hottest fingerprints to re-warm the new process, and rejoins it —
  the fleet keeps serving throughout;
* **shard-kill chaos** — the ``shard.kill`` fault point
  (:mod:`repro.resilience.faults`) SIGKILLs the routed shard at
  planned dispatch hits; the manager detects the death, respawns the
  shard, and requeues every request that was pending on it
  (``chunks_retried``), so results stay byte-identical to the serial
  loop;
* **a breaker per shard** — a shard that keeps dying is routed around
  (its :class:`~repro.resilience.client.CircuitBreaker` opens) until
  its cooldown lets a probe through;
* **sampled certification audit** — each shard worker re-verifies
  1-in-``audit_rate`` of its served answers off the reply path
  (:class:`~repro.shard.worker._SampledAuditor`); a failed audit
  quarantines the offending memo/store record, the next request for
  that fingerprint recomputes cold, and the fresh record spools back
  here — the single writer — overwriting the bad row, so the shared
  store self-heals. ``audited`` / ``audit_failures`` /
  ``quarantined_records`` aggregate fleet-wide in :meth:`counters`;
* **live constraint churn** — :meth:`update_constraints` stages the
  update manager-side, swaps the boot constraints (so respawns come up
  post-churn), fans ``("constraints", id, add, drop)`` out to every
  shard, digest-checks each ack, and bumps ``constraint_epoch`` only
  once the whole fleet has switched — no worker serves a stale-closure
  answer to requests submitted after the epoch bump.

The manager duck-types :class:`~repro.service.MinimizationService`
(``submit``/``stats``/``counters``/``fault_events``/``injector``), so
the JSON-lines protocol and ``repro-serve`` multiplex over it
unchanged — ``repro-serve --shards N`` is the only switch.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import queue as queue_module
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from ..api import MinimizeOptions, QueryResult, _coerce_constraint_list
from ..constraints.closure import closure
from ..constraints.repository import coerce_repository
from ..core.fingerprint import fingerprint
from ..core.pattern import TreePattern
from ..errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from ..resilience.client import CircuitBreaker
from ..resilience.faults import FaultInjector
from ..service.service import ServiceStats
from .ring import HashRing
from .worker import ShardWorkerConfig, shard_worker_main

__all__ = ["SHARD_POLICIES", "ShardManager", "resolve_shards"]

#: Routing policies understood by :class:`ShardManager`.
SHARD_POLICIES = ("affinity", "overflow", "round-robin")

#: Sentinel telling a shard's sender thread to exit.
_SENDER_STOP = object()


def resolve_shards(value, *, cpu_count: Optional[int] = None) -> int:
    """Resolve a ``--shards`` argument to a worker-process count.

    ``"auto"`` means one shard per core **minus one for the front-end**
    (the asyncio router is itself CPU-bound on fingerprinting and
    framing). Returns ``0`` — "don't shard, use the single-process
    service" — for ``None``/``0``/``1`` and whenever auto resolution
    would yield fewer than two shards: a 1-shard manager is a strictly
    worse single-process service (same serialization, extra hop), so
    one-core machines degrade to :class:`~repro.service.MinimizationService`
    instead of a 1-shard wrapper.
    """
    if value is None:
        return 0
    if value == "auto":
        cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        resolved = cores - 1
        return resolved if resolved >= 2 else 0
    count = int(value)
    if count < 0:
        raise ValueError(f"shards must be >= 0 or 'auto', got {count}")
    return 0 if count <= 1 else count


@dataclass
class _ShardRequest:
    """One in-flight request at the front-end."""

    kind: str  # "minimize" | "stats" | "ping" | "shutdown"
    future: "asyncio.Future"
    pattern: Optional[TreePattern] = None
    fingerprint: Optional[str] = None
    enqueued_at: float = 0.0
    deadline_at: Optional[float] = None
    #: Dispatch attempts so far (bumped when a shard death requeues it).
    attempts: int = 0
    #: Internal warm-up replay after a restart: excluded from stats.
    warm: bool = False


class _LruSet:
    """A bounded set with least-recently-added/touched eviction.

    Backs :attr:`_ShardHandle.seen_fps`: an unbounded set there leaks
    one entry per distinct fingerprint for the life of the manager. The
    bound is safe because membership only steers the overflow policy —
    a forgotten fingerprint merely lets an old structure spill to a
    less-loaded shard, never changes any result.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, None]" = OrderedDict()

    def add(self, value: str) -> None:
        self._entries[value] = None
        self._entries.move_to_end(value)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, value: object) -> bool:
        return value in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class _ShardHandle:
    """Front-end state for one shard: process, pipe, threads, routing."""

    def __init__(self, index: int, seen_fps_cap: int = 4096) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.sender_queue: "queue_module.Queue" = queue_module.Queue()
        self.sender_thread: Optional[threading.Thread] = None
        self.reader_thread: Optional[threading.Thread] = None
        #: request_id -> _ShardRequest awaiting this shard's response.
        self.pending: "dict[int, _ShardRequest]" = {}
        #: Fingerprints this shard has been routed (≈ its memo contents),
        #: LRU-bounded so a long-running manager cannot leak one entry
        #: per distinct structure forever.
        self.seen_fps: _LruSet = _LruSet(seen_fps_cap)
        #: fingerprint -> exemplar pattern, LRU-bounded; replayed to
        #: re-warm the shard after a planned restart.
        self.exemplars: "OrderedDict[str, TreePattern]" = OrderedDict()
        self.breaker = CircuitBreaker(failure_threshold=3, cooldown=0.25)
        #: EWMA of per-request e2e seconds served by this shard.
        self.ewma_seconds = 0.01
        self.live = False
        self.draining = False
        #: Planned stop in progress: EOF is expected, not a death.
        self.shutting_down = False
        #: Bumped on every (re)spawn so stale thread callbacks no-op.
        self.generation = 0

    @property
    def pending_minimize(self) -> int:
        return sum(1 for r in self.pending.values() if r.kind == "minimize")

    def routable(self) -> bool:
        return self.live and not self.draining and self.breaker.state != "open"


class ShardManager:
    """Async front-end over N shard worker processes.

    Parameters
    ----------
    options:
        Session configuration for every shard. The fault plan (if any)
        stays at the front-end — it arms ``shard.kill`` and the
        protocol-level points; worker processes run without injection
        so the fleet's fired-fault log lives in one place.
    constraints:
        The integrity constraints every request is minimized under.
    shards:
        Worker-process count (>= 1; use :func:`resolve_shards` to map
        user input, which returns 0 to mean "don't shard at all").
    policy:
        One of :data:`SHARD_POLICIES` (default ``"overflow"``).
    max_batch_size:
        Per-shard micro-batch bound (the worker drains its pipe up to
        this many requests per ``minimize_many`` burst).
    max_queue:
        Fleet-wide pending bound, split evenly across shards; a full
        fleet rejects with :class:`~repro.errors.ServiceOverloadedError`.
    spill_threshold:
        Queue depth past which the ``overflow`` policy spills
        cache-miss-only traffic off a hot shard.
    default_timeout:
        Per-request timeout used when :meth:`submit` is not given one.
    exemplar_cap:
        Hottest-fingerprint exemplars kept per shard for post-restart
        warm replay.
    seen_fps_cap:
        Bound on the per-shard routed-fingerprint set that steers the
        overflow policy (LRU-evicted beyond it).
    """

    def __init__(
        self,
        options: Optional[MinimizeOptions] = None,
        *,
        constraints=None,
        shards: int = 2,
        policy: str = "overflow",
        max_batch_size: int = 16,
        max_queue: int = 256,
        spill_threshold: int = 8,
        default_timeout: Optional[float] = None,
        exemplar_cap: int = 128,
        seen_fps_cap: int = 4096,
        max_dispatch_attempts: int = 4,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {policy!r} (expected one of {SHARD_POLICIES})"
            )
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_queue < shards:
            raise ValueError(
                f"max_queue must be >= shards ({shards}), got {max_queue}"
            )
        if spill_threshold < 1:
            raise ValueError(f"spill_threshold must be >= 1, got {spill_threshold}")
        options = options if options is not None else MinimizeOptions()
        if options.jobs != 1 and not options.persistent_pool:
            options = options.with_overrides(persistent_pool=True)
        self.options = options
        self.constraints = constraints
        self.n_shards = shards
        self.policy = policy
        self.max_batch_size = max_batch_size
        self.max_queue = max_queue
        self.max_pending_per_shard = max(1, max_queue // shards)
        self.spill_threshold = spill_threshold
        self.default_timeout = default_timeout
        self.exemplar_cap = exemplar_cap
        if seen_fps_cap < 1:
            raise ValueError(f"seen_fps_cap must be >= 1, got {seen_fps_cap}")
        self.seen_fps_cap = seen_fps_cap
        self.max_dispatch_attempts = max_dispatch_attempts
        #: Front-end (end-to-end) counters, in the service's own shape.
        self.stats = ServiceStats()
        #: Chaos/fault-replay injector (``None`` without a fault plan);
        #: arms ``shard.kill`` here and ``protocol.send`` in the
        #: protocol layer.
        self.injector: Optional[FaultInjector] = (
            FaultInjector(options.fault_plan)
            if options.fault_plan is not None and options.fault_plan
            else None
        )
        # Shards run their sessions *without* the plan: the front-end
        # owns chaos, so the whole fleet reports one fired-fault log.
        # They also run without store_path: the manager is the store's
        # single writer (DESIGN.md §9); workers get the path through
        # ShardWorkerConfig.store_path and open it read-only.
        self._worker_options = options.with_overrides(
            fault_plan=None, store_path=None
        )
        #: The fleet's persistent store (single writable handle); shard
        #: workers read the same file and spool their writes back here.
        self.store = None
        if options.store_path is not None:
            from ..store import PersistentStore

            self.store = PersistentStore(
                options.store_path, injector=self.injector
            )
        #: Monotone fleet-wide constraint epoch: bumped once after every
        #: shard has acked a live IC update, so ``constraint_epoch`` in
        #: the counters proves no worker can still serve a stale-closure
        #: answer for requests submitted after the bump.
        self.constraint_epoch = 0
        # Shard-tier counters (the manager's own, merged into counters()).
        self.shard_restarts = 0
        self.chunks_retried = 0
        self.routed_affinity = 0
        self.routed_overflow = 0
        self.routed_round_robin = 0
        self.parked_total = 0
        self._handles = [_ShardHandle(i, seen_fps_cap) for i in range(shards)]
        self._ring = HashRing()
        self._rr_next = 0
        self._request_seq = 0
        self._parked: "list[_ShardRequest]" = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = False
        self._closing = False
        self._restart_lock: Optional[asyncio.Lock] = None
        self._mp_context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        self._last_worker_stats: "list[ServiceStats]" = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ShardManager":
        """Spawn every shard process (idempotent)."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._restart_lock = asyncio.Lock()
        for handle in self._handles:
            self._spawn(handle)
        self._started = True
        return self

    async def aclose(self) -> None:
        """Graceful drain: finish in-flight work, stop every shard."""
        if self._closing:
            return
        self._closing = True
        if not self._started:
            if self.store is not None:
                self.store.close()
            return
        # Let queued work finish (bounded: a hung shard must not hang
        # shutdown forever).
        deadline = time.perf_counter() + 30.0
        while (
            any(h.pending_minimize for h in self._handles)
            and time.perf_counter() < deadline
        ):
            await asyncio.sleep(0.005)
        for handle in self._handles:
            await self._stop_shard(handle)
        leftovers = self._parked + [
            r for h in self._handles for r in h.pending.values()
        ]
        self._parked = []
        for request in leftovers:
            if not request.future.done():
                request.future.set_exception(
                    ServiceClosedError("shard manager closed")
                )
        if self.store is not None:
            self.store.close()

    async def __aenter__(self) -> "ShardManager":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Spawn / stop / death plumbing
    # ------------------------------------------------------------------

    def _spawn(self, handle: _ShardHandle) -> None:
        """(Re)start one shard: process, pipe, sender+reader threads."""
        parent_conn, child_conn = self._mp_context.Pipe(duplex=True)
        config = ShardWorkerConfig(
            index=handle.index,
            options=self._worker_options,
            constraints=self.constraints,
            max_batch_size=self.max_batch_size,
            store_path=self.options.store_path,
        )
        process = self._mp_context.Process(
            target=shard_worker_main,
            args=(child_conn, config),
            name=f"repro-shard-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.generation += 1
        handle.sender_queue = queue_module.Queue()
        handle.shutting_down = False
        handle.live = True
        generation = handle.generation
        handle.sender_thread = threading.Thread(
            target=self._sender_loop,
            args=(handle, parent_conn, handle.sender_queue, generation),
            name=f"repro-shard-{handle.index}-sender",
            daemon=True,
        )
        handle.reader_thread = threading.Thread(
            target=self._reader_loop,
            args=(handle, parent_conn, generation),
            name=f"repro-shard-{handle.index}-reader",
            daemon=True,
        )
        handle.sender_thread.start()
        handle.reader_thread.start()
        self._ring.add(handle.index)

    def _sender_loop(self, handle, conn, send_queue, generation) -> None:
        """Per-shard sender thread: serialize pipe writes off the loop.

        ``Connection.send`` can block when the pipe buffer fills under
        burst load; doing it here keeps the event loop free to accept
        and route. A failed send means the shard is gone — the death
        handler (scheduled once) requeues everything pending.
        """
        broken = False
        while True:
            message = send_queue.get()
            if message is _SENDER_STOP:
                return
            if broken:
                continue  # death already scheduled; drain and drop
            try:
                conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                broken = True
                self._schedule(self._on_shard_death, handle, generation)

    def _reader_loop(self, handle, conn, generation) -> None:
        """Per-shard reader thread: pump responses onto the event loop."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._schedule(self._on_shard_death, handle, generation)
                return
            self._schedule(self._on_message, handle, generation, message)

    def _schedule(self, callback, *args) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:  # loop already closed (interpreter exit)
            pass

    async def _stop_shard(self, handle: _ShardHandle) -> None:
        """Planned stop: shutdown handshake, then join (bounded)."""
        if not handle.live:
            return
        handle.shutting_down = True
        handle.live = False
        self._ring.remove(handle.index)
        request = _ShardRequest(
            kind="shutdown", future=self._new_future(), warm=True
        )
        self._dispatch_control(handle, request)
        try:
            await asyncio.wait_for(asyncio.shield(request.future), 5.0)
        except Exception:  # noqa: BLE001 - worker hung or gone: terminate below
            pass
        handle.sender_queue.put(_SENDER_STOP)
        process = handle.process
        if process is not None:
            await asyncio.to_thread(process.join, 2.0)
            if process.is_alive():
                process.terminate()
                await asyncio.to_thread(process.join, 2.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass

    def _on_shard_death(self, handle: _ShardHandle, generation: int) -> None:
        """An unplanned shard exit (crash, SIGKILL chaos, broken pipe):
        respawn it and requeue everything that was pending on it."""
        if handle.generation != generation or handle.shutting_down:
            return
        if not handle.live:
            return
        handle.live = False
        self._ring.remove(handle.index)
        handle.breaker.record_failure()
        handle.seen_fps.clear()  # the new process boots cold
        handle.sender_queue.put(_SENDER_STOP)
        orphans = list(handle.pending.values())
        handle.pending.clear()
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        process = handle.process
        if process is not None:
            process.join(timeout=0.5)
        if self._closing:
            for request in orphans:
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosedError("shard manager closed")
                    )
            return
        self._spawn(handle)
        self.shard_restarts += 1
        # Requeue lost work through normal routing (minimization is
        # pure, so a re-run is byte-identical); control requests fail
        # fast — their callers re-ask a live fleet.
        for request in orphans:
            if request.future.done():
                continue
            if request.kind != "minimize":
                request.future.set_exception(
                    ServiceError(f"shard {handle.index} died mid-request")
                )
                continue
            request.attempts += 1
            if request.attempts >= self.max_dispatch_attempts:
                request.future.set_exception(
                    ServiceUnavailableError(
                        "request lost to repeated shard deaths",
                        attempts=request.attempts,
                    )
                )
                continue
            self.chunks_retried += 1
            self._route_and_dispatch(request)
        self._drain_parked()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    async def submit(
        self,
        pattern: TreePattern,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Minimize one query through the fleet; awaits the result.

        Same contract as :meth:`repro.service.MinimizationService.submit`
        (timeouts, deadlines, shedding, backpressure) — plus routing:
        the request lands on the shard owning its structural
        fingerprint unless overflow or restarts say otherwise.
        """
        if self._closing or not self._started:
            raise ServiceClosedError(
                "shard manager is closed" if self._closing else "shard manager not started"
            )
        now = time.perf_counter()
        deadline_at: Optional[float] = None
        if deadline is not None:
            if deadline <= 0:
                self.stats.sheds += 1
                raise DeadlineExceededError(
                    f"deadline of {deadline}s already elapsed at submission; "
                    "request shed"
                )
            deadline_at = now + deadline
        request = _ShardRequest(
            kind="minimize",
            future=self._new_future(),
            pattern=pattern,
            fingerprint=fingerprint(pattern),
            enqueued_at=now,
            deadline_at=deadline_at,
        )
        self._route_and_dispatch(request)  # raises Overloaded on a full fleet
        self.stats.submitted += 1
        depth = sum(h.pending_minimize for h in self._handles) + len(self._parked)
        if depth > self.stats.queue_high_watermark:
            self.stats.queue_high_watermark = depth
        timeout = timeout if timeout is not None else self.default_timeout
        wait = timeout
        if deadline is not None:
            wait = deadline if wait is None else min(wait, deadline)
        try:
            if wait is None:
                return await request.future
            return await asyncio.wait_for(request.future, wait)
        except asyncio.TimeoutError:
            self.stats.timed_out += 1
            if deadline is not None and (timeout is None or deadline <= timeout):
                raise DeadlineExceededError(
                    f"deadline of {deadline}s elapsed awaiting the result"
                ) from None
            raise
        except asyncio.CancelledError:
            if not request.future.done():
                request.future.cancel()
            self.stats.cancelled += 1
            raise

    async def submit_many(
        self,
        patterns: Sequence[TreePattern],
        *,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> "list[QueryResult]":
        """Submit a group concurrently; results in input order."""
        return list(
            await asyncio.gather(
                *(self.submit(p, timeout=timeout, deadline=deadline) for p in patterns)
            )
        )

    def _new_future(self) -> "asyncio.Future":
        assert self._loop is not None, "manager not started"
        return self._loop.create_future()

    def _next_id(self) -> int:
        self._request_seq += 1
        return self._request_seq

    def _route_and_dispatch(self, request: _ShardRequest) -> None:
        """Pick a shard for ``request`` and send it (or park it when no
        shard is routable — a mid-restart lull, not an error)."""
        live = [h for h in self._handles if h.routable()]
        if not live:
            self._parked.append(request)
            self.parked_total += 1
            return
        handle = self._pick(request, live)
        self._dispatch(handle, request)

    def _pick(self, request: _ShardRequest, live: "list[_ShardHandle]") -> _ShardHandle:
        if self.policy == "round-robin":
            handle = live[self._rr_next % len(live)]
            self._rr_next += 1
            self.routed_round_robin += 1
            return self._bounded(handle, live)
        owner = self._ring.lookup(request.fingerprint or "")
        primary = next((h for h in live if h.index == owner), None)
        if primary is None:  # ring/membership race: fall back to load
            primary = min(live, key=lambda h: h.pending_minimize)
        target = primary
        if (
            self.policy == "overflow"
            and primary.pending_minimize >= self.spill_threshold
            and (request.fingerprint or "") not in primary.seen_fps
        ):
            # Hot shard + never-seen structure: no memo to lose by
            # spilling, so take the shortest queue instead.
            target = min(live, key=lambda h: h.pending_minimize)
        if target is primary:
            self.routed_affinity += 1
        else:
            self.routed_overflow += 1
        return self._bounded(target, live)

    def _bounded(self, target: _ShardHandle, live: "list[_ShardHandle]") -> _ShardHandle:
        """Apply per-shard pending bounds; reject when the fleet is full."""
        if target.pending_minimize < self.max_pending_per_shard:
            return target
        fallback = min(live, key=lambda h: h.pending_minimize)
        if fallback.pending_minimize < self.max_pending_per_shard:
            if fallback is not target:
                self.routed_overflow += 1
            return fallback
        self.stats.rejected += 1
        raise ServiceOverloadedError(
            f"all {len(live)} shard queues full "
            f"({self.max_pending_per_shard} pending each)",
            retry_after=self._retry_after(live),
        )

    def _retry_after(self, live: "list[_ShardHandle]") -> float:
        """One coherent fleet-wide back-off: the estimated time until
        the least-loaded shard drains one slot of its queue."""
        best = min(
            (h.pending_minimize * max(h.ewma_seconds, 1e-3) for h in live),
            default=0.05,
        )
        return round(max(best, 1e-3), 4)

    def _dispatch(self, handle: _ShardHandle, request: _ShardRequest) -> None:
        request_id = self._next_id()
        handle.pending[request_id] = request
        if request.fingerprint is not None:
            handle.seen_fps.add(request.fingerprint)
            exemplars = handle.exemplars
            exemplars[request.fingerprint] = request.pattern
            exemplars.move_to_end(request.fingerprint)
            while len(exemplars) > self.exemplar_cap:
                exemplars.popitem(last=False)
        if self.injector is not None and request.kind == "minimize" and not request.warm:
            fault = self.injector.draw("shard.kill")
            if fault is not None and fault.kind == "kill":
                self._kill_shard(handle)
        budget = None
        if request.deadline_at is not None:
            budget = request.deadline_at - time.perf_counter()
            if budget <= 0:
                handle.pending.pop(request_id, None)
                self.stats.sheds += 1
                if not request.future.done():
                    request.future.set_exception(
                        DeadlineExceededError(
                            "deadline elapsed before dispatch; request shed"
                        )
                    )
                return
        handle.sender_queue.put(("minimize", request_id, request.pattern, budget))

    def _dispatch_control(
        self, handle: _ShardHandle, request: _ShardRequest, *extra
    ) -> None:
        request_id = self._next_id()
        handle.pending[request_id] = request
        handle.sender_queue.put((request.kind, request_id, *extra))

    def _kill_shard(self, handle: _ShardHandle) -> None:
        """Execute a ``shard.kill`` fault: SIGKILL the worker process.

        Detection and recovery run through the normal death path — the
        reader thread sees EOF, the manager respawns and requeues."""
        process = handle.process
        if process is None or process.pid is None:
            return
        try:
            os.kill(process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover - raced exit
            pass

    def _drain_parked(self) -> None:
        parked, self._parked = self._parked, []
        for request in parked:
            if not request.future.done():
                self._route_and_dispatch(request)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def _on_message(self, handle: _ShardHandle, generation: int, message) -> None:
        if handle.generation != generation:
            return  # stale thread from a previous incarnation
        try:
            status, request_id, payload = message
        except (TypeError, ValueError):
            return  # malformed: ignore (never tear the fleet down)
        if status == "store":
            # Unsolicited spool hand-off from a read-only worker store:
            # the manager is the single writer and commits for the fleet.
            if self.store is not None:
                self.store.apply_rows(payload)
            return
        request = handle.pending.pop(request_id, None)
        if request is None:
            return  # raced a timeout/cancel/requeue: discard
        handle.breaker.record_success()
        now = time.perf_counter()
        if status == "ok":
            if request.kind == "minimize":
                elapsed = now - request.enqueued_at
                handle.ewma_seconds = 0.7 * handle.ewma_seconds + 0.3 * max(
                    elapsed, 1e-6
                )
                if not request.warm:
                    self.stats.completed += 1
                    self.stats.latency.observe(elapsed)
            if not request.future.done():
                request.future.set_result(payload)
            return
        # status == "err": the payload is the worker-side exception.
        exc = payload if isinstance(payload, BaseException) else ServiceError(
            f"shard {handle.index} error: {payload!r}"
        )
        if request.kind == "minimize" and not request.warm:
            if isinstance(exc, DeadlineExceededError):
                self.stats.sheds += 1
            else:
                self.stats.failed += 1
        if not request.future.done():
            request.future.set_exception(exc)

    # ------------------------------------------------------------------
    # Live constraint updates
    # ------------------------------------------------------------------

    async def update_constraints(self, add=None, drop=None) -> dict:
        """Apply a live IC update to every shard; awaits full fan-out.

        The update is staged on a manager-side repository copy first —
        an invalid update (dropping a derived constraint, add/drop
        overlap) raises here before any worker is touched. Then
        ``self.constraints`` is swapped so any respawn or rolling
        restart boots post-churn, and the update fans out to each shard
        in turn (each worker flushes its drained burst, switches
        closure, and acks with its new digest). Every ack's digest is
        cross-checked against the manager's; ``constraint_epoch`` is
        bumped only after the last shard acks, so once this returns no
        worker can serve a stale-closure answer to a later submit.

        A shard that dies mid-push is fine: its replacement boots from
        the already-swapped ``self.constraints`` and the re-push is
        idempotent (re-adding an existing constraint and dropping an
        absent one are both no-ops).

        Returns an aggregate JSON-shaped dict (the ``constraints``
        protocol op's response for sharded backends).
        """
        if self._closing or not self._started:
            raise ServiceClosedError(
                "shard manager is closed"
                if self._closing
                else "shard manager not started"
            )
        assert self._restart_lock is not None
        async with self._restart_lock:
            adds = _coerce_constraint_list(add)
            drops = _coerce_constraint_list(drop)
            repo = coerce_repository(self.constraints).copy()
            if not repo.is_closed:
                # Close first so old_digest is the served closure digest
                # (what Session reports), not the open base-set digest.
                repo = closure(repo)
            with repo.begin_update() as update:
                for constraint in adds:
                    update.add(constraint)
                for constraint in drops:
                    update.drop(constraint)
            self.constraints = repo
            shard_payloads = []
            for handle in self._handles:
                payload = await self._push_constraints(handle, adds, drops)
                if payload.get("new_digest") != update.new_digest:
                    raise ServiceError(
                        f"shard {handle.index} closure digest diverged after "
                        f"constraint update ({payload.get('new_digest')!r} != "
                        f"{update.new_digest!r})"
                    )
                shard_payloads.append(payload)
            self.constraint_epoch += 1
            self.stats.ic_updates += 1
            return {
                "constraint_epoch": self.constraint_epoch,
                "old_digest": update.old_digest,
                "new_digest": update.new_digest,
                "changed": update.old_digest != update.new_digest,
                "mode": update.mode,
                "added": [c.notation() for c in update.added],
                "dropped": [c.notation() for c in update.dropped],
                "closure_size": len(repo),
                "shards_updated": len(shard_payloads),
                "shard_modes": [p.get("mode") for p in shard_payloads],
                "invalidated_replays": sum(
                    p.get("invalidated_replays", 0) for p in shard_payloads
                ),
                "surviving_oracle_entries": sum(
                    p.get("surviving_oracle_entries", 0) for p in shard_payloads
                ),
            }

    async def _push_constraints(
        self, handle: _ShardHandle, adds, drops, *, timeout: float = 15.0
    ) -> dict:
        """Push one constraint update to one shard, riding out deaths
        (the re-push after a respawn is idempotent)."""
        deadline = time.perf_counter() + timeout
        attempts = 0
        while True:
            if not handle.live:
                if time.perf_counter() >= deadline:
                    break
                await asyncio.sleep(0.02)
                continue
            request = _ShardRequest(
                kind="constraints", future=self._new_future(), warm=True
            )
            self._dispatch_control(handle, request, adds, drops)
            attempts += 1
            try:
                return await asyncio.wait_for(
                    asyncio.shield(request.future),
                    max(0.05, deadline - time.perf_counter()),
                )
            except (asyncio.TimeoutError, ServiceError):
                # Shard death mid-push (or a hung worker): the respawn
                # boots post-churn; retry until the budget runs out so
                # the digest cross-check still happens.
                if time.perf_counter() >= deadline:
                    break
                await asyncio.sleep(0.02)
        raise ServiceUnavailableError(
            f"shard {handle.index} failed to ack the constraint update",
            attempts=attempts,
        )

    def constraints_info(self) -> dict:
        """The fleet's constraint repository digest / sizes / epoch —
        the protocol's parameterless ``constraints`` op."""
        repo = coerce_repository(self.constraints)
        if not repo.is_closed:
            repo = closure(repo)
        return {
            "digest": repo.digest(),
            "closure_size": len(repo),
            "base_size": len(repo.base),
            "ic_updates": self.stats.ic_updates,
            "constraint_epoch": self.constraint_epoch,
        }

    # ------------------------------------------------------------------
    # Rolling restart
    # ------------------------------------------------------------------

    async def rolling_restart(self, *, drain_timeout: float = 30.0) -> int:
        """Restart every shard one at a time, without dropping requests.

        For each shard: leave the ring (new traffic redistributes to
        the ring successors), drain its pending queue, shut the process
        down cleanly, boot a fresh one, **re-warm it** by replaying its
        hottest exemplar fingerprints through ``minimize`` (results
        discarded — the point is repopulating the memo), then rejoin
        the ring. Returns the number of shards restarted.
        """
        if not self._started or self._closing:
            raise ServiceClosedError("shard manager not serving")
        assert self._restart_lock is not None
        restarted = 0
        async with self._restart_lock:
            for handle in self._handles:
                if not handle.live:
                    continue  # death path is already rebuilding it
                handle.draining = True
                self._ring.remove(handle.index)
                drain_deadline = time.perf_counter() + drain_timeout
                while handle.pending and time.perf_counter() < drain_deadline:
                    await asyncio.sleep(0.002)
                await self._stop_shard(handle)
                if self._closing:
                    handle.draining = False
                    return restarted
                exemplars = list(handle.exemplars.items())
                self._spawn(handle)
                # Stay off the ring until the warm replay lands: new
                # traffic keeps flowing to the survivors while the
                # restarted shard repopulates its memo.
                self._ring.remove(handle.index)
                await self._warm_replay(handle, exemplars)
                self._ring.add(handle.index)
                handle.draining = False
                self.shard_restarts += 1
                restarted += 1
                self._drain_parked()
        return restarted

    async def _warm_replay(self, handle: _ShardHandle, exemplars) -> None:
        """Replay exemplar patterns into a freshly restarted shard so it
        rejoins the ring warm (memo repopulated) instead of cold."""
        if not exemplars:
            return
        requests = []
        for fp, pattern in exemplars:
            request = _ShardRequest(
                kind="minimize",
                future=self._new_future(),
                pattern=pattern,
                fingerprint=fp,
                enqueued_at=time.perf_counter(),
                warm=True,
            )
            self._dispatch(handle, request)
            requests.append(request)
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(r.future for r in requests), return_exceptions=True
                ),
                timeout=30.0,
            )
        except asyncio.TimeoutError:  # pragma: no cover - hung warmup
            pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    async def counters_async(self) -> "dict[str, float]":
        """Fleet-wide flat counters, refreshed from every live shard.

        Layout: session/cache counters summed across shards at the top
        level (``cache_hits``, ``queries``, ``oracle_cache_hits``, ...,
        so single-process dashboards keep working), the front-end's
        end-to-end stats under their usual names, worker-side aggregates
        under ``shard_*`` (including merged fleet ``shard_latency_p99``
        built by :meth:`LatencyHistogram.merge`), per-shard hit counters
        under ``shard{i}_*``, and the shard-tier counters
        (``shard_restarts``, ``chunks_retried``, ``routed_*``).
        """
        snapshots: "list[tuple[int, ServiceStats]]" = []
        for handle in self._handles:
            if not handle.live:
                continue
            request = _ShardRequest(
                kind="stats", future=self._new_future(), warm=True
            )
            self._dispatch_control(handle, request)
            try:
                payload = await asyncio.wait_for(
                    asyncio.shield(request.future), 5.0
                )
                snapshots.append((handle.index, payload))
            except Exception:  # noqa: BLE001 - a dead/slow shard skips a snapshot
                continue
        self._last_worker_stats = [stats for _, stats in snapshots]
        return self._build_counters(snapshots)

    def counters(self) -> "dict[str, float]":
        """The last refreshed fleet counters (sync view; the protocol's
        ``stats`` op and :meth:`counters_async` refresh it)."""
        snapshots = list(enumerate(self._last_worker_stats))
        return self._build_counters(snapshots)

    def _build_counters(self, snapshots) -> "dict[str, float]":
        fleet = ServiceStats.aggregate([stats for _, stats in snapshots])
        out: "dict[str, float]" = dict(fleet.backend_counters)
        if out.get("queries"):
            out["hit_rate"] = out.get("cache_hits", 0) / out["queries"]
        backend_keys = set(fleet.backend_counters)
        for key, value in fleet.counters().items():
            if key in backend_keys:
                continue
            out[f"shard_{key}"] = value
        for index, stats in snapshots:
            backend = stats.backend_counters
            queries = backend.get("queries", 0)
            out[f"shard{index}_queries"] = queries
            out[f"shard{index}_cache_hits"] = backend.get("cache_hits", 0)
            out[f"shard{index}_oracle_cache_hits"] = backend.get(
                "oracle_cache_hits", 0
            )
            out[f"shard{index}_completed"] = stats.completed
            if queries:
                out[f"shard{index}_hit_rate"] = backend.get("cache_hits", 0) / queries
        if self.injector is not None:
            self.stats.faults_injected = self.injector.faults_injected
        # Certification/audit work happens inside the workers; mirror the
        # fleet sums into the front-end stats so the overlay below
        # reports them instead of the manager's own (always-zero) fields.
        self.stats.audited = fleet.audited
        self.stats.audit_failures = fleet.audit_failures
        self.stats.quarantined_records = fleet.quarantined_records
        if self.store is not None:
            # The manager-side (writable) store view, distinct from the
            # workers' read-only store_* counters summed above.
            for key, value in self.store.stats.counters().items():
                out[f"manager_{key}"] = value
        out.update(self.stats.counters())
        out.update(
            {
                "shards": self.n_shards,
                "constraint_epoch": self.constraint_epoch,
                "shard_restarts": self.shard_restarts,
                "chunks_retried": self.chunks_retried,
                "routed_affinity": self.routed_affinity,
                "routed_overflow": self.routed_overflow,
                "routed_round_robin": self.routed_round_robin,
                "parked_total": self.parked_total,
            }
        )
        return out

    def fault_events(self) -> "list[list]":
        """Fired faults as ``[point, kind, hit]`` rows (the ``faults``
        protocol op); empty without a fault plan."""
        if self.injector is None:
            return []
        return [[e.point, e.kind, e.hit] for e in self.injector.events()]
