"""The shard worker process: one full :class:`~repro.api.Session` per shard.

Each worker owns the complete per-process minimization state the
affinity routing exists to protect — the constraint closure, the
fingerprint replay memo, the containment-oracle cache, and (when the
options ask for ``jobs != 1``) a warm worker pool of its own. The
manager speaks to it over a duplex :mod:`multiprocessing` pipe with
pickled tuples; patterns travel as :class:`~repro.core.pattern.TreePattern`
(which pickles through the compact :class:`~repro.core.engine_v2.FlatPattern`
encoding, losslessly including node ids), so replies are byte-identical
to an in-process ``minimize`` call — no re-parse, no re-canonicalization.

Wire shapes (parent → worker)::

    ("minimize", request_id, pattern, budget_seconds_or_None)
    ("stats", request_id)      # -> a ServiceStats snapshot
    ("ping", request_id)
    ("constraints", request_id, add, drop)
                               # live IC update; flushes the drained
                               # burst first, then switches closure ->
                               # a ConstraintUpdateResult.to_json dict
    ("shutdown", request_id)   # ack, then exit 0

and worker → parent::

    ("ok", request_id, payload)
    ("err", request_id, exception)
    ("store", 0, rows)         # unsolicited: spooled persistent-store rows

Persistent store: a worker opens ``config.store_path`` **read-only**
(the single-writer rule — DESIGN.md §9) and shares the committed record
corpus with every other shard. Its own fresh results spool locally and
are forwarded to the manager as unsolicited ``("store", 0, rows)``
messages after each served batch; the manager — the one writer — applies
them, so cross-shard sharing needs no locks and no write contention.

The worker micro-batches on its own: after one blocking ``recv`` it
drains whatever else is already in the pipe (up to ``max_batch_size``)
and serves the whole burst through ``session.minimize_many`` — so a
burst of isomorphic queries routed to this shard pays one representative
minimization plus memo replays, exactly like the single-process service.

Deadline propagation: the manager sends each request's *remaining*
budget at dispatch; the worker re-anchors it on arrival and sheds
expired requests at batch assembly, before any minimization work runs
(the same shed-early contract as :class:`~repro.service.MinimizationService`).
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field
from typing import Optional

from ..api import MinimizeOptions, Session
from ..core.oracle_cache import global_cache
from ..errors import DeadlineExceededError
from ..service.service import ServiceStats

__all__ = ["ShardWorkerConfig", "shard_worker_main"]


@dataclass(frozen=True)
class ShardWorkerConfig:
    """Everything a shard worker needs to boot (picklable)."""

    index: int
    options: MinimizeOptions = field(default_factory=MinimizeOptions)
    #: Constraints for the worker's session (any shape
    #: :func:`repro.constraints.repository.coerce_repository` accepts).
    constraints: object = None
    #: Upper bound on one drained burst through ``minimize_many``.
    max_batch_size: int = 16
    #: Persistent-store file to open read-only (the manager holds the
    #: write path); ``None`` disables the disk tier for this worker.
    store_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"shard index must be >= 0, got {self.index}")
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )


def _oracle_snapshot() -> dict[str, float]:
    cache = global_cache()
    if cache is None:
        return {}
    counters = cache.stats.counters()
    return {k: v for k, v in counters.items() if not k.endswith("_rate")}


def _stats_payload(
    stats: ServiceStats, session: Session, oracle_base: dict[str, float]
) -> ServiceStats:
    """The stats reply: worker counters + session/oracle backend view."""
    backend = {
        k: v
        for k, v in session.counters().items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    for key, value in _oracle_snapshot().items():
        backend[key] = value - oracle_base.get(key, 0)
    stats.backend_counters = backend
    # Mirror the certification counters into the explicit stats fields
    # so ServiceStats.aggregate sums them fleet-wide (same convention as
    # MinimizationService._sync_fault_counters).
    stats.audited = int(backend.get("audited", 0) + backend.get("certified", 0))
    stats.audit_failures = int(backend.get("audit_failures", 0))
    stats.quarantined_records = int(backend.get("quarantined_records", 0))
    return stats


class _SampledAuditor:
    """Deterministic 1-in-N re-verification of this shard's answers.

    Runs *after* every reply in the burst is on the wire, so an audit
    (a certificate check, or a cold recompute when the answer carries
    no certificate) never adds to response latency. A failed audit
    quarantines the offending memo/store record via
    :meth:`~repro.api.Session.audit_result`; the next request for that
    fingerprint recomputes cold and the fresh record spools back to the
    manager — the single writer — overwriting the bad row, so the
    shared store self-heals. With ``certify`` on the rate is forced to
    0: every answer is already checked inline on the serving path.
    """

    def __init__(self, session: Session, rate: int) -> None:
        self.session = session
        self.rate = rate
        self.seen = 0

    def observe(self, result) -> None:
        if self.rate < 1:
            return
        self.seen += 1
        if (self.seen - 1) % self.rate:
            return
        try:
            self.session.audit_result(result)
        except Exception:  # noqa: BLE001 - audits never take the worker down
            pass


def shard_worker_main(conn, config: ShardWorkerConfig) -> None:
    """Serve minimization requests over ``conn`` until shutdown/EOF.

    This is the target of the shard's child process; it never raises —
    per-request failures travel back as ``("err", id, exc)`` and only a
    dead pipe (the manager is gone) or a ``shutdown`` message ends it.
    """
    # The front-end owns signal handling: a ^C on an interactive
    # ``repro-serve`` reaches the whole process group, and the drain
    # must outlive it here.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    store = None
    if config.store_path is not None:
        from ..store import PersistentStore

        store = PersistentStore(config.store_path, read_only=True)
    session = Session(config.options, constraints=config.constraints, store=store)
    stats = ServiceStats()
    oracle_base = _oracle_snapshot()
    audit_rate = 0
    if not getattr(config.options, "certify", False):
        audit_rate = int(getattr(config.options, "audit_rate", 0) or 0)
    auditor = _SampledAuditor(session, audit_rate)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # manager gone: nothing to answer to
            batch = [(message, time.perf_counter())]
            while len(batch) < config.max_batch_size and conn.poll(0):
                try:
                    batch.append((conn.recv(), time.perf_counter()))
                except (EOFError, OSError):
                    return
            requests = []  # (request_id, pattern, deadline_at, received_at)
            shutdown = False
            for (message, received_at) in batch:
                kind, request_id = message[0], message[1]
                if kind == "minimize":
                    budget = message[3]
                    deadline_at = (
                        received_at + budget if budget is not None else None
                    )
                    stats.submitted += 1
                    requests.append((request_id, message[2], deadline_at, received_at))
                elif kind == "stats":
                    conn.send(
                        ("ok", request_id, _stats_payload(stats, session, oracle_base))
                    )
                elif kind == "ping":
                    conn.send(("ok", request_id, {"pong": True}))
                elif kind == "constraints":
                    # Arrival order is the correctness contract: every
                    # request drained *before* this message is served
                    # under the old closure first; everything after it
                    # (this burst's tail included) sees the new one.
                    if requests:
                        _serve_batch(conn, session, stats, requests, auditor)
                        requests = []
                    try:
                        result = session.update_constraints(
                            message[2], message[3]
                        )
                    except Exception as exc:  # noqa: BLE001 - to manager
                        conn.send(("err", request_id, exc))
                    else:
                        stats.ic_updates += 1
                        conn.send(("ok", request_id, result.to_json()))
                elif kind == "shutdown":
                    conn.send(("ok", request_id, {"bye": True}))
                    shutdown = True
                else:
                    conn.send(
                        ("err", request_id, ValueError(f"unknown message {kind!r}"))
                    )
            if requests:
                _serve_batch(conn, session, stats, requests, auditor)
            if store is not None:
                rows = store.drain_spooled()
                if rows:
                    # Unsolicited message: the manager (single writer)
                    # commits these rows for the whole fleet.
                    conn.send(("store", 0, rows))
            if shutdown:
                return
    finally:
        session.close()
        if store is not None:
            store.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass


def _serve_batch(
    conn,
    session: Session,
    stats: ServiceStats,
    requests,
    auditor: Optional[_SampledAuditor] = None,
) -> None:
    """Run one drained burst through the session; answer every request."""
    started = time.perf_counter()
    live = []
    for request_id, pattern, deadline_at, received_at in requests:
        if deadline_at is not None and started >= deadline_at:
            stats.sheds += 1
            conn.send(
                (
                    "err",
                    request_id,
                    DeadlineExceededError(
                        "deadline elapsed in shard queue; request shed "
                        "before minimization"
                    ),
                )
            )
            continue
        stats.queue_wait.observe(started - received_at)
        live.append((request_id, pattern, received_at))
    if not live:
        return
    stats.batches += 1
    stats.batched_requests += len(live)
    try:
        results = session.minimize_many([pattern for _, pattern, _ in live])
    except Exception as exc:  # noqa: BLE001 - forwarded to the manager
        stats.failed += len(live)
        for request_id, _, _ in live:
            conn.send(("err", request_id, exc))
        return
    finished = time.perf_counter()
    for (request_id, _, received_at), result in zip(live, results):
        # The full per-stage MinimizeResult is process-local debugging
        # detail; never worth pickling across the shard pipe.
        result.detail = None
        stats.completed += 1
        stats.latency.observe(finished - received_at)
        conn.send(("ok", request_id, result))
    if auditor is not None:
        # Off the reply path: every answer in the burst is already on
        # the wire before any sampled re-verification runs.
        for result in results:
            auditor.observe(result)
