"""Scenario specifications: the replayable workload description.

A scenario is a JSON document describing *everything* a run needs —
op mix, query-family popularity, arrival shape, tenants, initial
integrity constraints, and constraint churn — so that one spec plus one
seed fully determines the event stream. The runner
(:mod:`repro.scenario.runner`) replays a spec against any serving
target and produces a byte-deterministic event log.

Spec shape::

    {
      "name": "steady-state",
      "seed": 42,
      "events": 200,
      "arrival": {"process": "poisson", "rate": 400.0},
      "constraints": 6,              # generated count, or a list of
                                     # notation strings
      "churn": {"every": 50, "pool": 4},   # optional; pool likewise
      "tenants": [
        {"name": "analytics", "weight": 3.0,
         "ops": {"minimize": 0.7, "equivalence-check": 0.2,
                 "evaluate": 0.1},
         "families": 12, "family_size": 24, "zipf_s": 1.1},
        {"name": "adhoc", "weight": 1.0,
         "ops": {"minimize": 1.0},
         "families": 4, "family_size": 40, "zipf_s": 0.0}
      ]
    }

Semantics:

* **ops** — per-tenant weights over :data:`SCENARIO_OPS`. ``ic-update``
  may appear in the mix (randomly interleaved churn) and/or be driven
  periodically by ``churn.every``; both toggle constraints from the
  churn pool (an active one is dropped, an inactive one added), so any
  fixed seed yields one exact add/drop sequence. ``audit`` minimizes a
  variant through the target and then re-proves the served answer with
  a cold certified session checked by the independent verifier
  (:mod:`repro.certify`); its event payload (result digest, verified
  flag, witness-step count) is digest-stable across targets.
* **families / zipf_s** — each tenant owns ``families`` generated query
  structures; every request draws a family from a Zipf(``zipf_s``)
  popularity curve (``0.0`` = uniform) and submits a fresh isomorphic
  shuffle of it, so fingerprint-level caching is exercised exactly like
  production repeat-structure traffic.
* **arrival** — one of :data:`~repro.workloads.arrival.ARRIVAL_PROCESSES`
  (``poisson`` / ``uniform`` / ``burst`` / ``diurnal``); offsets are
  part of the deterministic event log whether or not the runner paces
  real submissions with them.
* **constraints / churn.pool** — an integer means "generate this many
  constraints relevant to the tenants' families" (deterministic under
  the seed); a list of notation strings pins them exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..errors import ReproError
from ..workloads.arrival import ARRIVAL_PROCESSES

__all__ = [
    "SCENARIO_OPS",
    "ArrivalSpec",
    "ChurnSpec",
    "ScenarioSpec",
    "SpecError",
    "TenantSpec",
    "load_spec",
]

#: Operations a scenario event can perform.
SCENARIO_OPS = (
    "minimize",
    "equivalence-check",
    "evaluate",
    "ic-update",
    "audit",
)


class SpecError(ReproError):
    """A scenario spec failed validation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class ArrivalSpec:
    """When requests arrive: process shape + average rate."""

    process: str = "poisson"
    rate: float = 200.0

    def __post_init__(self) -> None:
        _require(
            self.process in ARRIVAL_PROCESSES,
            f"arrival.process must be one of {ARRIVAL_PROCESSES}, "
            f"got {self.process!r}",
        )
        _require(self.rate > 0, f"arrival.rate must be > 0, got {self.rate}")

    def to_dict(self) -> dict:
        return {"process": self.process, "rate": self.rate}


@dataclass(frozen=True)
class ChurnSpec:
    """Periodic live-IC churn: toggle a pool constraint every N events.

    ``every == 0`` disables the periodic driver (the op mix can still
    contain ``ic-update``). ``pool`` is an integer (generate that many
    family-relevant constraints) or a tuple of notation strings.
    """

    every: int = 0
    pool: Union[int, "tuple[str, ...]"] = 4

    def __post_init__(self) -> None:
        _require(self.every >= 0, f"churn.every must be >= 0, got {self.every}")
        if isinstance(self.pool, int):
            _require(self.pool >= 1, f"churn.pool must be >= 1, got {self.pool}")
        else:
            object.__setattr__(self, "pool", tuple(self.pool))
            _require(len(self.pool) >= 1, "churn.pool must not be empty")

    def to_dict(self) -> dict:
        pool = self.pool if isinstance(self.pool, int) else list(self.pool)
        return {"every": self.every, "pool": pool}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic: op mix, families, popularity curve."""

    name: str
    weight: float = 1.0
    ops: "dict[str, float]" = field(
        default_factory=lambda: {"minimize": 1.0}
    )
    families: int = 8
    family_size: int = 24
    zipf_s: float = 1.1

    def __post_init__(self) -> None:
        _require(bool(self.name), "tenant.name must be non-empty")
        _require(self.weight > 0, f"tenant.weight must be > 0, got {self.weight}")
        _require(self.families >= 1, f"tenant.families must be >= 1, got {self.families}")
        _require(
            self.family_size >= 2,
            f"tenant.family_size must be >= 2, got {self.family_size}",
        )
        _require(self.zipf_s >= 0, f"tenant.zipf_s must be >= 0, got {self.zipf_s}")
        _require(bool(self.ops), f"tenant {self.name!r} needs a non-empty op mix")
        for op, op_weight in self.ops.items():
            _require(
                op in SCENARIO_OPS,
                f"tenant {self.name!r}: unknown op {op!r} "
                f"(expected one of {SCENARIO_OPS})",
            )
            _require(
                op_weight >= 0,
                f"tenant {self.name!r}: op weight for {op!r} must be >= 0",
            )
        _require(
            sum(self.ops.values()) > 0,
            f"tenant {self.name!r}: op weights must not all be zero",
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "ops": dict(self.ops),
            "families": self.families,
            "family_size": self.family_size,
            "zipf_s": self.zipf_s,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete replayable scenario: spec + seed = one event stream."""

    name: str
    seed: int = 0
    events: int = 100
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    tenants: "tuple[TenantSpec, ...]" = field(
        default_factory=lambda: (TenantSpec(name="default"),)
    )
    constraints: Union[int, "tuple[str, ...]"] = 4
    churn: Optional[ChurnSpec] = None

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario name must be non-empty")
        _require(self.events >= 1, f"events must be >= 1, got {self.events}")
        object.__setattr__(self, "tenants", tuple(self.tenants))
        _require(len(self.tenants) >= 1, "at least one tenant is required")
        names = [t.name for t in self.tenants]
        _require(
            len(set(names)) == len(names),
            f"tenant names must be unique, got {names}",
        )
        if isinstance(self.constraints, int):
            _require(
                self.constraints >= 0,
                f"constraints count must be >= 0, got {self.constraints}",
            )
        else:
            object.__setattr__(self, "constraints", tuple(self.constraints))
        uses_ic = any(t.ops.get("ic-update", 0) > 0 for t in self.tenants)
        if (uses_ic or (self.churn is not None and self.churn.every)) and (
            self.churn is None
        ):
            raise SpecError(
                "the op mix contains ic-update but the spec has no churn "
                "pool; add a 'churn' section"
            )

    @property
    def has_churn(self) -> bool:
        """Whether any path can mutate constraints mid-run."""
        if self.churn is not None and self.churn.every:
            return True
        return any(t.ops.get("ic-update", 0) > 0 for t in self.tenants)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "seed": self.seed,
            "events": self.events,
            "arrival": self.arrival.to_dict(),
            "constraints": (
                self.constraints
                if isinstance(self.constraints, int)
                else list(self.constraints)
            ),
            "tenants": [t.to_dict() for t in self.tenants],
        }
        if self.churn is not None:
            out["churn"] = self.churn.to_dict()
        return out

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Build and validate a spec from a parsed JSON object."""
        if not isinstance(data, dict):
            raise SpecError("scenario spec must be a JSON object")
        known = {
            "name", "seed", "events", "arrival", "constraints", "tenants",
            "churn",
        }
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown spec fields: {unknown}")
        _require("name" in data, "scenario spec needs a 'name'")
        arrival = ArrivalSpec(**data.get("arrival", {}))
        churn_data = data.get("churn")
        churn = None
        if churn_data is not None:
            if not isinstance(churn_data, dict):
                raise SpecError("'churn' must be an object")
            pool = churn_data.get("pool", 4)
            churn = ChurnSpec(
                every=churn_data.get("every", 0),
                pool=pool if isinstance(pool, int) else tuple(pool),
            )
        tenants_data = data.get("tenants", [{"name": "default"}])
        if not isinstance(tenants_data, list):
            raise SpecError("'tenants' must be a list")
        tenants = tuple(TenantSpec(**t) for t in tenants_data)
        constraints = data.get("constraints", 4)
        if not isinstance(constraints, int):
            constraints = tuple(constraints)
        return cls(
            name=data["name"],
            seed=data.get("seed", 0),
            events=data.get("events", 100),
            arrival=arrival,
            tenants=tenants,
            constraints=constraints,
            churn=churn,
        )


def load_spec(path: "str | Path") -> ScenarioSpec:
    """Load and validate a scenario spec from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: invalid JSON ({exc})") from None
    except OSError as exc:
        raise SpecError(f"{path}: {exc}") from None
    try:
        return ScenarioSpec.from_dict(data)
    except TypeError as exc:
        # Dataclass kwargs mismatch (an unknown tenant/arrival field).
        raise SpecError(f"{path}: {exc}") from None
