"""``repro-scenario`` — replay seeded scenario specs against live backends.

Examples::

    repro-scenario run docs/scenarios/steady-state.json
    repro-scenario run docs/scenarios/churn-heavy.json --target service --verify
    repro-scenario run spec.json --target shards:2 --repeat 2
    repro-scenario run spec.json --target tcp:127.0.0.1:8777 --events out.jsonl
    repro-scenario plan docs/scenarios/burst.json
    repro-scenario validate my-spec.json

``run`` replays the spec and prints a JSON report whose ``digest`` is
the replay-determinism fingerprint: the same spec + seed must print the
same digest on every backend. ``--repeat N`` runs the scenario N times
and fails (exit 1) if any digest differs. ``--verify`` adds cold-probe
checks after every constraint-churn event (served answers must be
byte-identical to a fresh session built on the post-churn repository).
``plan`` prints the expanded deterministic op plan without executing
it; ``validate`` just checks the spec.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..api import MinimizeOptions
from ..errors import ReproError
from .events import write_events
from .runner import ScenarioRunner, build_plan
from .spec import load_spec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Replay seeded workload scenarios against live serving backends.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="replay a scenario and print the report")
    run.add_argument("spec", type=Path, help="scenario spec JSON file")
    run.add_argument(
        "--target",
        default="session",
        help="session | service | shards:N | tcp:HOST:PORT (default session)",
    )
    run.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run N times and fail unless every replay digest matches",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help=(
            "after every churn event, cold-probe family exemplars against "
            "a fresh post-churn session (byte-identical or fail)"
        ),
    )
    run.add_argument(
        "--paced",
        action="store_true",
        help=(
            "run requests between churn events concurrently (churn stays "
            "a barrier, so the digest is unchanged)"
        ),
    )
    run.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="with --paced: sleep out arrival offsets scaled by this factor",
    )
    run.add_argument(
        "--events",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the event log as JSON lines",
    )
    run.add_argument(
        "--include-events",
        action="store_true",
        help="inline the full event list in the printed report",
    )
    run.add_argument(
        "--engine",
        choices=("v1", "v2"),
        default=None,
        help="core engine override for in-process targets",
    )

    plan = sub.add_parser("plan", help="print the expanded op plan (no execution)")
    plan.add_argument("spec", type=Path)

    validate = sub.add_parser("validate", help="validate a spec file")
    validate.add_argument("spec", type=Path)
    return parser


def _cmd_run(args) -> int:
    spec = load_spec(args.spec)
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    options = MinimizeOptions(core_engine=args.engine)
    digests = []
    report = None
    for _ in range(args.repeat):
        runner = ScenarioRunner(
            spec,
            target=args.target,
            options=options,
            verify=args.verify,
            paced=args.paced,
            time_scale=args.time_scale,
        )
        report = runner.run()
        digests.append(report.digest)
    assert report is not None
    if args.events is not None:
        write_events(args.events, report.events)
    out = report.to_json(include_events=args.include_events)
    if args.repeat > 1:
        out["replay_digests"] = digests
        out["replay_deterministic"] = len(set(digests)) == 1
    print(json.dumps(out, indent=2, sort_keys=True))
    if args.repeat > 1 and len(set(digests)) != 1:
        print("error: replay digests diverged across repeats", file=sys.stderr)
        return 1
    if report.verify_failures:
        print(
            f"error: {len(report.verify_failures)} cold-probe mismatch(es) "
            "after churn",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_plan(args) -> int:
    spec = load_spec(args.spec)
    plan = build_plan(spec)
    out = {
        "name": spec.name,
        "seed": spec.seed,
        "families": len(plan.families),
        "initial_constraints": [
            c.notation() for c in plan.initial_constraints
        ],
        "churn_pool": [c.notation() for c in plan.churn_pool],
        "ops": [
            {
                "index": i,
                "op": p.op,
                "tenant": p.tenant,
                "family": p.family,
                "offset": round(p.offset, 6),
                **({"add": p.add, "drop": p.drop} if p.op == "ic-update" else {}),
            }
            for i, p in enumerate(plan.ops)
        ],
    }
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def _cmd_validate(args) -> int:
    spec = load_spec(args.spec)
    print(f"ok: {spec.name} ({spec.events} events, {len(spec.tenants)} tenant(s))")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "plan":
            return _cmd_plan(args)
        return _cmd_validate(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
