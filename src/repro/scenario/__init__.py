"""Replayable, seeded scenario harness for the serving stack.

One :class:`ScenarioSpec` (op mix, Zipf query popularity over
fingerprint families, arrival shape, multi-tenant weights, live IC
churn) plus one seed fully determines an event stream;
:func:`run_scenario` replays it against an in-process session, the
micro-batching service, a sharded fleet, or a running ``repro-serve``,
and the resulting event-log digest is byte-identical across all of
them. See :mod:`repro.scenario.runner` for the determinism contract.
"""

from .events import (
    ScenarioEvent,
    event_log_digest,
    load_events,
    result_digest,
    write_events,
)
from .runner import ScenarioReport, ScenarioRunner, build_plan, run_scenario
from .spec import (
    SCENARIO_OPS,
    ArrivalSpec,
    ChurnSpec,
    ScenarioSpec,
    SpecError,
    TenantSpec,
    load_spec,
)

__all__ = [
    "SCENARIO_OPS",
    "ArrivalSpec",
    "ChurnSpec",
    "ScenarioEvent",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "SpecError",
    "TenantSpec",
    "build_plan",
    "event_log_digest",
    "load_events",
    "load_spec",
    "result_digest",
    "run_scenario",
    "write_events",
]
