"""Scenario event logs: deterministic records + the replay digest.

Every executed scenario event becomes one :class:`ScenarioEvent`. The
record's fields are **deliberately restricted to deterministic data** —
op, tenant, family, arrival offset, and a payload of result content
(minimized-query hashes, equivalence verdicts, constraint digests).
Nondeterministic observations (cache hits, timings, queue depths,
counters) live in the run report, never in events, so the same spec and
seed produce a byte-identical event log on every backend: in-process
session, micro-batching service, sharded fleet, or a TCP server — the
replay-determinism gate is ``event_log_digest`` equality.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "ScenarioEvent",
    "event_log_digest",
    "load_events",
    "result_digest",
    "write_events",
]


def _canonical(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def result_digest(minimized_sexpr: str, eliminated) -> str:
    """Content hash of one served answer: the minimized query's
    s-expression plus the eliminated-node set.

    The eliminated record is hashed as a *sorted* set, not in deletion
    order: a memoized replay reports deletions in the representative's
    elimination sequence while a fresh computation reports the query's
    own sequence, so the order depends on which isomorph warmed the
    memo (e.g. a ``--verify`` cold probe). The answer — minimal pattern
    plus which nodes went — is identical either way, and only that is
    part of the determinism contract.
    """
    payload = _canonical(
        [minimized_sexpr, sorted([int(i), str(t)] for i, t in eliminated)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ScenarioEvent:
    """One executed scenario operation (deterministic fields only)."""

    index: int
    op: str
    tenant: str
    offset: float
    family: Optional[int] = None
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "op": self.op,
            "tenant": self.tenant,
            # Arrival offsets round-trip through JSON exactly (repr
            # round-trip floats), but round anyway so logs stay tidy
            # and platform-independent.
            "offset": round(self.offset, 9),
            "family": self.family,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioEvent":
        return cls(
            index=data["index"],
            op=data["op"],
            tenant=data["tenant"],
            offset=data["offset"],
            family=data.get("family"),
            payload=data.get("payload", {}),
        )


def event_log_digest(events: "Iterable[ScenarioEvent]") -> str:
    """The replay digest: sha256 over the canonical JSON event list.

    Two runs are byte-identical replays iff their digests match.
    """
    blob = _canonical([event.to_dict() for event in events])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def write_events(path: "str | Path", events: "Iterable[ScenarioEvent]") -> None:
    """Write the event log as JSON lines (one event per line)."""
    with open(path, "w") as handle:
        for event in events:
            handle.write(_canonical(event.to_dict()) + "\n")


def load_events(path: "str | Path") -> "list[ScenarioEvent]":
    """Read a JSON-lines event log back."""
    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(ScenarioEvent.from_dict(json.loads(line)))
    return events
