"""The scenario runner: replay a spec against any serving target.

One :class:`ScenarioSpec` plus one seed fully determines a **plan** —
the ordered list of operations (which tenant, which op, which query
family, which isomorphic variant, which constraint toggle) and their
arrival offsets. :func:`run_scenario` executes that plan against a
target and returns a :class:`ScenarioReport` whose event log is
byte-deterministic: the same spec and seed produce the same
:func:`~repro.scenario.events.event_log_digest` on every backend.

Targets (the ``target`` argument):

* ``"session"`` — an in-process :class:`~repro.api.Session` (the
  reference serial backend);
* ``"service"`` — a live :class:`~repro.service.MinimizationService`
  (micro-batching, deadline shedding — the single-process server);
* ``"shards:N"`` — an in-process :class:`~repro.shard.ShardManager`
  fleet of N worker processes with fingerprint-affinity routing;
* ``"tcp:HOST:PORT"`` — an already-running ``repro-serve`` instance
  over the JSON-lines protocol (the runner checks the server's
  constraint digest against the spec's before sending traffic).

Execution modes:

* **sequential** (default) — one op at a time, in plan order. This is
  the determinism gate: every backend must produce the identical event
  log because each request's constraint environment is exact.
* **paced** (``paced=True``) — requests between two churn events run
  concurrently (optionally sleeping out the arrival offsets scaled by
  ``time_scale``), which exercises micro-batching and shard routing
  for real. Churn events are barriers — all in-flight requests finish
  under the old closure before the update applies — so the event log
  digest is *still* identical to the sequential run.

Live IC churn: ``ic-update`` events toggle constraints from the spec's
churn pool (active → drop, inactive → add) on the live target through
its first-class constraint-mutation API, while the runner maintains a
mirror repository and cross-checks the served ``new_digest`` after
every update. With ``verify=True`` each churn is followed by cold-probe
checks: family exemplars are minimized both by the live target and by a
fresh cold :class:`~repro.api.Session` built on the post-churn
repository, and any byte difference is a correctness failure.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from ..api import MinimizeOptions, QueryResult, Session
from ..constraints.closure import closure
from ..constraints.model import IntegrityConstraint, parse_constraints
from ..constraints.repository import ConstraintRepository
from ..core.containment import is_contained_in
from ..core.fingerprint import fingerprint
from ..core.pattern import EdgeKind, TreePattern
from ..data.xml_io import parse_xml
from ..errors import ReproError
from ..parsing.sexpr import parse_sexpr, to_sexpr
from ..workloads.arrival import (
    burst_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from ..workloads.batchgen import isomorphic_shuffle
from ..workloads.icgen import relevant_constraints
from ..workloads.querygen import random_query
from .events import ScenarioEvent, event_log_digest, result_digest
from .spec import ScenarioSpec

__all__ = ["ScenarioReport", "ScenarioRunner", "run_scenario"]


class ScenarioError(ReproError):
    """A scenario run failed (target divergence, bad target string)."""


# ----------------------------------------------------------------------
# Plan generation (pure: spec + seed -> ordered op list)
# ----------------------------------------------------------------------


@dataclass
class _PlannedOp:
    op: str
    tenant: str
    family: Optional[int]  # global family index
    offset: float
    variant_seed: int = 0
    variant_seed_b: int = 0
    add: "list[str]" = field(default_factory=list)
    drop: "list[str]" = field(default_factory=list)


@dataclass
class _Plan:
    spec: ScenarioSpec
    #: Global family list: (tenant_name, base_pattern).
    families: "list[tuple[str, TreePattern]]"
    initial_constraints: "list[IntegrityConstraint]"
    churn_pool: "list[IntegrityConstraint]"
    ops: "list[_PlannedOp]"


def _zipf_cdf(n: int, s: float) -> "list[float]":
    weights = [1.0 / ((rank + 1) ** s) for rank in range(n)]
    total = sum(weights)
    acc = 0.0
    cdf = []
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def _draw(cdf: "list[float]", rng: random.Random) -> int:
    return min(bisect.bisect_left(cdf, rng.random()), len(cdf) - 1)


def _weighted_cdf(weights: "list[float]") -> "list[float]":
    total = sum(weights)
    acc = 0.0
    cdf = []
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def _arrival_offsets(spec: ScenarioSpec, seed: int) -> "list[float]":
    process, rate, n = spec.arrival.process, spec.arrival.rate, spec.events
    if process == "poisson":
        return poisson_arrivals(n, rate, seed=seed)
    if process == "uniform":
        return uniform_arrivals(n, rate)
    if process == "burst":
        return burst_arrivals(n, rate, seed=seed)
    return diurnal_arrivals(n, rate, seed=seed)


def _generate_constraints(
    bases: "list[TreePattern]",
    want,
    *,
    seed: int,
    exclude: "set[IntegrityConstraint]",
) -> "list[IntegrityConstraint]":
    """Resolve a spec constraints field: parse a notation list, or
    generate ``want`` distinct family-relevant constraints."""
    if not isinstance(want, int):
        parsed: "list[IntegrityConstraint]" = []
        for notation in want:
            parsed.extend(parse_constraints(notation))
        return parsed
    # Generated constraints target types the families actually use
    # (unlike the benchmark sweeps' deliberately inert X-targets), so
    # adding or dropping one genuinely changes minimization results —
    # churn must be observable or the correctness gates prove nothing.
    all_types = sorted({t for base in bases for t in base.node_types()})
    target_pool = all_types if len(all_types) > 1 else None
    out: "list[IntegrityConstraint]" = []
    seen: "set[IntegrityConstraint]" = set(exclude)
    attempt = 0
    while len(out) < want and attempt < want * 10 + 20:
        base = bases[attempt % len(bases)]
        for candidate in relevant_constraints(
            base, 2, target_pool=target_pool, seed=seed + attempt
        ):
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
                if len(out) >= want:
                    break
        attempt += 1
    return out


def build_plan(spec: ScenarioSpec) -> _Plan:
    """Expand a spec into the full deterministic op plan."""
    master = random.Random(spec.seed)
    family_seed = master.randrange(1 << 30)
    constraint_seed = master.randrange(1 << 30)
    pool_seed = master.randrange(1 << 30)
    arrival_seed = master.randrange(1 << 30)
    stream_rng = random.Random(master.randrange(1 << 30))

    families: "list[tuple[str, TreePattern]]" = []
    tenant_family_index: "dict[str, list[int]]" = {}
    for t_index, tenant in enumerate(spec.tenants):
        indices = []
        for f_index in range(tenant.families):
            base = random_query(
                tenant.family_size,
                seed=family_seed + 1000 * t_index + f_index,
            )
            indices.append(len(families))
            families.append((tenant.name, base))
        tenant_family_index[tenant.name] = indices

    bases = [base for _, base in families]
    initial = _generate_constraints(
        bases, spec.constraints, seed=constraint_seed, exclude=set()
    )
    pool: "list[IntegrityConstraint]" = []
    if spec.churn is not None:
        pool = _generate_constraints(
            bases, spec.churn.pool, seed=pool_seed, exclude=set(initial)
        )

    tenant_cdf = _weighted_cdf([t.weight for t in spec.tenants])
    op_cdfs = []
    op_names = []
    zipf_cdfs = []
    for tenant in spec.tenants:
        names = sorted(tenant.ops)
        op_names.append(names)
        op_cdfs.append(_weighted_cdf([tenant.ops[name] for name in names]))
        zipf_cdfs.append(_zipf_cdf(tenant.families, tenant.zipf_s))

    offsets = _arrival_offsets(spec, arrival_seed)
    active: "set[IntegrityConstraint]" = {
        c for c in pool if c in set(initial)
    }
    toggle = 0
    every = spec.churn.every if spec.churn is not None else 0

    ops: "list[_PlannedOp]" = []
    for index in range(spec.events):
        t_index = _draw(tenant_cdf, stream_rng)
        tenant = spec.tenants[t_index]
        op = op_names[t_index][_draw(op_cdfs[t_index], stream_rng)]
        if every and (index + 1) % every == 0:
            op = "ic-update"
        if op == "ic-update" and not pool:
            op = "minimize"  # spec validation prevents this; belt+braces
        planned = _PlannedOp(
            op=op, tenant=tenant.name, family=None, offset=offsets[index]
        )
        if op == "ic-update":
            constraint = pool[toggle % len(pool)]
            toggle += 1
            if constraint in active:
                active.discard(constraint)
                planned.drop = [constraint.notation()]
            else:
                active.add(constraint)
                planned.add = [constraint.notation()]
        else:
            local = _draw(zipf_cdfs[t_index], stream_rng)
            planned.family = tenant_family_index[tenant.name][local]
            planned.variant_seed = stream_rng.randrange(1 << 30)
            planned.variant_seed_b = stream_rng.randrange(1 << 30)
        ops.append(planned)
    return _Plan(
        spec=spec,
        families=families,
        initial_constraints=initial,
        churn_pool=pool,
        ops=ops,
    )


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------


def _normalize_result(result: QueryResult) -> "tuple[str, list]":
    return to_sexpr(result.pattern), [[i, t] for i, t in result.eliminated]


class _SessionTarget:
    """In-process reference backend (serial)."""

    kind = "session"

    def __init__(self, constraints, options: MinimizeOptions) -> None:
        self._session = Session(options, constraints=constraints)

    async def start(self) -> None:
        pass

    async def minimize(self, pattern: TreePattern) -> "tuple[str, list]":
        return _normalize_result(self._session.minimize(pattern))

    async def update_constraints(self, add, drop) -> dict:
        return self._session.update_constraints(add, drop).to_json()

    def counters(self) -> dict:
        return self._session.counters()

    async def aclose(self) -> None:
        self._session.close()


class _ServiceTarget:
    """A live micro-batching MinimizationService."""

    kind = "service"

    def __init__(self, constraints, options: MinimizeOptions) -> None:
        from ..service.service import MinimizationService

        self._service = MinimizationService(options, constraints=constraints)

    async def start(self) -> None:
        await self._service.start()

    async def minimize(self, pattern: TreePattern) -> "tuple[str, list]":
        return _normalize_result(await self._service.submit(pattern))

    async def update_constraints(self, add, drop) -> dict:
        result = await self._service.update_constraints(add=add, drop=drop)
        return result.to_json()

    def counters(self) -> dict:
        return self._service.counters()

    async def aclose(self) -> None:
        await self._service.aclose()


class _ShardTarget:
    """An in-process sharded fleet (N worker processes)."""

    kind = "shards"

    def __init__(self, constraints, options: MinimizeOptions, shards: int) -> None:
        from ..shard.manager import ShardManager

        self._manager = ShardManager(options, constraints=constraints, shards=shards)

    async def start(self) -> None:
        await self._manager.start()

    async def minimize(self, pattern: TreePattern) -> "tuple[str, list]":
        return _normalize_result(await self._manager.submit(pattern))

    async def update_constraints(self, add, drop) -> dict:
        return await self._manager.update_constraints(add=add, drop=drop)

    def counters(self) -> dict:
        return self._manager.counters()

    async def aclose(self) -> None:
        await self._manager.aclose()


class _TcpTarget:
    """A running ``repro-serve`` over the JSON-lines protocol."""

    kind = "tcp"

    def __init__(self, constraints, host: str, port: int) -> None:
        from ..resilience.client import ServiceClient

        self._client = ServiceClient(host, port)
        self._initial = constraints

    async def start(self) -> None:
        # The server was booted out-of-band: prove it serves the spec's
        # constraint set before replaying traffic against it.
        info = await asyncio.to_thread(self._client.request, {"op": "constraints"})
        expected = closure(ConstraintRepository(self._initial)).digest()
        if info.get("digest") != expected:
            raise ScenarioError(
                "tcp target serves a different constraint set than the "
                f"spec (server digest {info.get('digest')!r}, spec digest "
                f"{expected!r}); start repro-serve with the scenario's "
                "constraints"
            )

    async def minimize(self, pattern: TreePattern) -> "tuple[str, list]":
        response = await asyncio.to_thread(
            self._client.minimize, to_sexpr(pattern), fmt="sexpr"
        )
        return response["minimized"], [
            [int(i), str(t)] for i, t in response["eliminated"]
        ]

    async def update_constraints(self, add, drop) -> dict:
        payload: dict = {"op": "constraints"}
        if add:
            payload["add"] = list(add)
        if drop:
            payload["drop"] = list(drop)
        return await asyncio.to_thread(self._client.request, payload)

    def counters(self) -> dict:
        try:
            return self._client.server_stats()
        except Exception:  # noqa: BLE001 - stats are best-effort
            return {}

    async def aclose(self) -> None:
        self._client.close()


def _make_target(target: str, constraints, options: MinimizeOptions):
    if target == "session":
        return _SessionTarget(constraints, options)
    if target == "service":
        return _ServiceTarget(constraints, options)
    if target.startswith("shards:"):
        shards = int(target.split(":", 1)[1])
        return _ShardTarget(constraints, options, shards)
    if target.startswith("tcp:"):
        _, host, port = target.split(":", 2)
        return _TcpTarget(constraints, host, int(port))
    raise ScenarioError(
        f"unknown target {target!r} (expected session, service, shards:N, "
        "or tcp:HOST:PORT)"
    )


# ----------------------------------------------------------------------
# Data materialization for the evaluate op
# ----------------------------------------------------------------------


def _xml_of(pattern: TreePattern) -> str:
    """Materialize a pattern as one XML document that satisfies it:
    child edges nest directly, descendant edges go through a filler
    element (so ``/`` steps cannot accidentally match them)."""

    def render(node) -> str:
        inner = []
        for child in node.children:
            body = render(child)
            if child.edge is EdgeKind.DESCENDANT:
                body = f"<filler>{body}</filler>"
            inner.append(body)
        return f"<{node.type}>{''.join(inner)}</{node.type}>"

    return render(pattern.root)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


@dataclass
class ScenarioReport:
    """Everything one scenario run produced."""

    name: str
    target: str
    seed: int
    mode: str  # "sequential" | "paced"
    events: "list[ScenarioEvent]"
    digest: str
    op_counts: "dict[str, int]"
    ic_updates: int
    invalidated_replays: int
    surviving_oracle_entries: int
    verify_probes: int
    verify_failures: "list[dict]"
    counters: "dict[str, float]"
    elapsed_seconds: float

    def to_json(self, *, include_events: bool = False) -> dict:
        out = {
            "name": self.name,
            "target": self.target,
            "seed": self.seed,
            "mode": self.mode,
            "n_events": len(self.events),
            "digest": self.digest,
            "op_counts": dict(self.op_counts),
            "ic_updates": self.ic_updates,
            "invalidated_replays": self.invalidated_replays,
            "surviving_oracle_entries": self.surviving_oracle_entries,
            "verify_probes": self.verify_probes,
            "verify_failures": list(self.verify_failures),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "counters": {
                k: v
                for k, v in sorted(self.counters.items())
                if isinstance(v, (int, float))
            },
        }
        if include_events:
            out["events"] = [e.to_dict() for e in self.events]
        return out


class ScenarioRunner:
    """Execute one scenario plan against one target."""

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        target: str = "session",
        options: Optional[MinimizeOptions] = None,
        verify: bool = False,
        verify_probes: int = 4,
        paced: bool = False,
        time_scale: float = 0.0,
    ) -> None:
        self.spec = spec
        self.target_name = target
        self.options = options if options is not None else MinimizeOptions()
        self.verify = verify
        self.verify_probe_count = verify_probes
        self.paced = paced
        self.time_scale = time_scale
        self.plan = build_plan(spec)
        #: The runner's own view of the live constraint set; every
        #: target ack is digest-checked against it.
        self._mirror = closure(
            ConstraintRepository(self.plan.initial_constraints)
        )
        self._mirror_digest = self._mirror.digest()

    # -- public entry ---------------------------------------------------

    async def arun(self) -> ScenarioReport:
        target = _make_target(
            self.target_name, list(self.plan.initial_constraints), self.options
        )
        started = time.perf_counter()
        events: "list[ScenarioEvent]" = []
        op_counts: "dict[str, int]" = {}
        ic_updates = 0
        invalidated = 0
        surviving = 0
        verify_probes = 0
        verify_failures: "list[dict]" = []
        # The evaluate op runs client-side (matching is constraint-
        # independent), against documents materialized from each family.
        evaluator = Session(MinimizeOptions())
        trees = {}
        try:
            await target.start()
            pending: "list[asyncio.Task]" = []
            pace_started = time.perf_counter()
            for index, planned in enumerate(self.plan.ops):
                op_counts[planned.op] = op_counts.get(planned.op, 0) + 1
                if planned.op == "ic-update":
                    if pending:  # churn barrier in paced mode
                        await asyncio.gather(*pending)
                        pending = []
                    event = await self._run_ic_update(target, index, planned)
                    ic_updates += 1
                    invalidated += event.payload.get("_invalidated", 0)
                    surviving += event.payload.get("_surviving", 0)
                    event.payload.pop("_invalidated", None)
                    event.payload.pop("_surviving", None)
                    events.append(event)
                    if self.verify:
                        probes, failures = await self._verify_churn(target)
                        verify_probes += probes
                        verify_failures.extend(failures)
                    continue
                coro = self._run_request(
                    target, evaluator, trees, index, planned
                )
                if self.paced:
                    if self.time_scale > 0:
                        due = planned.offset * self.time_scale
                        elapsed = time.perf_counter() - pace_started
                        if due > elapsed:
                            await asyncio.sleep(due - elapsed)
                    task = asyncio.ensure_future(coro)
                    task.add_done_callback(
                        lambda t, _events=events: _events.append(t.result())
                        if t.exception() is None
                        else None
                    )
                    pending.append(task)
                else:
                    events.append(await coro)
            if pending:
                await asyncio.gather(*pending)
            counters = target.counters()
        finally:
            evaluator.close()
            await target.aclose()
        events.sort(key=lambda e: e.index)
        return ScenarioReport(
            name=self.spec.name,
            target=self.target_name,
            seed=self.spec.seed,
            mode="paced" if self.paced else "sequential",
            events=events,
            digest=event_log_digest(events),
            op_counts=op_counts,
            ic_updates=ic_updates,
            invalidated_replays=invalidated,
            surviving_oracle_entries=surviving,
            verify_probes=verify_probes,
            verify_failures=verify_failures,
            counters=counters,
            elapsed_seconds=time.perf_counter() - started,
        )

    def run(self) -> ScenarioReport:
        return asyncio.run(self.arun())

    # -- op execution ---------------------------------------------------

    def _variant(self, planned: _PlannedOp, *, second: bool = False) -> TreePattern:
        _, base = self.plan.families[planned.family]
        seed = planned.variant_seed_b if second else planned.variant_seed
        # Round-trip through sexpr so node ids are the parse-order ids
        # every backend sees: the tcp target ships queries as sexprs and
        # the server re-parses them, so without canonicalization the
        # eliminated-node ids (part of the event digest) would depend on
        # whether the query crossed a wire.
        return parse_sexpr(to_sexpr(isomorphic_shuffle(base, seed=seed)))

    async def _run_request(
        self, target, evaluator, trees, index: int, planned: _PlannedOp
    ) -> ScenarioEvent:
        event = ScenarioEvent(
            index=index,
            op=planned.op,
            tenant=planned.tenant,
            offset=planned.offset,
            family=planned.family,
        )
        if planned.op == "minimize":
            query = self._variant(planned)
            sexpr, eliminated = await target.minimize(query)
            event.payload = {
                "fingerprint": fingerprint(query),
                "result": result_digest(sexpr, eliminated),
                "constraints": self._mirror_digest,
            }
        elif planned.op == "equivalence-check":
            # Two members of the same family: equivalent under any
            # constraint set iff their minimal forms coincide (the
            # paper's uniqueness-of-the-minimal-query theorem makes
            # minimize-and-compare a sound equivalence procedure).
            query_a = self._variant(planned)
            query_b = self._variant(planned, second=True)
            sexpr_a, elim_a = await target.minimize(query_a)
            sexpr_b, elim_b = await target.minimize(query_b)
            equal = fingerprint(parse_sexpr(sexpr_a)) == fingerprint(
                parse_sexpr(sexpr_b)
            )
            # Cross-check through the containment oracle directly.
            # ``is_contained_in`` has no isomorphism fast path, so the
            # DP runs and its table lands in the process-global oracle
            # cache — the closure-free tier whose survival across churn
            # the surviving-oracle counter measures.
            oracle_equal = is_contained_in(query_a, query_b) and is_contained_in(
                query_b, query_a
            )
            event.payload = {
                "equal": equal,
                "oracle_equal": oracle_equal,
                "result_a": result_digest(sexpr_a, elim_a),
                "result_b": result_digest(sexpr_b, elim_b),
                "constraints": self._mirror_digest,
            }
        elif planned.op == "audit":
            query = self._variant(planned)
            sexpr, eliminated = await target.minimize(query)
            # Independent re-proof of the *served* answer: a cold
            # certified minimization of the same pattern, verified by
            # the definition-level checker, must agree byte-for-byte.
            # Every field below is deterministic under the spec seed
            # (the minimal query is unique), so the event is
            # digest-stable across targets.
            probe = parse_sexpr(to_sexpr(query))
            cold_options = self.options.with_overrides(
                certify=True, store_path=None, fault_plan=None, jobs=1
            )
            post_churn = sorted(self._mirror.base)
            with Session(cold_options, constraints=post_churn) as cold:
                cold_result = cold.minimize(probe)
                verdict = cold.check_certificate(cold_result)
            cold_sexpr, cold_elim = _normalize_result(cold_result)
            served_elim = [[int(i), str(t)] for i, t in eliminated]
            certificate = cold_result.certificate
            event.payload = {
                "fingerprint": fingerprint(query),
                "result": result_digest(sexpr, eliminated),
                "verified": bool(verdict)
                and (cold_sexpr, cold_elim) == (sexpr, served_elim),
                "witness_steps": (
                    len(certificate.steps) if certificate is not None else 0
                ),
                "constraints": self._mirror_digest,
            }
        elif planned.op == "evaluate":
            query = self._variant(planned)
            if planned.family not in trees:
                _, base = self.plan.families[planned.family]
                trees[planned.family] = parse_xml(_xml_of(base))
            answers = evaluator.evaluate(query, [trees[planned.family]])
            canonical = sorted([t, n] for t, n in answers)
            event.payload = {
                "matches": len(canonical),
                "answers": hashlib.sha256(
                    json.dumps(canonical, separators=(",", ":")).encode()
                ).hexdigest(),
            }
        else:  # pragma: no cover - plan only emits known ops
            raise ScenarioError(f"unplannable op {planned.op!r}")
        return event

    async def _run_ic_update(
        self, target, index: int, planned: _PlannedOp
    ) -> ScenarioEvent:
        with self._mirror.begin_update() as staged:
            for notation in planned.add:
                staged.add(parse_constraints(notation)[0])
            for notation in planned.drop:
                staged.drop(parse_constraints(notation)[0])
        self._mirror_digest = self._mirror.digest()
        result = await target.update_constraints(planned.add, planned.drop)
        served_digest = result.get("new_digest")
        if served_digest != self._mirror_digest:
            raise ScenarioError(
                f"constraint digest diverged at event {index}: target "
                f"serves {served_digest!r}, mirror expects "
                f"{self._mirror_digest!r}"
            )
        return ScenarioEvent(
            index=index,
            op="ic-update",
            tenant=planned.tenant,
            offset=planned.offset,
            payload={
                "added": list(planned.add),
                "dropped": list(planned.drop),
                "old_digest": result.get("old_digest"),
                "new_digest": served_digest,
                "changed": bool(result.get("changed")),
                # Stripped before hashing: nondeterministic across
                # backends (memo contents differ per shard layout).
                "_invalidated": int(result.get("invalidated_replays", 0)),
                "_surviving": int(result.get("surviving_oracle_entries", 0)),
            },
        )

    async def _verify_churn(self, target) -> "tuple[int, list[dict]]":
        """Cold-probe the post-churn closure: family exemplars must
        minimize byte-identically on the live target and on a fresh
        session built from the post-churn repository."""
        failures: "list[dict]" = []
        probes = 0
        post_churn = sorted(self._mirror.base)
        with Session(self.options, constraints=post_churn) as cold:
            for family_index, (_, base) in enumerate(
                self.plan.families[: self.verify_probe_count]
            ):
                probes += 1
                probe = parse_sexpr(to_sexpr(base))  # canonical ids
                served_sexpr, served_elim = await target.minimize(probe)
                cold_sexpr, cold_elim = _normalize_result(cold.minimize(probe))
                if (served_sexpr, served_elim) != (cold_sexpr, cold_elim):
                    failures.append(
                        {
                            "family": family_index,
                            "served": result_digest(served_sexpr, served_elim),
                            "cold": result_digest(cold_sexpr, cold_elim),
                        }
                    )
        return probes, failures


def run_scenario(
    spec: ScenarioSpec,
    *,
    target: str = "session",
    options: Optional[MinimizeOptions] = None,
    verify: bool = False,
    paced: bool = False,
    time_scale: float = 0.0,
) -> ScenarioReport:
    """Replay ``spec`` against ``target``; the one-call entry point."""
    runner = ScenarioRunner(
        spec,
        target=target,
        options=options,
        verify=verify,
        paced=paced,
        time_scale=time_scale,
    )
    return runner.run()
