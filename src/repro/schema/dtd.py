"""A small DTD/XML-Schema-like schema language.

Section 2.2 of the paper derives integrity constraints from schema
specifications ("whenever type B appears in every XML Schema
specification for type A, every A element must have a child of type B").
This module provides the schema substrate: a declarative content-model
language, a parser, and a typed in-memory model that
:mod:`repro.constraints.inference` reads constraints off.

Syntax (``#`` starts a comment)::

    element Book {
        Title           # exactly one      -> required child
        Author+         # one or more      -> required child
        Chapter*        # zero or more
        Publisher?      # optional
    }
    type Employee : Person, Principal      # co-occurrence declarations

Content models are unordered (the paper ignores sibling order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import SchemaError

__all__ = ["Occurs", "Particle", "ElementDecl", "Schema", "parse_schema"]

_UNBOUNDED = None


@dataclass(frozen=True)
class Occurs:
    """Occurrence bounds of a content particle (``max_occurs=None`` means
    unbounded)."""

    min_occurs: int
    max_occurs: Optional[int]

    def __post_init__(self) -> None:
        if self.min_occurs < 0:
            raise SchemaError("min_occurs must be >= 0")
        if self.max_occurs is not None and self.max_occurs < max(self.min_occurs, 1):
            raise SchemaError("max_occurs must be >= max(min_occurs, 1)")

    @property
    def required(self) -> bool:
        """Whether at least one occurrence is mandatory."""
        return self.min_occurs >= 1

    @classmethod
    def from_suffix(cls, suffix: str) -> "Occurs":
        """Map the DTD multiplicity suffixes to bounds."""
        if suffix == "":
            return cls(1, 1)
        if suffix == "?":
            return cls(0, 1)
        if suffix == "*":
            return cls(0, _UNBOUNDED)
        if suffix == "+":
            return cls(1, _UNBOUNDED)
        raise SchemaError(f"unknown multiplicity suffix {suffix!r}")

    @property
    def suffix(self) -> str:
        """The DTD suffix for these bounds (falls back to ``{m,n}``)."""
        table = {(1, 1): "", (0, 1): "?", (0, _UNBOUNDED): "*", (1, _UNBOUNDED): "+"}
        key = (self.min_occurs, self.max_occurs)
        if key in table:
            return table[key]
        upper = "" if self.max_occurs is None else str(self.max_occurs)
        return f"{{{self.min_occurs},{upper}}}"


@dataclass(frozen=True)
class Particle:
    """One entry of a content model: a child type with bounds."""

    type: str
    occurs: Occurs = field(default_factory=lambda: Occurs(1, 1))

    def notation(self) -> str:
        """``Author+`` style rendering."""
        return f"{self.type}{self.occurs.suffix}"


@dataclass
class ElementDecl:
    """Content model of one element type."""

    name: str
    particles: list[Particle] = field(default_factory=list)

    def particle_for(self, child_type: str) -> Optional[Particle]:
        """The particle governing ``child_type``, if declared."""
        for p in self.particles:
            if p.type == child_type:
                return p
        return None

    def required_children(self) -> list[str]:
        """Child types with ``min_occurs >= 1``."""
        return [p.type for p in self.particles if p.occurs.required]


class Schema:
    """A set of element declarations plus co-occurrence (subtype)
    declarations."""

    def __init__(self) -> None:
        self._elements: dict[str, ElementDecl] = {}
        self._co_occurrences: list[tuple[str, str]] = []

    # -- construction -----------------------------------------------------

    def declare_element(self, name: str, particles: list[Particle]) -> ElementDecl:
        """Add an element declaration (one per type)."""
        if name in self._elements:
            raise SchemaError(f"duplicate declaration for element {name!r}")
        seen: set[str] = set()
        for p in particles:
            if p.type in seen:
                raise SchemaError(
                    f"element {name!r} declares child {p.type!r} twice "
                    f"(content models are unordered; merge the bounds)"
                )
            seen.add(p.type)
        decl = ElementDecl(name, list(particles))
        self._elements[name] = decl
        return decl

    def declare_co_occurrence(self, subtype: str, supertype: str) -> None:
        """Declare that every ``subtype`` node is also a ``supertype``."""
        if subtype == supertype:
            raise SchemaError(f"type {subtype!r} cannot co-occur with itself")
        pair = (subtype, supertype)
        if pair not in self._co_occurrences:
            self._co_occurrences.append(pair)

    # -- access ------------------------------------------------------------

    def element(self, name: str) -> Optional[ElementDecl]:
        """The declaration for ``name``, or ``None`` (open content)."""
        return self._elements.get(name)

    def elements(self) -> Iterator[ElementDecl]:
        """All declarations, in declaration order."""
        return iter(self._elements.values())

    @property
    def co_occurrences(self) -> tuple[tuple[str, str], ...]:
        """Declared (subtype, supertype) pairs."""
        return tuple(self._co_occurrences)

    def types(self) -> set[str]:
        """Every type mentioned anywhere in the schema."""
        out = set(self._elements)
        for decl in self._elements.values():
            out.update(p.type for p in decl.particles)
        for sub, sup in self._co_occurrences:
            out.add(sub)
            out.add(sup)
        return out

    def notation(self) -> str:
        """Render back to the schema language."""
        blocks: list[str] = []
        for decl in self._elements.values():
            body = "\n".join(f"    {p.notation()}" for p in decl.particles)
            blocks.append(f"element {decl.name} {{\n{body}\n}}" if body else f"element {decl.name} {{}}")
        for sub, sup in self._co_occurrences:
            blocks.append(f"type {sub} : {sup}")
        return "\n".join(blocks)

    def __len__(self) -> int:
        return len(self._elements)


def parse_schema(text: str) -> Schema:
    """Parse the schema language into a :class:`Schema`.

    Raises :class:`~repro.errors.SchemaError` on malformed input.
    """
    schema = Schema()
    # Strip comments, then tokenize on whitespace and punctuation.
    lines = [line.split("#", 1)[0] for line in text.splitlines()]
    tokens: list[str] = []
    for line in lines:
        for brace in "{}:,":
            line = line.replace(brace, f" {brace} ")
        tokens.extend(line.split())

    i = 0

    def need(what: str) -> str:
        nonlocal i
        if i >= len(tokens):
            raise SchemaError(f"unexpected end of schema, expected {what}")
        token = tokens[i]
        i += 1
        return token

    while i < len(tokens):
        keyword = need("'element' or 'type'")
        if keyword == "element":
            name = need("an element name")
            if need("'{'") != "{":
                raise SchemaError(f"expected '{{' after element {name!r}")
            particles: list[Particle] = []
            while True:
                token = need("a particle or '}'")
                if token == "}":
                    break
                suffix = ""
                if token[-1] in "?*+":
                    token, suffix = token[:-1], token[-1]
                if not token:
                    raise SchemaError("empty particle name")
                particles.append(Particle(token, Occurs.from_suffix(suffix)))
            schema.declare_element(name, particles)
        elif keyword == "type":
            sub = need("a type name")
            if need("':'") != ":":
                raise SchemaError(f"expected ':' after type {sub!r}")
            while True:
                sup = need("a supertype name")
                schema.declare_co_occurrence(sub, sup)
                if i < len(tokens) and tokens[i] == ",":
                    i += 1
                    continue
                break
        else:
            raise SchemaError(f"expected 'element' or 'type', got {keyword!r}")
    return schema
