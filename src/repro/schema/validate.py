"""Validating data trees against schemas.

Checks each node whose type has an element declaration: every child type
must be declared in the content model and its occurrence count must lie
within the particle's bounds. Types without declarations have open
content (anything goes) — matching how the paper treats schemas as a
*source* of constraints rather than a closed-world gatekeeper.

Co-occurrence declarations are checked as type-set containments.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Union

from ..data.tree import DataNode, DataTree, Forest
from .dtd import Schema

__all__ = ["SchemaViolation", "schema_violations", "conforms"]


@dataclass(frozen=True)
class SchemaViolation:
    """One schema violation at one data node."""

    node_id: int
    tree_index: int
    message: str


Database = Union[DataTree, Forest, Iterable[DataTree]]


def _trees(database: Database) -> list[DataTree]:
    if isinstance(database, DataTree):
        return [database]
    return list(database)


def schema_violations(database: Database, schema: Schema) -> list[SchemaViolation]:
    """All schema violations across the database."""
    found: list[SchemaViolation] = []
    for tree_index, tree in enumerate(_trees(database)):
        for node in tree.nodes():
            found.extend(_check_node(node, tree_index, schema))
    return found


def _check_node(node: DataNode, tree_index: int, schema: Schema) -> list[SchemaViolation]:
    out: list[SchemaViolation] = []
    for sub, sup in schema.co_occurrences:
        if sub in node.types and sup not in node.types:
            out.append(
                SchemaViolation(
                    node.id, tree_index, f"node of type {sub!r} must also carry {sup!r}"
                )
            )
    for node_type in node.types:
        decl = schema.element(node_type)
        if decl is None:
            continue
        counts: Counter[str] = Counter()
        for child in node.children:
            governed = [t for t in child.types if decl.particle_for(t) is not None]
            if not governed:
                out.append(
                    SchemaViolation(
                        node.id,
                        tree_index,
                        f"child of types {sorted(child.types)} not allowed under "
                        f"{node_type!r}",
                    )
                )
                continue
            for t in governed:
                counts[t] += 1
        for particle in decl.particles:
            n = counts.get(particle.type, 0)
            if n < particle.occurs.min_occurs:
                out.append(
                    SchemaViolation(
                        node.id,
                        tree_index,
                        f"{node_type!r} requires at least "
                        f"{particle.occurs.min_occurs} {particle.type!r} "
                        f"child(ren), found {n}",
                    )
                )
            if particle.occurs.max_occurs is not None and n > particle.occurs.max_occurs:
                out.append(
                    SchemaViolation(
                        node.id,
                        tree_index,
                        f"{node_type!r} allows at most "
                        f"{particle.occurs.max_occurs} {particle.type!r} "
                        f"child(ren), found {n}",
                    )
                )
    return out


def conforms(database: Database, schema: Schema) -> bool:
    """Whether the database has no schema violations."""
    return not schema_violations(database, schema)
