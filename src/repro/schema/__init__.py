"""Schema substrate: content-model language, validation, IC inference."""

from .dtd import ElementDecl, Occurs, Particle, Schema, parse_schema
from .validate import SchemaViolation, conforms, schema_violations

__all__ = [
    "ElementDecl",
    "Occurs",
    "Particle",
    "Schema",
    "parse_schema",
    "SchemaViolation",
    "conforms",
    "schema_violations",
]
