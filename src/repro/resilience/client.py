"""Resilient clients for the JSON-lines minimization service.

The serial ``minimize`` loop never loses work; a networked service can —
connections break, responses truncate, queues overload, restarts drop
requests mid-flight. :class:`ServiceClient` (sync) and
:class:`AsyncServiceClient` (asyncio) close that gap so the chaos
suite's contract — *byte-identical results to the serial loop under
every injected fault* — holds end to end:

* **idempotent retries** — every logical request keeps one id across
  resends (the wire ``retry`` field marks attempt > 1), and responses
  are matched *by id*: a stale or duplicated response from an earlier
  attempt is counted and discarded, never delivered to the wrong
  caller;
* **capped exponential backoff with deterministic jitter** —
  :class:`RetryPolicy` honors the server's
  :class:`~repro.errors.ServiceOverloadedError` ``retry_after`` hint as
  a floor, and jitter comes from a seeded :class:`random.Random`, so a
  chaos run replays its exact timing decisions;
* **a circuit breaker** — :class:`CircuitBreaker` stops hammering a
  down service after ``failure_threshold`` consecutive transport
  failures and half-opens one probe per ``cooldown``;
* **garbage tolerance** — unparseable lines (fault injection, real
  corruption) are skipped and counted, not fatal.

Errors the *server* answered with are trusted: an ``ok: false``
response proves the service is up, so only transport failures and
overload feed the breaker. Non-retryable server errors
(:class:`~repro.errors.DeadlineExceededError`, parse failures, ...)
raise immediately; exhausted budgets raise
:class:`~repro.errors.ServiceUnavailableError` wrapping the last
underlying failure.

This module deliberately imports nothing above :mod:`repro.errors` —
it is the bottom of the resilience layer and must stay importable from
:mod:`repro.api` without cycles.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)

__all__ = [
    "AsyncServiceClient",
    "CircuitBreaker",
    "ClientStats",
    "RetryPolicy",
    "ServiceClient",
]


@dataclass
class ClientStats:
    """Counters of one client's lifetime (the ``*Stats`` house style)."""

    #: Logical requests issued through the client.
    requests: int = 0
    #: Wire attempts (>= requests; resends included).
    attempts: int = 0
    #: Resends of an already-attempted request (idempotent retries).
    retries: int = 0
    #: Fresh connections dialled after the first.
    reconnects: int = 0
    #: Unparseable response lines skipped (corruption / fault injection).
    garbage_lines: int = 0
    #: Well-formed responses discarded for carrying an unexpected id
    #: (stale duplicates from earlier attempts, misroutes).
    duplicate_responses: int = 0
    #: Times the circuit breaker transitioned closed -> open.
    breaker_opens: int = 0
    #: Attempts refused locally because the breaker was open.
    breaker_short_circuits: int = 0
    #: Total seconds slept across all backoffs.
    backoff_seconds: float = 0.0

    def counters(self) -> dict[str, float]:
        """The stats as a flat dict (for JSON reports)."""
        return {
            "requests": self.requests,
            "attempts": self.attempts,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "garbage_lines": self.garbage_lines,
            "duplicate_responses": self.duplicate_responses,
            "breaker_opens": self.breaker_opens,
            "breaker_short_circuits": self.breaker_short_circuits,
            "backoff_seconds": self.backoff_seconds,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter.

    ``delay(attempt)`` grows ``base_delay * multiplier**(attempt-1)``,
    capped at ``max_delay``, plus up to ``jitter`` of itself drawn from
    the caller's rng (seeded by the client — deterministic replay). A
    server-provided ``retry_after`` hint acts as a floor: the client
    never comes back sooner than the service asked.
    """

    max_attempts: int = 6
    base_delay: float = 0.02
    max_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(
        self,
        attempt: int,
        *,
        retry_after: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        base = min(self.base_delay * self.multiplier ** max(attempt - 1, 0), self.max_delay)
        if self.jitter and rng is not None:
            base += base * self.jitter * rng.random()
        if retry_after is not None:
            base = max(base, retry_after)
        return base


class CircuitBreaker:
    """A minimal closed / open / half-open circuit breaker.

    ``failure_threshold`` consecutive :meth:`record_failure` calls open
    the circuit: :meth:`allow` returns ``False`` (fail fast, no network
    I/O) until ``cooldown`` seconds pass, then exactly one probe is let
    through (half-open). The probe's outcome closes or re-opens the
    circuit. The clock is injectable so tests never sleep.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        #: Times the circuit transitioned closed -> open.
        self.opens = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        if self._probing or self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def retry_after(self) -> float:
        """Seconds until the circuit half-opens (0 when not open)."""
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether an attempt may proceed right now.

        In the half-open state only the first caller gets a probe slot;
        it must report back through :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self._opened_at is None:
            return True
        if self._probing:
            return False
        if self._clock() - self._opened_at >= self.cooldown:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """An attempt reached the service: close the circuit."""
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A transport-level failure; may open (or re-open) the circuit."""
        if self._probing or self._opened_at is not None:
            # Failed probe (or failure while open): restart the cooldown.
            self._opened_at = self._clock()
            self._probing = False
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self.opens += 1


#: Server error types worth retrying: the service is up but can't take
#: the request *right now*. Everything else the server answers with is
#: a real outcome and raises immediately.
_RETRYABLE_ERROR_TYPES = frozenset({"ServiceOverloadedError", "ServiceClosedError"})


def _error_from_payload(error: Any) -> ServiceError:
    """Rehydrate a structured ``ok: false`` error payload."""
    if not isinstance(error, dict):
        return ServiceError(f"malformed error payload: {error!r}")
    etype = error.get("type", "ServiceError")
    message = str(error.get("message", ""))
    if etype == "ServiceOverloadedError":
        try:
            retry_after = float(error.get("retry_after", 0.05))
        except (TypeError, ValueError):
            retry_after = 0.05
        return ServiceOverloadedError(message, retry_after=retry_after)
    if etype == "DeadlineExceededError":
        return DeadlineExceededError(message)
    if etype == "ServiceClosedError":
        return ServiceClosedError(message)
    if etype == "ProtocolError":
        return ProtocolError(message)
    return ServiceError(f"{etype}: {message}")


def _retryable(error: ServiceError) -> bool:
    return type(error).__name__ in _RETRYABLE_ERROR_TYPES


class _BaseClient:
    """State shared by the sync and asyncio clients."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        timeout: float = 10.0,
        seed: int = 0,
        stats: Optional[ClientStats] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.host = host
        self.port = port
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.timeout = timeout
        self.stats = stats if stats is not None else ClientStats()
        self._rng = random.Random(seed)
        self._seq = 0
        self._connected_once = False

    def _next_id(self) -> str:
        self._seq += 1
        return f"c{self._seq}"

    def _note_connect(self) -> None:
        if self._connected_once:
            self.stats.reconnects += 1
        self._connected_once = True

    def _sync_breaker_opens(self) -> None:
        self.stats.breaker_opens = self.breaker.opens

    def _decode_line(self, raw: bytes) -> Optional[dict]:
        """One wire line as a response dict, or ``None`` for garbage."""
        try:
            response = json.loads(raw.decode("utf-8", "replace"))
        except ValueError:
            self.stats.garbage_lines += 1
            return None
        if not isinstance(response, dict):
            self.stats.garbage_lines += 1
            return None
        return response

    def _minimize_payload(
        self,
        query: str,
        *,
        fmt: str = "xpath",
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        payload: dict = {"op": "minimize", "query": query, "format": fmt}
        if timeout is not None:
            payload["timeout"] = timeout
        if deadline is not None:
            payload["deadline"] = deadline
        return payload

    def _exhausted(self, attempts: int, last_error: Optional[BaseException]):
        self._sync_breaker_opens()
        return ServiceUnavailableError(
            f"request failed after {attempts} attempt(s): {last_error}",
            attempts=attempts,
            last_error=last_error,
        )


class ServiceClient(_BaseClient):
    """Synchronous resilient TCP client (one request in flight).

    Usage::

        with ServiceClient("127.0.0.1", 8777) as client:
            result = client.minimize("a/b[c][c]")
            print(result["minimized"])

    The connection is dialled lazily and redialled transparently after
    transport failures; see the module docstring for the retry /
    breaker / idempotency contract.
    """

    def __init__(self, host: str, port: int, **kwargs: Any) -> None:
        super().__init__(host, port, **kwargs)
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _drop_connection(self) -> None:
        for closeable in (self._file, self._sock):
            if closeable is not None:
                try:
                    closeable.close()
                except OSError:  # pragma: no cover - already dead
                    pass
        self._file = None
        self._sock = None

    def _ensure_connection(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        self._note_connect()

    # -- request path --------------------------------------------------

    def ping(self) -> dict:
        """Round-trip a ``ping`` (health check)."""
        return self.request({"op": "ping"})

    def server_stats(self) -> dict:
        """The service's flat counter dict (the ``stats`` op)."""
        return self.request({"op": "stats"})

    def server_faults(self) -> list:
        """Fired fault-injection events (the ``faults`` op)."""
        return self.request({"op": "faults"})["fired"]

    def minimize(
        self,
        query: str,
        *,
        fmt: str = "xpath",
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Minimize one query; the unified ``QueryResult.to_json`` dict."""
        return self.request(
            self._minimize_payload(query, fmt=fmt, timeout=timeout, deadline=deadline)
        )

    def request(self, payload: dict) -> dict:
        """Send one op with retries; the response's ``result`` object."""
        self.stats.requests += 1
        request_id = payload.get("id", self._next_id())
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if not self.breaker.allow():
                self.stats.breaker_short_circuits += 1
                self._sync_breaker_opens()
                if attempt == self.retry.max_attempts:
                    raise CircuitOpenError(
                        "circuit breaker open; request not sent",
                        retry_after=self.breaker.retry_after(),
                    )
                # Exponential floor, not bare retry_after: while a probe
                # is in flight retry_after is 0, and a zero sleep would
                # burn every remaining attempt in a busy loop.
                self._sleep(
                    self.retry.delay(
                        attempt,
                        retry_after=self.breaker.retry_after(),
                        rng=self._rng,
                    )
                )
                continue
            self.stats.attempts += 1
            wire = dict(payload)
            wire["id"] = request_id
            if attempt > 1:
                wire["retry"] = attempt - 1
                self.stats.retries += 1
            try:
                response = self._send_and_receive(wire, request_id)
            except (OSError, EOFError) as exc:
                # Transport failure: could not prove the service is up.
                last_error = exc
                self.breaker.record_failure()
                self._sync_breaker_opens()
                self._drop_connection()
                self._sleep(self.retry.delay(attempt, rng=self._rng))
                continue
            self.breaker.record_success()
            if response.get("ok"):
                result = response.get("result")
                return result if isinstance(result, dict) else {"value": result}
            error = _error_from_payload(response.get("error"))
            if not _retryable(error):
                raise error
            last_error = error
            self._sleep(
                self.retry.delay(
                    attempt,
                    retry_after=getattr(error, "retry_after", None),
                    rng=self._rng,
                )
            )
        raise self._exhausted(self.retry.max_attempts, last_error)

    def _send_and_receive(self, wire: dict, request_id: str) -> dict:
        self._ensure_connection()
        assert self._sock is not None and self._file is not None
        self._sock.sendall(json.dumps(wire).encode("utf-8") + b"\n")
        while True:
            raw = self._file.readline()
            if not raw:
                raise EOFError("connection closed awaiting response")
            response = self._decode_line(raw)
            if response is None:
                continue  # garbage line: skip, keep reading
            if response.get("id") != request_id:
                # A stale response to an earlier attempt of some request
                # (or a misroute): never deliver it to this caller.
                self.stats.duplicate_responses += 1
                continue
            return response

    def _sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.stats.backoff_seconds += seconds
            time.sleep(seconds)


class AsyncServiceClient(_BaseClient):
    """Asyncio resilient TCP client with pipelined requests.

    Many :meth:`request` coroutines may be in flight at once over one
    connection — a background reader task routes each response line to
    its request by id. Connection loss fails every pending request's
    current attempt; each retries independently (same id, ``retry``
    marker) on the redialled connection.

    Usage::

        async with AsyncServiceClient("127.0.0.1", 8777) as client:
            results = await asyncio.gather(
                *(client.minimize(q) for q in queries)
            )
    """

    def __init__(self, host: str, port: int, **kwargs: Any) -> None:
        super().__init__(host, port, **kwargs)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: dict[str, asyncio.Future] = {}
        self._conn_lock: Optional[asyncio.Lock] = None

    # -- lifecycle -----------------------------------------------------

    async def aclose(self) -> None:
        """Drop the connection and fail pending attempts (idempotent)."""
        await self._drop_connection(EOFError("client closed"))

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def _drop_connection(self, exc: BaseException) -> None:
        task, self._reader_task = self._reader_task, None
        writer, self._writer = self._writer, None
        self._reader = None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _ensure_connection(self) -> None:
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        async with self._conn_lock:
            if self._writer is not None:
                return
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.ensure_future(self._read_loop(reader))
            self._note_connect()

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        """Route every incoming line to its pending request by id."""
        exc: BaseException = EOFError("connection closed by server")
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                response = self._decode_line(raw)
                if response is None:
                    continue
                future = self._pending.pop(str(response.get("id")), None)
                if future is None:
                    self.stats.duplicate_responses += 1
                    continue
                if not future.done():
                    future.set_result(response)
        except (OSError, asyncio.IncompleteReadError) as err:  # pragma: no cover
            exc = err
        except asyncio.CancelledError:
            return  # aclose() path: futures were already failed
        # EOF: fail pending attempts so their retry loops redial.
        if self._reader_task is asyncio.current_task():
            self._reader_task = None
        await self._drop_connection(exc)

    # -- request path --------------------------------------------------

    async def ping(self) -> dict:
        """Round-trip a ``ping`` (health check)."""
        return await self.request({"op": "ping"})

    async def server_stats(self) -> dict:
        """The service's flat counter dict (the ``stats`` op)."""
        return await self.request({"op": "stats"})

    async def server_faults(self) -> list:
        """Fired fault-injection events (the ``faults`` op)."""
        return (await self.request({"op": "faults"}))["fired"]

    async def minimize(
        self,
        query: str,
        *,
        fmt: str = "xpath",
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Minimize one query; the unified ``QueryResult.to_json`` dict."""
        return await self.request(
            self._minimize_payload(query, fmt=fmt, timeout=timeout, deadline=deadline)
        )

    async def request(self, payload: dict) -> dict:
        """Send one op with retries; the response's ``result`` object."""
        self.stats.requests += 1
        request_id = str(payload.get("id", self._next_id()))
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if not self.breaker.allow():
                self.stats.breaker_short_circuits += 1
                self._sync_breaker_opens()
                if attempt == self.retry.max_attempts:
                    raise CircuitOpenError(
                        "circuit breaker open; request not sent",
                        retry_after=self.breaker.retry_after(),
                    )
                # Exponential floor, not bare retry_after: while a probe
                # is in flight retry_after is 0, and a zero sleep would
                # burn every remaining attempt in a busy loop.
                await self._backoff(
                    self.retry.delay(
                        attempt,
                        retry_after=self.breaker.retry_after(),
                        rng=self._rng,
                    )
                )
                continue
            self.stats.attempts += 1
            wire = dict(payload)
            wire["id"] = request_id
            if attempt > 1:
                wire["retry"] = attempt - 1
                self.stats.retries += 1
            try:
                response = await self._send_and_await(wire, request_id)
            except (OSError, EOFError, asyncio.TimeoutError) as exc:
                last_error = exc
                self.breaker.record_failure()
                self._sync_breaker_opens()
                self._pending.pop(request_id, None)
                if not isinstance(exc, asyncio.TimeoutError):
                    await self._drop_connection(EOFError(str(exc)))
                await self._backoff(self.retry.delay(attempt, rng=self._rng))
                continue
            self.breaker.record_success()
            if response.get("ok"):
                result = response.get("result")
                return result if isinstance(result, dict) else {"value": result}
            error = _error_from_payload(response.get("error"))
            if not _retryable(error):
                raise error
            last_error = error
            await self._backoff(
                self.retry.delay(
                    attempt,
                    retry_after=getattr(error, "retry_after", None),
                    rng=self._rng,
                )
            )
        raise self._exhausted(self.retry.max_attempts, last_error)

    async def _send_and_await(self, wire: dict, request_id: str) -> dict:
        await self._ensure_connection()
        assert self._writer is not None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(json.dumps(wire).encode("utf-8") + b"\n")
        await self._writer.drain()
        return await asyncio.wait_for(future, self.timeout)

    async def _backoff(self, seconds: float) -> None:
        if seconds > 0:
            self.stats.backoff_seconds += seconds
            await asyncio.sleep(seconds)
