"""Seeded, deterministic fault injection for the minimization stack.

Partial failure is a first-class input here, not an afterthought: a
:class:`FaultPlan` names *where* (an injection point), *what* (a fault
kind), and *when* (counter-based hit indices — never wall-clock
randomness) faults fire, and a :class:`FaultInjector` arms that plan at
runtime. Because firing is keyed on per-point arm counters, the same
plan replays the same fault sequence whether the stack runs in-process
(``MinimizeOptions(fault_plan=...)``) or behind ``repro-serve
--fault-plan`` — which is what makes chaos failures reproducible from a
single seed.

Injection points and the fault kinds they understand:

=================== ============================== =========================
point               kinds                          armed by
=================== ============================== =========================
``worker.chunk``    ``crash``, ``slow``            :func:`repro.batch.executor.process_map`,
                                                   once per pooled chunk; ``crash``
                                                   SIGKILLs the worker mid-chunk,
                                                   ``slow`` sleeps ``delay`` seconds
                                                   inside the worker
``batch.run``       ``slow``                       :meth:`repro.batch.minimizer.BatchMinimizer.minimize_all`,
                                                   once per batch (a slow backend)
``batcher.flush``   ``stall``                      the service micro-batcher, once per
                                                   flush (a stalled queue)
``executor.pickle`` ``fail``                       :func:`~repro.batch.executor.process_map`,
                                                   once per payload (forces the
                                                   pickle-fallback path)
``protocol.send``   ``truncate``, ``garbage``,     the JSON-lines protocol, once per
                    ``broken_pipe``                response write
``shard.kill``      ``kill``                       :class:`repro.shard.ShardManager`,
                                                   once per dispatched request;
                                                   SIGKILLs the target shard
                                                   process (the manager respawns
                                                   it and requeues lost work)
``store.write``     ``fail``, ``slow``             the persistent store's
                                                   write-behind thread
                                                   (:class:`repro.store.PersistentStore`),
                                                   once per commit batch; ``fail``
                                                   drops the batch (counted
                                                   degradation — future misses,
                                                   never an error), ``slow``
                                                   sleeps ``delay`` seconds
                                                   before the commit
``store.compact``   ``kill``, ``fail``             :meth:`repro.store.PersistentStore.compact`,
                                                   once per compaction, fired
                                                   *mid-transaction*; ``kill``
                                                   SIGKILLs the process (the
                                                   WAL rolls back — the next
                                                   open recovers the
                                                   pre-compaction records
                                                   byte-identically), ``fail``
                                                   rolls back and counts
``store.tamper``    ``drop``, ``retype``           the persistent store's
                                                   write-behind thread, once
                                                   per committed ``min``
                                                   record; mutates the replay
                                                   recipe *before* checksum
                                                   computation — a
                                                   checksum-valid but
                                                   semantically wrong record
                                                   (the certification layer's
                                                   adversary; see
                                                   :mod:`repro.certify`)
``cache.poison``    ``drop``, ``retype``           :meth:`repro.batch.minimizer.BatchMinimizer.minimize_all`,
                                                   once per fresh replay-memo
                                                   insertion; mutates the
                                                   in-memory memo entry after
                                                   the store write, so later
                                                   fingerprint-replay hits
                                                   would serve a wrong answer
                                                   unless certified
=================== ============================== =========================

The minimal-query uniqueness theorem (Amer-Yahia et al., SIGMOD 2001)
makes byte-identical differential checks a perfect chaos oracle: under
every plan the served outputs must equal the serial ``minimize`` loop's
exactly, or something was lost, duplicated, or corrupted along the way.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence

__all__ = [
    "FAULT_POINTS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
]

#: Every injection point and the fault kinds it understands.
FAULT_POINTS: dict[str, tuple[str, ...]] = {
    "worker.chunk": ("crash", "slow"),
    "batch.run": ("slow",),
    "batcher.flush": ("stall",),
    "executor.pickle": ("fail",),
    "protocol.send": ("truncate", "garbage", "broken_pipe"),
    "shard.kill": ("kill",),
    "store.write": ("fail", "slow"),
    "store.compact": ("kill", "fail"),
    "store.tamper": ("drop", "retype"),
    "cache.poison": ("drop", "retype"),
}

#: The kinds :meth:`FaultPlan.seeded` draws from by default — one fault
#: of each failure family the chaos suite exercises. ``worker.crash`` is
#: excluded because it only fires on the pooled path (``jobs > 1``);
#: seeded plans must stay meaningful at any ``jobs`` setting.
_SEEDED_KINDS: tuple[tuple[str, str], ...] = (
    ("batch.run", "slow"),
    ("batcher.flush", "stall"),
    ("protocol.send", "garbage"),
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire ``kind`` at ``point`` on chosen hits.

    Attributes
    ----------
    point:
        Injection-point name (a :data:`FAULT_POINTS` key).
    kind:
        Fault kind understood by that point.
    at:
        1-based arm-counter indices at which this spec fires (the first
        time the point is armed is hit 1).
    every:
        Additionally fire on every ``every``-th hit (0 disables).
    delay:
        Sleep seconds for the ``slow``/``stall`` kinds.
    """

    point: str
    kind: str
    at: tuple[int, ...] = ()
    every: int = 0
    delay: float = 0.05

    def __post_init__(self) -> None:
        kinds = FAULT_POINTS.get(self.point)
        if kinds is None:
            raise ValueError(
                f"unknown injection point {self.point!r} "
                f"(expected one of {sorted(FAULT_POINTS)})"
            )
        if self.kind not in kinds:
            raise ValueError(
                f"point {self.point!r} does not understand kind {self.kind!r} "
                f"(expected one of {kinds})"
            )
        if self.every < 0:
            raise ValueError(f"every must be >= 0, got {self.every}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        object.__setattr__(self, "at", tuple(sorted(set(self.at))))
        if any(hit < 1 for hit in self.at):
            raise ValueError(f"hit indices are 1-based, got {self.at}")

    def fires(self, hit: int) -> bool:
        """Whether this spec fires on the ``hit``-th arming of its point."""
        return hit in self.at or bool(self.every and hit % self.every == 0)

    def to_json(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "at": list(self.at),
            "every": self.every,
            "delay": self.delay,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ValueError(f"fault spec must be a JSON object, got {data!r}")
        unknown = set(data) - {"point", "kind", "at", "every", "delay"}
        if unknown:
            raise ValueError(f"unknown fault-spec fields {sorted(unknown)}")
        return cls(
            point=data["point"],
            kind=data["kind"],
            at=tuple(data.get("at", ())),
            every=int(data.get("every", 0)),
            delay=float(data.get("delay", 0.05)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec` entries (plus provenance).

    A plan is pure data: it can be embedded in
    :class:`~repro.api.MinimizeOptions`, serialized for ``repro-serve
    --fault-plan``, and replayed — the stateful arm counters live in the
    :class:`FaultInjector` built from it.
    """

    specs: tuple[FaultSpec, ...] = ()
    #: Generator seed when the plan came from :meth:`seeded` (provenance
    #: only; firing never consults it again).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        kinds: Optional[Sequence[tuple[str, str]]] = None,
        window: int = 6,
        faults_per_kind: int = 1,
        delay: float = 0.02,
    ) -> "FaultPlan":
        """A deterministic plan generated from ``seed``.

        For every ``(point, kind)`` pair (default: one per failure
        family safe at any ``jobs`` setting), ``faults_per_kind`` hit
        indices are drawn from ``1..window`` with ``random.Random(seed)``
        — pure pseudo-randomness, so the same seed always yields the
        same plan and therefore the same fault sequence.
        """
        rng = random.Random(seed)
        chosen = tuple(kinds) if kinds is not None else _SEEDED_KINDS
        specs = []
        for point, kind in chosen:
            per = min(faults_per_kind, window)
            at = tuple(sorted(rng.sample(range(1, window + 1), k=per)))
            specs.append(FaultSpec(point=point, kind=kind, at=at, delay=delay))
        return cls(specs=tuple(specs), seed=seed)

    def to_json(self) -> dict:
        return {"seed": self.seed, "specs": [s.to_json() for s in self.specs]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {data!r}")
        unknown = set(data) - {"seed", "specs"}
        if unknown:
            raise ValueError(f"unknown fault-plan fields {sorted(unknown)}")
        specs = tuple(FaultSpec.from_json(s) for s in data.get("specs", ()))
        return cls(specs=specs, seed=data.get("seed"))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--fault-plan`` argument forms.

        Accepts ``"seed:<int>"`` (a :meth:`seeded` plan), a JSON object
        (:meth:`to_json` shape), or a JSON array of fault specs.
        """
        text = text.strip()
        if text.startswith("seed:"):
            try:
                return cls.seeded(int(text[len("seed:"):]))
            except ValueError as exc:
                raise ValueError(f"bad fault-plan seed {text!r}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is neither 'seed:<int>' nor JSON: {exc}") from exc
        if isinstance(data, list):
            return cls(specs=tuple(FaultSpec.from_json(s) for s in data))
        return cls.from_json(data)


class FaultEvent(NamedTuple):
    """One fired fault: where, what, and on which arm-counter hit."""

    point: str
    kind: str
    hit: int


class FaultInjector:
    """The runtime arm of a :class:`FaultPlan`.

    Each layer calls :meth:`draw` when execution passes one of its
    injection points; the injector bumps that point's arm counter and
    returns the matching :class:`FaultSpec` when the plan says the fault
    fires (``None`` otherwise — the overwhelmingly common case). Firing
    depends only on the counters, so a replayed request stream replays
    the fault sequence. Thread-safe: the batch layer arms points from
    worker-dispatch threads while the service arms its own on the event
    loop.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Every fault fired, in firing order.
        self.fired: list[FaultEvent] = []

    @property
    def faults_injected(self) -> int:
        """Total faults fired so far."""
        return len(self.fired)

    def draw(self, point: str) -> Optional[FaultSpec]:
        """Arm ``point`` once; the spec to execute if a fault fires."""
        if not self.plan.specs:
            return None
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            for spec in self.plan.specs:
                if spec.point == point and spec.fires(hit):
                    self.fired.append(FaultEvent(point, spec.kind, hit))
                    return spec
        return None

    def events(self) -> list[FaultEvent]:
        """A snapshot of the fired faults, in firing order."""
        with self._lock:
            return list(self.fired)
