"""Resilience layer: deterministic fault injection + hardened clients.

:mod:`repro.resilience.faults` plans and arms seeded, counter-based
fault injection throughout the stack (chaos testing, failure replay);
:mod:`repro.resilience.client` provides the retrying, circuit-broken
sync/async clients for the JSON-lines service. See DESIGN.md §6.
"""

from .client import (
    AsyncServiceClient,
    CircuitBreaker,
    ClientStats,
    RetryPolicy,
    ServiceClient,
)
from .faults import FAULT_POINTS, FaultEvent, FaultInjector, FaultPlan, FaultSpec

__all__ = [
    "AsyncServiceClient",
    "CircuitBreaker",
    "ClientStats",
    "FAULT_POINTS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "ServiceClient",
]
