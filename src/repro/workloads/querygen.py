"""Query workload generators for tests and the paper's experiments.

Provides both generic random tree-pattern generators (for property-based
testing) and the purpose-built constructions behind each plot of the
evaluation section:

==============================  =========================================
Generator                       Experiment
==============================  =========================================
:func:`chain_query` +           Figure 7(b) — 101-node query where every
:func:`chain_constraints`       node but the root is redundant under 100
                                required-child constraints
:func:`redundancy_query`        Figure 7(a) — fixed-size query with
                                ``red_nodes`` redundant leaves, each with
                                redundancy degree ``red_degree``
:func:`right_deep_cdm_query` /  Figure 8(b) — all-edges-redundant queries
:func:`bushy_cdm_query` +       of three shapes; under
:func:`cyclic_chain_            :func:`cyclic_chain_constraints` only the
constraints`                    marked root survives CDM
:func:`fanout_cdm_query` +      Figure 8(b), third series — wide nodes
:func:`fanout_constraints`      whose children discharge via co-occurrence
                                chains (the quadratic-in-fanout regime)
:func:`equal_removal_query`     Figure 9(a) — CDM and ACIM remove exactly
                                the same node set
:func:`half_removal_query`      Figure 9(b) — CDM removes half of what
                                ACIM can (the other half needs global
                                containment reasoning)
==============================  =========================================

All generators are deterministic given their arguments (and ``seed``
where applicable).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..constraints.model import (
    IntegrityConstraint,
    co_occurrence,
    required_child,
    required_descendant,
)
from ..core.edges import EdgeKind
from ..core.node import PatternNode
from ..core.pattern import TreePattern

__all__ = [
    "random_query",
    "duplicate_random_branch",
    "chain_query",
    "chain_constraints",
    "redundancy_query",
    "right_deep_cdm_query",
    "bushy_cdm_query",
    "cyclic_chain_constraints",
    "fanout_cdm_query",
    "fanout_constraints",
    "equal_removal_query",
    "half_removal_query",
]

#: Default type universe for the cyclic-type constructions.
TYPE_CYCLE = 110


def _type(i: int, cycle: int = TYPE_CYCLE) -> str:
    return f"T{i % cycle}"


# ---------------------------------------------------------------------------
# Generic random patterns (property tests)
# ---------------------------------------------------------------------------

def random_query(
    size: int,
    *,
    types: Optional[Sequence[str]] = None,
    max_fanout: int = 3,
    descendant_probability: float = 0.4,
    star_anywhere: bool = True,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> TreePattern:
    """A random tree pattern of exactly ``size`` nodes.

    Types are drawn uniformly from ``types`` (default: a pool of
    ``max(3, size // 2)`` names, small enough that repeated types — the
    hard case for minimization — occur often). The output marker lands on
    a uniformly random node when ``star_anywhere`` (else on the root).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    r = rng if rng is not None else random.Random(seed)
    pool = list(types) if types else [f"t{i}" for i in range(max(3, size // 2))]
    pattern = TreePattern(r.choice(pool))
    nodes = [pattern.root]
    open_nodes = [pattern.root]
    for _ in range(size - 1):
        parent = r.choice(open_nodes)
        edge = (
            EdgeKind.DESCENDANT
            if r.random() < descendant_probability
            else EdgeKind.CHILD
        )
        node = pattern.add_child(parent, r.choice(pool), edge)
        nodes.append(node)
        open_nodes.append(node)
        if len(parent.children) >= max_fanout:
            open_nodes.remove(parent)
    target = r.choice(nodes) if star_anywhere else pattern.root
    target.is_output = True
    pattern.validate()
    return pattern


def duplicate_random_branch(
    pattern: TreePattern, *, seed: Optional[int] = None, rng: Optional[random.Random] = None
) -> TreePattern:
    """A copy of ``pattern`` with one random subtree duplicated under its
    parent — guaranteeing at least one CIM-redundant branch. Used to make
    random inputs where plain CIM has work to do."""
    r = rng if rng is not None else random.Random(seed)
    clone = pattern.copy()
    candidates = [n for n in clone.nodes() if not n.is_root]
    if not candidates:
        raise ValueError("cannot duplicate a branch of a single-node pattern")
    branch = r.choice(candidates)

    def copy_subtree(node: PatternNode, parent: PatternNode) -> None:
        twin = clone.add_child(parent, node.type, node.edge)
        for child in node.children:
            copy_subtree(child, twin)

    copy_subtree(branch, branch.parent)
    return clone


# ---------------------------------------------------------------------------
# Figure 7: ACIM workloads
# ---------------------------------------------------------------------------

def chain_query(size: int, *, edge: EdgeKind = EdgeKind.CHILD) -> TreePattern:
    """A path query ``T0* / T1 / ... / T(size-1)`` with distinct types.

    With :func:`chain_constraints` every node but the (marked) root is
    redundant — the Figure 7(b) configuration (101 nodes, 100
    constraints)."""
    pattern = TreePattern(f"T0", root_is_output=True)
    node = pattern.root
    for i in range(1, size):
        node = pattern.add_child(node, f"T{i}", edge)
    return pattern


def chain_constraints(size: int, *, edge: EdgeKind = EdgeKind.CHILD) -> list[IntegrityConstraint]:
    """``T(i) -> T(i+1)`` for each edge of :func:`chain_query` (or the
    ``->>`` forms for a descendant-edge chain)."""
    make = required_child if edge is EdgeKind.CHILD else required_descendant
    return [make(f"T{i}", f"T{i + 1}") for i in range(size - 1)]


def redundancy_query(
    size: int,
    red_nodes: int,
    red_degree: int,
    *,
    seed: Optional[int] = None,
) -> tuple[TreePattern, list[IntegrityConstraint]]:
    """The Figure 7(a) construction: a ``size``-node query containing
    ``red_nodes`` IC-redundant leaf positions, each duplicated
    ``red_degree`` times (the *degree of redundancy*), so the total
    number of redundant nodes is ``red_nodes * red_degree``.

    Returns the query plus the constraints that make those leaves
    redundant (``Spine_i -> Red_i``). The non-redundant part is a spine of
    ``size - red_nodes * red_degree`` distinct-type nodes.
    """
    total_redundant = red_nodes * red_degree
    spine_len = size - total_redundant
    if spine_len < 1:
        raise ValueError(
            f"size={size} too small for {red_nodes} x {red_degree} redundant nodes"
        )
    if red_nodes > 0 and spine_len < red_nodes:
        raise ValueError("need at least one spine node per redundant position")
    rng = random.Random(seed)
    pattern = TreePattern("S0", root_is_output=True)
    spine = [pattern.root]
    for i in range(1, spine_len):
        spine.append(pattern.add_child(spine[-1], f"S{i}", EdgeKind.CHILD))
    constraints: list[IntegrityConstraint] = []
    anchors = rng.sample(spine, red_nodes) if red_nodes else []
    for j, anchor in enumerate(anchors):
        leaf_type = f"R{j}"
        constraints.append(required_child(anchor.type, leaf_type))
        for _ in range(red_degree):
            pattern.add_child(anchor, leaf_type, EdgeKind.CHILD)
    return pattern, constraints


# ---------------------------------------------------------------------------
# Figure 8(b): CDM shape workloads
# ---------------------------------------------------------------------------

def cyclic_chain_constraints(cycle: int = TYPE_CYCLE) -> list[IntegrityConstraint]:
    """``T(i) -> T((i+1) mod cycle)`` — the fixed 110-constraint set under
    which every edge of the depth-typed queries below is redundant."""
    return [required_child(_type(i, cycle), _type(i + 1, cycle)) for i in range(cycle)]


def right_deep_cdm_query(size: int, *, cycle: int = TYPE_CYCLE) -> TreePattern:
    """A right-deep (path) query typed by depth modulo ``cycle``; under
    :func:`cyclic_chain_constraints` only the marked root survives CDM."""
    pattern = TreePattern(_type(0, cycle), root_is_output=True)
    node = pattern.root
    for depth in range(1, size):
        node = pattern.add_child(node, _type(depth, cycle), EdgeKind.CHILD)
    return pattern


def bushy_cdm_query(size: int, *, fanout: int = 2, cycle: int = TYPE_CYCLE) -> TreePattern:
    """A bushy (balanced, breadth-first-filled) query typed by depth
    modulo ``cycle``; same full-reduction property as the right-deep
    variant."""
    pattern = TreePattern(_type(0, cycle), root_is_output=True)
    frontier = [pattern.root]
    produced = 1
    while produced < size:
        next_frontier: list[PatternNode] = []
        for parent in frontier:
            for _ in range(fanout):
                if produced >= size:
                    break
                depth = parent.depth + 1
                child = pattern.add_child(parent, _type(depth, cycle), EdgeKind.CHILD)
                next_frontier.append(child)
                produced += 1
            if produced >= size:
                break
        frontier = next_frontier or frontier
    return pattern


def fanout_cdm_query(fanout: int, *, levels: int = 1) -> TreePattern:
    """The quadratic-in-fanout CDM workload: each internal node has
    ``fanout`` c-children of pairwise *distinct* types, removable only
    through co-occurrence chains (:func:`fanout_constraints`) — so CDM
    compares argument pairs at each node.

    ``levels=1`` gives a star of ``fanout + 1`` nodes; more levels repeat
    the construction under the first child of each group.
    """
    pattern = TreePattern("A", root_is_output=True)

    def populate(parent: PatternNode, level: int) -> None:
        children = [
            pattern.add_child(parent, f"C{level}_{j}", EdgeKind.CHILD)
            for j in range(fanout)
        ]
        if level + 1 < levels and children:
            populate(children[0], level + 1)

    populate(pattern.root, 0)
    return pattern


def fanout_constraints(fanout: int, *, levels: int = 1) -> list[IntegrityConstraint]:
    """Constraints for :func:`fanout_cdm_query`: the group's first child
    is required (so the whole group discharges), and each child co-occurs
    with the next — closure turns the chain into the pairwise matrix CDM
    probes."""
    out: list[IntegrityConstraint] = []
    for level in range(levels):
        parent_type = "A" if level == 0 else f"C{level - 1}_0"
        out.append(required_child(parent_type, f"C{level}_0"))
        for j in range(fanout - 1):
            out.append(co_occurrence(f"C{level}_{j}", f"C{level}_{j + 1}"))
    return out


# ---------------------------------------------------------------------------
# Figure 9: CDM vs ACIM comparisons
# ---------------------------------------------------------------------------

def equal_removal_query(size: int) -> tuple[TreePattern, list[IntegrityConstraint]]:
    """Figure 9(a) construction: a query where CDM and ACIM, run
    separately, remove exactly the same nodes — every redundancy is a
    directly-IC-implied leaf hanging off a spine of distinct types.

    Half the nodes (rounded down) are redundant leaves; returns the query
    and its constraints.
    """
    if size < 2:
        raise ValueError("size must be >= 2")
    n_leaves = size // 2
    spine_len = size - n_leaves
    pattern = TreePattern("S0", root_is_output=True)
    spine = [pattern.root]
    for i in range(1, spine_len):
        spine.append(pattern.add_child(spine[-1], f"S{i}", EdgeKind.CHILD))
    constraints: list[IntegrityConstraint] = []
    for j in range(n_leaves):
        anchor = spine[j % len(spine)]
        leaf_type = f"L{j}"
        pattern.add_child(anchor, leaf_type, EdgeKind.CHILD)
        constraints.append(required_child(anchor.type, leaf_type))
    return pattern, constraints


def half_removal_query(size: int) -> tuple[TreePattern, list[IntegrityConstraint]]:
    """Figure 9(b) construction: of the removable nodes, half are local
    (IC-implied leaves — CDM catches them) and half are duplicated
    *branches* only global containment reasoning (ACIM/CIM) can fold.

    Returns the query and the constraints for the local half.
    """
    if size < 6:
        raise ValueError("size must be >= 6")
    quarter = max(1, size // 4)          # local redundant leaves
    dup_pairs = max(1, size // 4)        # each pair = branch + duplicate
    spine_len = size - quarter - 2 * dup_pairs
    if spine_len < 2:
        spine_len = 2
    pattern = TreePattern("S0", root_is_output=True)
    spine = [pattern.root]
    for i in range(1, spine_len):
        spine.append(pattern.add_child(spine[-1], f"S{i}", EdgeKind.CHILD))
    constraints: list[IntegrityConstraint] = []
    # Local half: directly implied leaves (CDM removes these).
    for j in range(quarter):
        anchor = spine[j % len(spine)]
        leaf_type = f"L{j}"
        pattern.add_child(anchor, leaf_type, EdgeKind.CHILD)
        constraints.append(required_child(anchor.type, leaf_type))
    # Global half: duplicated d-child branches (only M-steps fold these;
    # they are invisible to CDM's local rules).
    for j in range(dup_pairs):
        anchor = spine[j % len(spine)]
        branch_type = f"B{j}"
        pattern.add_child(anchor, branch_type, EdgeKind.DESCENDANT)
        pattern.add_child(anchor, branch_type, EdgeKind.DESCENDANT)
    return pattern, constraints
