"""Executable reconstructions of the paper's running examples.

Every query of Figure 2 (a)–(j), the integrity constraints the narrative
applies to them, and a Figure 5-style CDM walk-through. Where the figure
is ambiguous in the source text, DESIGN.md documents the reconstruction
argument (notably Figure 2(a), whose ``Title`` must sit under the
*unstarred* ``Article`` for the paper's minimality claims to hold).

These are used by ``tests/test_paper_examples.py`` to check every
minimization step the paper walks through, and make handy demo inputs.
"""

from __future__ import annotations

from ..constraints.model import (
    IntegrityConstraint,
    co_occurrence,
    required_child,
    required_descendant,
)
from ..core.chase import augment
from ..core.pattern import TreePattern

__all__ = [
    "figure2_a",
    "figure2_b",
    "figure2_c",
    "figure2_d",
    "figure2_e",
    "figure2_f",
    "figure2_g",
    "figure2_h",
    "figure2_i",
    "figure2_j",
    "ARTICLE_TITLE",
    "SECTION_PARAGRAPH",
    "FIGURE2_FG_CONSTRAINTS",
    "figure5_query",
    "FIGURE5_CONSTRAINTS",
]

#: ``Article -> Title`` (used for (a) → (b)).
ARTICLE_TITLE: IntegrityConstraint = required_child("Article", "Title")
#: ``Section ->> Paragraph`` (used for (b) → (d) and (d) → (e)).
SECTION_PARAGRAPH: IntegrityConstraint = required_descendant("Section", "Paragraph")
#: The co-occurrence pair for (f) → (g).
FIGURE2_FG_CONSTRAINTS: list[IntegrityConstraint] = [
    co_occurrence("PermEmp", "Employee"),
    co_occurrence("DBproject", "Project"),
]


def figure2_a() -> TreePattern:
    """Figure 2(a): minimal without ICs; ``Article -> Title`` makes the
    ``Title`` leaf redundant."""
    return TreePattern.build(
        ("Articles", [
            ("/", ("Article", [("/", "Title"), ("//", "Paragraph")])),
            ("/", ("Article*", [("//", ("Section", [("//", "Paragraph")]))])),
        ])
    )


def figure2_b() -> TreePattern:
    """Figure 2(b) = (a) minus ``Title``; CIM-reducible to (c)."""
    return TreePattern.build(
        ("Articles", [
            ("/", ("Article", [("//", "Paragraph")])),
            ("/", ("Article*", [("//", ("Section", [("//", "Paragraph")]))])),
        ])
    )


def figure2_c() -> TreePattern:
    """Figure 2(c): the minimal form of (b) without ICs."""
    return TreePattern.build(
        ("Articles", [("/", ("Article*", [("//", ("Section", [("//", "Paragraph")]))]))])
    )


def figure2_d() -> TreePattern:
    """Figure 2(d) = (b) reduced with ``Section ->> Paragraph``; minimal
    without ICs, but not minimal under that IC (augmentation needed)."""
    return TreePattern.build(
        ("Articles", [
            ("/", ("Article", [("//", "Paragraph")])),
            ("/", ("Article*", [("//", "Section")])),
        ])
    )


def figure2_e() -> TreePattern:
    """Figure 2(e): the unique minimum of (a)–(d) under both ICs."""
    return TreePattern.build(
        ("Articles", [("/", ("Article*", [("//", "Section")]))])
    )


def figure2_f() -> TreePattern:
    """Figure 2(f): organizations with an employee managing a project and
    a permanent employee managing a database project."""
    return TreePattern.build(
        ("Organization*", [
            ("//", ("Employee", [("//", "Project")])),
            ("//", ("PermEmp", [("//", "DBproject")])),
        ])
    )


def figure2_g() -> TreePattern:
    """Figure 2(g): (f) minimized under the co-occurrence ICs."""
    return TreePattern.build(
        ("Organization*", [("//", ("PermEmp", [("//", "DBproject")]))])
    )


def figure2_h() -> TreePattern:
    """Figure 2(h): CIM-reducible to (i) with no ICs at all."""
    return TreePattern.build(
        ("OrgUnit*", [
            ("/", ("Dept", [("/", ("Researcher", [("//", "DBProject")]))])),
            ("//", ("Dept", [("//", "DBProject")])),
        ])
    )


def figure2_i() -> TreePattern:
    """Figure 2(i): the minimal form of (h)."""
    return TreePattern.build(
        ("OrgUnit*", [
            ("/", ("Dept", [("/", ("Researcher", [("//", "DBProject")]))])),
        ])
    )


def figure2_j() -> TreePattern:
    """Figure 2(j): (b) augmented with ``Section ->> Paragraph`` — the
    extra (temporary) ``Paragraph`` under ``Section`` shown dotted in the
    paper."""
    return augment(figure2_b(), [SECTION_PARAGRAPH])


# ---------------------------------------------------------------------------
# Figure 5 (CDM walk-through)
# ---------------------------------------------------------------------------

def figure5_query() -> TreePattern:
    """A Figure 5-style CDM example: three branches whose redundancies
    cascade up to leave only the marked root.

    The source figure's type subscripts are partially illegible; this
    reconstruction exercises the same propagation/minimization steps the
    narrative describes (leaf removal by required child/descendant, the
    ``~t`` → ``t`` relaxation, and the co-occurrence rules at the root).
    """
    return TreePattern.build(
        ("t1*", [
            ("/", ("t2", [("//", ("t5", [("/", "t6")]))])),
            ("//", ("t3", [("/", "t7")])),
            ("/", ("t4", [("//", "t8")])),
        ])
    )


#: Constraints driving :func:`figure5_query` down to its root.
FIGURE5_CONSTRAINTS: list[IntegrityConstraint] = [
    required_child("t5", "t6"),
    required_child("t3", "t7"),
    required_descendant("t4", "t8"),
    required_descendant("t2", "t5"),
    co_occurrence("t2", "t4"),
    co_occurrence("t2", "t3"),
    required_child("t1", "t2"),
]
