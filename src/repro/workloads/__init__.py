"""Workloads: random/structured query generators, constraint generators,
and the paper's running examples."""

from .querygen import (
    bushy_cdm_query,
    chain_constraints,
    chain_query,
    cyclic_chain_constraints,
    duplicate_random_branch,
    equal_removal_query,
    fanout_cdm_query,
    fanout_constraints,
    half_removal_query,
    random_query,
    redundancy_query,
    right_deep_cdm_query,
)
from .arrival import (
    ARRIVAL_PROCESSES,
    arrival_workload,
    burst_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from .batchgen import BATCH_WORKLOAD_KINDS, batch_workload, chaos_workload, isomorphic_shuffle
from .icgen import relevant_constraints
from . import paper_queries

__all__ = [
    "ARRIVAL_PROCESSES",
    "BATCH_WORKLOAD_KINDS",
    "arrival_workload",
    "batch_workload",
    "burst_arrivals",
    "chaos_workload",
    "diurnal_arrivals",
    "isomorphic_shuffle",
    "poisson_arrivals",
    "uniform_arrivals",
    "bushy_cdm_query",
    "chain_constraints",
    "chain_query",
    "cyclic_chain_constraints",
    "duplicate_random_branch",
    "equal_removal_query",
    "fanout_cdm_query",
    "fanout_constraints",
    "half_removal_query",
    "random_query",
    "redundancy_query",
    "right_deep_cdm_query",
    "relevant_constraints",
    "paper_queries",
]
