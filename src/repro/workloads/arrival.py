"""Arrival-process generators for the serving-layer experiments.

The service benchmarks replay a query stream against
:class:`~repro.service.MinimizationService` — which needs not just the
queries (:func:`~repro.workloads.batchgen.batch_workload` provides
those) but *when* each one arrives. This module generates deterministic
arrival timelines:

* :func:`poisson_arrivals` — a Poisson process (i.i.d. exponential
  gaps), the standard open-system traffic model;
* :func:`uniform_arrivals` — evenly spaced arrivals, the deterministic
  lower-variance baseline;
* :func:`arrival_workload` — queries + constraints + arrival offsets in
  one call, ready to drive the service.

All generators are deterministic given their arguments.
"""

from __future__ import annotations

import random
from typing import Optional

from ..constraints.model import IntegrityConstraint
from ..core.pattern import TreePattern
from .batchgen import batch_workload

__all__ = ["poisson_arrivals", "uniform_arrivals", "arrival_workload"]


def poisson_arrivals(n: int, rate: float, *, seed: int = 0) -> list[float]:
    """``n`` arrival offsets (seconds from stream start, nondecreasing)
    of a Poisson process with ``rate`` arrivals/second.

    Gaps are i.i.d. exponential with mean ``1/rate``; the first request
    arrives after one gap, not at time zero.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = random.Random(seed)
    offsets: list[float] = []
    now = 0.0
    for _ in range(n):
        now += rng.expovariate(rate)
        offsets.append(now)
    return offsets


def uniform_arrivals(n: int, rate: float) -> list[float]:
    """``n`` evenly spaced arrival offsets at ``rate`` arrivals/second
    (the deterministic baseline; first arrival after one gap)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    gap = 1.0 / rate
    return [gap * (i + 1) for i in range(n)]


def arrival_workload(
    n_queries: int,
    rate: float,
    *,
    kind: str = "fig8",
    distinct: int = 8,
    size: int = 40,
    seed: int = 0,
    process: str = "poisson",
) -> tuple[list[TreePattern], list[float], list[IntegrityConstraint]]:
    """A timed query stream: ``(queries, arrival_offsets, constraints)``.

    Queries and constraints come from
    :func:`~repro.workloads.batchgen.batch_workload` (same ``kind`` /
    ``distinct`` / ``size`` semantics: duplicated structures over one
    shared constraint set); arrival offsets from ``process``
    (``"poisson"`` or ``"uniform"``) at ``rate`` arrivals/second.
    """
    if process not in ("poisson", "uniform"):
        raise ValueError(f"unknown arrival process {process!r}")
    queries, constraints = batch_workload(
        n_queries, kind=kind, distinct=distinct, size=size, seed=seed
    )
    if process == "poisson":
        offsets = poisson_arrivals(n_queries, rate, seed=seed + 1)
    else:
        offsets = uniform_arrivals(n_queries, rate)
    return queries, offsets, constraints
