"""Workload generators for the batch minimization backend.

The paper's experiments (Figures 7–9) minimize *workloads* of generated
queries, not single patterns. This module builds such workloads in the
regime the batch backend targets: many queries, one shared constraint
repository, and a controlled amount of structural duplication —
isomorphic queries under renamed node ids and shuffled sibling order, as
produced by real query logs and by the paper's generators when run over
a parameter grid.

All generators are deterministic given their arguments.
"""

from __future__ import annotations

import random
from typing import Optional

from ..constraints.model import IntegrityConstraint
from ..core.pattern import TreePattern
from .querygen import (
    bushy_cdm_query,
    chain_constraints,
    redundancy_query,
    right_deep_cdm_query,
)

__all__ = ["isomorphic_shuffle", "batch_workload", "chaos_workload", "BATCH_WORKLOAD_KINDS"]

#: Workload flavours understood by :func:`batch_workload`.
BATCH_WORKLOAD_KINDS = ("fig7", "fig8", "mixed")

#: Type-cycle length for the Figure 8 shapes — larger than any size used,
#: so depth types stay distinct (mirrors the incremental experiment).
_FIG8_CYCLE = 150


def isomorphic_shuffle(
    pattern: TreePattern, *, seed: Optional[int] = None, rng: Optional[random.Random] = None
) -> TreePattern:
    """A structurally identical copy with shuffled sibling order and
    fresh (construction-order) node ids.

    The result is isomorphic to ``pattern`` —
    :func:`repro.core.fingerprint.fingerprint` collides by construction —
    but is a genuinely different object for the per-query pipeline:
    different ids, different child order. Used to inject realistic
    duplicate queries into batch workloads and to property-test the
    fingerprint.
    """
    r = rng if rng is not None else random.Random(seed)
    clone = TreePattern(pattern.root.type, root_is_output=pattern.root.is_output)
    stack = [(pattern.root, clone.root)]
    while stack:
        original, twin = stack.pop()
        twin.extra_types = original.extra_types
        children = list(original.children)
        r.shuffle(children)
        for child in children:
            copy = clone.add_child(
                twin,
                child.type,
                child.edge,
                is_output=child.is_output,
                temporary=child.temporary,
            )
            stack.append((child, copy))
    return clone


def _fig7_bases(distinct: int, size: int, rng: random.Random):
    """Figure 7(a)-style bases: fixed size, varying redundancy placement."""
    bases: list[TreePattern] = []
    constraints: list[IntegrityConstraint] = []
    for i in range(distinct):
        red_nodes = 1 + i % 3
        degree = max(1, (size // 4) // red_nodes)
        query, driving = redundancy_query(
            size, red_nodes=red_nodes, red_degree=degree, seed=rng.randrange(1 << 30)
        )
        bases.append(query)
        constraints.extend(driving)
    return bases, constraints


def _fig8_bases(distinct: int, size: int, rng: random.Random):
    """Figure 8(b)-style bases: right-deep and bushy depth-typed shapes
    of varying size under the depth-chain constraint set."""
    bases: list[TreePattern] = []
    max_size = 1
    for i in range(distinct):
        shape_size = max(4, size - 3 * (i // 2))
        max_size = max(max_size, shape_size)
        maker = right_deep_cdm_query if i % 2 == 0 else bushy_cdm_query
        bases.append(maker(shape_size, cycle=_FIG8_CYCLE))
    return bases, chain_constraints(max_size)


def batch_workload(
    n_queries: int,
    *,
    kind: str = "fig8",
    distinct: int = 8,
    size: int = 40,
    seed: int = 0,
) -> tuple[list[TreePattern], list[IntegrityConstraint]]:
    """A workload of ``n_queries`` queries over one constraint set.

    ``distinct`` base queries are drawn from the Figure 7(a)
    (``kind="fig7"``: redundancy queries) or Figure 8(b) (``kind="fig8"``:
    right-deep/bushy depth-typed shapes) generators — or half each for
    ``kind="mixed"`` — and the workload is filled to ``n_queries`` with
    isomorphic shuffles of the bases in deterministic random order (every
    base occurs at least once when ``n_queries >= distinct``).

    Returns ``(queries, constraints)``; the constraint list is shared by
    the whole workload, matching the batch backend's
    closure-once-per-repository model.
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if distinct < 1:
        raise ValueError(f"distinct must be >= 1, got {distinct}")
    if kind not in BATCH_WORKLOAD_KINDS:
        raise ValueError(f"unknown workload kind {kind!r} (expected {BATCH_WORKLOAD_KINDS})")
    rng = random.Random(seed)
    distinct = min(distinct, n_queries)

    if kind == "fig7":
        bases, constraints = _fig7_bases(distinct, size, rng)
    elif kind == "fig8":
        bases, constraints = _fig8_bases(distinct, size, rng)
    else:
        half = max(1, distinct // 2)
        fig7_bases, fig7_ics = _fig7_bases(half, size, rng)
        fig8_bases, fig8_ics = _fig8_bases(distinct - half or 1, size, rng)
        bases = fig7_bases + fig8_bases
        constraints = fig7_ics + fig8_ics

    queries: list[TreePattern] = []
    for i in range(n_queries):
        base = bases[i % len(bases)] if i < len(bases) else rng.choice(bases)
        queries.append(isomorphic_shuffle(base, rng=rng))
    rng.shuffle(queries)
    return queries, constraints


def chaos_workload(
    n_queries: int = 12,
    *,
    seed: int = 0,
) -> tuple[list[str], list[IntegrityConstraint]]:
    """A small deterministic workload for the chaos suite, as XPath text.

    Chaos tests drive the stack over the wire protocol, so queries are
    returned *serialized* (via :func:`repro.parsing.serializer.to_xpath`)
    rather than as patterns: the same strings go to ``repro-serve`` and
    to the in-process serial oracle, keeping the byte-identical
    comparison honest. Sizes are kept small — chaos runs repeat the
    workload under many fault plans and must stay fast.
    """
    from ..parsing.serializer import to_xpath

    queries, constraints = batch_workload(
        n_queries, kind="mixed", distinct=min(4, n_queries), size=10, seed=seed
    )
    return [to_xpath(q) for q in queries], constraints
