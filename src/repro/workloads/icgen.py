"""Constraint workload generation.

The Figure 7(a) and 8(a) experiments sweep the number of constraints
*relevant to the query* (constraints whose left-hand type occurs in it).
:func:`relevant_constraints` manufactures such sets deterministically:
sources cycle through the query's types; targets are fresh types by
default, so the added constraints exercise the repository and
augmentation machinery without changing what is removable — letting the
sweeps isolate the cost of constraint volume (the paper's point in both
figures).
"""

from __future__ import annotations

import random
from typing import Optional

from ..constraints.model import (
    ConstraintKind,
    IntegrityConstraint,
    IntegrityConstraint as IC,
)
from ..core.pattern import TreePattern

__all__ = ["relevant_constraints"]

_KINDS = (
    ConstraintKind.REQUIRED_CHILD,
    ConstraintKind.REQUIRED_DESCENDANT,
    ConstraintKind.CO_OCCURRENCE,
)


def relevant_constraints(
    query: TreePattern,
    count: int,
    *,
    target_pool: Optional[list[str]] = None,
    kinds: tuple[ConstraintKind, ...] = _KINDS,
    seed: Optional[int] = None,
) -> list[IntegrityConstraint]:
    """``count`` distinct constraints whose sources occur in ``query``.

    Targets default to fresh types (``X0``, ``X1``, ...) not present in
    the query, so augmentation skips them (the required type must occur in
    the query — Section 5.2) and CDM's probes miss — i.e. the constraints
    are *relevant but inert*, the configuration both constraint-sweep
    figures need. Pass an explicit ``target_pool`` to generate triggering
    constraints instead.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = random.Random(seed)
    sources = sorted(query.node_types())
    out: list[IntegrityConstraint] = []
    seen: set[IntegrityConstraint] = set()
    fresh = 0
    while len(out) < count:
        source = sources[len(out) % len(sources)]
        if target_pool:
            target = rng.choice(target_pool)
        else:
            target = f"X{fresh}"
            fresh += 1
        kind = kinds[len(out) % len(kinds)]
        if source == target:
            continue
        constraint = IC(kind, source, target)
        if constraint in seen:
            continue
        seen.add(constraint)
        out.append(constraint)
    return out
